"""Every relative link and path reference in the doc suite must point
at a file that exists.  The docs are part of the product here (this repo
exists to explain a reproduction); a dangling link is a regression the
same way a failing import is.  CI runs this as its docs gate.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the maintained doc suite (PAPER/PAPERS/SNIPPETS/ISSUE are generated
#: inputs, not docs we own)
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/SIMULATION.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
#: backtick-quoted repo paths like ``src/repro/sim/fluid.py`` — the doc
#: suite leans on these heavily, so stale ones rot just like links
_PATH = re.compile(
    r"`((?:src|tests|docs|benchmarks)/[A-Za-z0-9_./-]+"
    r"\.(?:py|md|json|yml|toml))`")


def _targets(text):
    for match in _LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        yield target
    for match in _PATH.finditer(text):
        yield match.group(1)


@pytest.mark.parametrize("doc", DOCS)
def test_doc_links_resolve(doc):
    path = os.path.join(REPO, doc)
    assert os.path.exists(path), f"doc suite file missing: {doc}"
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    base = os.path.dirname(path)
    missing = []
    for target in _targets(text):
        resolved = os.path.normpath(os.path.join(base, target))
        rooted = os.path.normpath(os.path.join(REPO, target))
        if not (os.path.exists(resolved) or os.path.exists(rooted)):
            missing.append(target)
    assert not missing, f"{doc}: dangling references: {sorted(set(missing))}"


def test_doc_suite_is_cross_linked():
    """docs/SIMULATION.md is reachable from the architecture doc and
    DESIGN.md (the satellite contract of the doc suite)."""
    for doc in ("docs/ARCHITECTURE.md", "DESIGN.md"):
        with open(os.path.join(REPO, doc), encoding="utf-8") as handle:
            assert "SIMULATION.md" in handle.read(), \
                f"{doc} does not link docs/SIMULATION.md"
