"""Tests for the operation ledger (repro.obs.ledger)."""

import json

import pytest

from repro.obs.ledger import (NULL_LEDGER, NullLedger, OpLedger,
                              _bucket_index, _bucket_upper_ns)
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# Charging and queries
# ----------------------------------------------------------------------
def test_charge_accumulates_count_and_total():
    ledger = OpLedger()
    ledger.charge("wrpkru", 10, core=1, domain="hw")
    ledger.charge("wrpkru", 30, core=2, domain="hw")
    assert ledger.op_count("wrpkru") == 2
    assert ledger.total_ns(domain="hw", op="wrpkru") == 40
    assert ledger.core_ns(1) == 10
    assert ledger.core_ns(2) == 30


def test_same_op_name_in_two_domains_stays_separate():
    ledger = OpLedger()
    ledger.charge("switch", 100, domain="uproc")
    ledger.charge("switch", 7, domain="kernel")
    assert ledger.total_ns(domain="uproc") == 100
    assert ledger.total_ns(domain="kernel") == 7
    assert ledger.op_count("switch") == 2
    assert ledger.op_count("switch", domain="uproc") == 1


def test_count_op_is_a_zero_cost_charge():
    ledger = OpLedger()
    ledger.count_op("uthread_create", domain="uproc")
    assert ledger.op_count("uthread_create") == 1
    assert ledger.total_ns() == 0


def test_op_counts_merges_across_domains():
    ledger = OpLedger()
    ledger.charge("x", 1, domain="a")
    ledger.charge("x", 1, domain="b")
    ledger.charge("y", 1, domain="a")
    assert ledger.op_counts() == {"x": 2, "y": 1}
    assert ledger.op_counts(domain="a") == {"x": 1, "y": 1}


# ----------------------------------------------------------------------
# Histogram / percentiles
# ----------------------------------------------------------------------
def test_bucket_roundtrip_error_is_bounded():
    # The bucket upper bound over-estimates by at most 1/8 (12.5 %).
    for ns in [1, 2, 3, 7, 8, 9, 100, 160, 1000, 12345, 10**6]:
        upper = _bucket_upper_ns(_bucket_index(ns))
        assert ns <= upper <= ns * 1.125 + 1


def test_percentiles_from_log_histogram():
    ledger = OpLedger()
    for _ in range(99):
        ledger.charge("op", 100, domain="d")
    ledger.charge("op", 10_000, domain="d")
    p50 = ledger.percentile_ns("op", 50)
    p999 = ledger.percentile_ns("op", 99.9)
    assert p50 == pytest.approx(100, rel=0.125)
    assert p999 == pytest.approx(10_000, rel=0.125)


def test_percentile_of_unknown_op_is_nan():
    assert OpLedger().percentile_ns("nope", 50) != \
        OpLedger().percentile_ns("nope", 50)  # NaN != NaN


# ----------------------------------------------------------------------
# Merge / reset
# ----------------------------------------------------------------------
def test_merge_folds_counts_totals_and_histograms():
    a, b = OpLedger(), OpLedger()
    a.charge("op", 100, core=0, domain="d")
    b.charge("op", 300, core=0, domain="d")
    b.charge("other", 5, domain="e")
    a.merge(b)
    assert a.op_count("op") == 2
    assert a.total_ns(domain="d") == 400
    assert a.core_ns(0) == 400
    assert a.op_count("other") == 1
    # percentiles reflect the merged histogram
    assert a.percentile_ns("op", 99) == pytest.approx(300, rel=0.125)


def test_reset_clears_everything():
    ledger = OpLedger(capture_events=True)
    ledger.charge("op", 10, domain="d")
    ledger.reset()
    assert ledger.total_ns() == 0
    assert ledger.op_count("op") == 0
    assert ledger.events == []


# ----------------------------------------------------------------------
# Null ledger
# ----------------------------------------------------------------------
def test_null_ledger_records_nothing():
    ledger = NullLedger()
    ledger.charge("op", 100, core=0, domain="d")
    ledger.count_op("op2", domain="d")
    assert ledger.op_count("op") == 0
    assert ledger.total_ns() == 0
    assert not ledger.enabled
    assert not NULL_LEDGER.enabled


def test_hot_path_guard_contract():
    # Components guard with `if ledger.enabled:`; both classes expose it
    # as a cheap class attribute.
    assert OpLedger.enabled is True
    assert NullLedger.enabled is False


# ----------------------------------------------------------------------
# Export determinism
# ----------------------------------------------------------------------
def _populate(ledger):
    ledger.charge("b_op", 10, core=1, domain="z")
    ledger.charge("a_op", 20, core=0, domain="a")
    ledger.charge("c_op", 30, domain="m")


def test_rows_are_sorted_by_domain_then_op():
    one, two = OpLedger(), OpLedger()
    _populate(one)
    # Same charges, different insertion order.
    two.charge("c_op", 30, domain="m")
    two.charge("b_op", 10, core=1, domain="z")
    two.charge("a_op", 20, core=0, domain="a")
    keys = [(d, op) for d, op, _ in one.rows()]
    assert keys == sorted(keys)
    assert keys == [(d, op) for d, op, _ in two.rows()]


def test_breakdown_table_is_deterministic_and_complete():
    one, two = OpLedger(), OpLedger()
    _populate(one)
    two.charge("c_op", 30, domain="m")
    two.charge("a_op", 20, core=0, domain="a")
    two.charge("b_op", 10, core=1, domain="z")
    assert one.breakdown_table() == two.breakdown_table()
    table = one.breakdown_table()
    for op in ("a_op", "b_op", "c_op"):
        assert op in table
    # domain filter leaves only that domain's rows
    filtered = one.breakdown_table(domain="a")
    assert "a_op" in filtered and "b_op" not in filtered


# ----------------------------------------------------------------------
# Event capture + Chrome trace export
# ----------------------------------------------------------------------
def test_event_capture_is_bounded():
    sim = Simulator()
    ledger = OpLedger(sim=sim, capture_events=True, max_events=3)
    for _ in range(5):
        ledger.charge("op", 1, domain="d")
    assert len(ledger.events) == 3
    assert ledger.events_dropped == 2
    # statistics keep counting past the event cap
    assert ledger.op_count("op") == 5


def test_chrome_trace_round_trips_through_json(tmp_path):
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record(0, 1000, 2000, "app:x")
    ledger = OpLedger(sim=sim, tracer=tracer, capture_events=True)
    sim.at(1500, lambda: ledger.charge("op", 40, core=0, domain="d"))
    sim.run()
    path = tmp_path / "trace.json"
    ledger.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    span = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    op = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
    assert span == [{"name": "app:x", "cat": "span", "ph": "X",
                     "ts": 1.0, "dur": 1.0, "pid": 0, "tid": 0}]
    assert op[0]["name"] == "op"
    assert op[0]["ts"] == pytest.approx(1.5)
    assert op[0]["args"]["cost_ns"] == 40


# ----------------------------------------------------------------------
# Charge handles (the precomputed fast path hot call sites use)
# ----------------------------------------------------------------------
def test_handle_charges_match_plain_charges():
    plain = OpLedger()
    fast = OpLedger()
    handle = fast.handle("uproc", "uctx_save")
    for cost, core in ((10, 1), (30, 2), (5, 1)):
        plain.charge("uctx_save", cost, core=core, domain="uproc")
        handle.charge(cost, core)
    assert fast.op_count("uctx_save") == plain.op_count("uctx_save")
    assert fast.total_ns(domain="uproc") == plain.total_ns(domain="uproc")
    assert fast.core_ns(1) == plain.core_ns(1)
    assert fast.core_ns(2) == plain.core_ns(2)
    assert fast.breakdown_table() == plain.breakdown_table()


def test_handle_never_creates_zero_count_rows():
    ledger = OpLedger()
    ledger.handle("uproc", "uiret")  # built but never charged
    assert list(ledger.rows()) == []


def test_handle_survives_reset():
    """begin_measurement() resets the ledger mid-run; handles created
    before the reset must charge into the post-reset window."""
    ledger = OpLedger()
    handle = ledger.handle("uproc", "uctx_save")
    handle.charge(100, 0)
    ledger.reset()
    handle.charge(7, 3)
    assert ledger.op_count("uctx_save") == 1
    assert ledger.total_ns(domain="uproc") == 7
    assert ledger.core_ns(3) == 7


def test_handle_capture_events():
    ledger = OpLedger(capture_events=True)
    handle = ledger.handle("hw", "uintr_send")
    handle.charge(40, 2)
    assert len(ledger.events) == 1
    _ts, core, domain, op, cost_ns = ledger.events[0]
    assert (domain, op, cost_ns, core) == ("hw", "uintr_send", 40, 2)


def test_null_ledger_handle_is_a_noop():
    handle = NULL_LEDGER.handle("uproc", "anything")
    handle.charge(100, 0)
    handle.charge(100)
    assert NULL_LEDGER.op_count("anything") == 0
