"""The log-histogram contract: exact merge, stable buckets, summaries."""

import pickle
import random

import pytest

from repro.obs.hist import (
    LogHistogram, SUBDIV, bucket_index, bucket_upper_ns,
    merge_recorder_histograms)


def test_bucket_index_octave_layout():
    assert bucket_index(0) == 0
    assert bucket_index(1) == 1
    # Every value falls in a bucket whose upper bound is >= the value
    # and within 1/SUBDIV relative error of it.
    for ns in [1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025, 10**6, 10**9]:
        upper = bucket_upper_ns(bucket_index(ns))
        assert upper >= ns
        assert upper <= ns * (1.0 + 1.0 / SUBDIV) + 1


def test_bucket_index_monotone():
    indices = [bucket_index(ns) for ns in range(0, 5000)]
    assert indices == sorted(indices)


def test_merge_equals_histogram_of_concatenation():
    rng = random.Random(11)
    streams = [[rng.randrange(0, 1 << 22) for _ in range(500)]
               for _ in range(4)]
    merged = LogHistogram.merged(
        LogHistogram.from_samples(stream) for stream in streams)
    direct = LogHistogram.from_samples(
        [ns for stream in streams for ns in stream])
    assert merged == direct  # buckets, count, total, max: all exact
    for pct in (50, 90, 99, 99.9):
        assert merged.percentile_ns(pct) == direct.percentile_ns(pct)


def test_merge_is_order_independent():
    rng = random.Random(13)
    hists = [LogHistogram.from_samples(
        rng.randrange(1, 10**7) for _ in range(200)) for _ in range(3)]
    forward = LogHistogram.merged(hists)
    backward = LogHistogram.merged(reversed(hists))
    assert forward == backward


def test_summary_keys_and_exact_fields():
    hist = LogHistogram.from_samples([1000, 2000, 3000, 4000])
    summary = hist.summary()
    assert set(summary) == {"count", "avg_us", "p50_us", "p90_us",
                            "p99_us", "p999_us", "max_us"}
    assert summary["count"] == 4
    assert summary["avg_us"] == pytest.approx(2.5)   # exact, not bucketed
    assert summary["max_us"] == pytest.approx(4.0)   # exact, not bucketed
    assert summary["p99_us"] >= 4.0                   # bucket upper bound


def test_empty_histogram_summary_is_nan():
    summary = LogHistogram().summary()
    assert summary["count"] == 0
    assert summary["avg_us"] != summary["avg_us"]  # NaN


def test_record_rejects_negative():
    with pytest.raises(ValueError):
        LogHistogram().record(-1)


def test_pickle_roundtrip_preserves_equality():
    hist = LogHistogram.from_samples([5, 50, 500, 5000])
    clone = pickle.loads(pickle.dumps(hist))
    assert clone == hist
    clone.record(7)
    assert clone != hist


def test_merge_recorder_histograms_accepts_mixed_inputs():
    class FakeRecorder:
        samples = [100, 200, 300]

    hist = LogHistogram.from_samples([400, 500])
    merged = merge_recorder_histograms([FakeRecorder(), hist])
    assert merged == LogHistogram.from_samples([100, 200, 300, 400, 500])
