"""Gauge time series: deterministic ticking, windows, counter export."""

import pytest

from repro.obs.timeseries import GaugeSeries
from repro.sim.engine import Simulator


def test_probes_sample_on_the_tick():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=100)
    state = {"depth": 0}
    gauges.add_probe("depth", lambda: state["depth"])
    gauges.start()
    sim.at(150, lambda: state.update(depth=7))
    sim.run(until=400)
    assert gauges.samples["depth"] == [(100, 0.0), (200, 7.0),
                                       (300, 7.0), (400, 7.0)]


def test_duplicate_probe_name_rejected():
    gauges = GaugeSeries(Simulator(), tick_ns=10)
    gauges.add_probe("x", lambda: 0)
    with pytest.raises(ValueError):
        gauges.add_probe("x", lambda: 1)
    with pytest.raises(ValueError):
        GaugeSeries(Simulator(), tick_ns=0)


def test_start_is_idempotent():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=100)
    gauges.add_probe("x", lambda: 1)
    gauges.start()
    gauges.start()  # second call must not double the tick rate
    sim.run(until=300)
    assert len(gauges.samples["x"]) == 3


def test_begin_measurement_drops_warmup_samples_keeps_ticking():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=100)
    gauges.add_probe("x", lambda: 1)
    gauges.start()
    sim.run(until=250)
    gauges.begin_measurement()
    sim.run(until=500)
    assert [ts for ts, _ in gauges.samples["x"]] == [300, 400, 500]


def test_sample_cap_bounds_memory():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=10, max_samples=3)
    gauges.add_probe("x", lambda: 1)
    gauges.start()
    sim.run(until=100)
    assert len(gauges.samples["x"]) == 3
    assert gauges.samples_dropped == 7


def test_summary_reports_min_avg_max_last():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=100)
    values = iter([3, 1, 8, 4])
    gauges.add_probe("x", lambda: next(values))
    gauges.add_probe("empty", lambda: 0)
    gauges.start()
    sim.run(until=400)
    summary = gauges.summary()
    assert summary["x"] == {"count": 4, "min": 1.0, "avg": 4.0,
                            "max": 8.0, "last": 4.0}
    assert gauges.names() == ["x", "empty"]


def test_chrome_counter_events():
    sim = Simulator()
    gauges = GaugeSeries(sim, tick_ns=1_000)
    gauges.add_probe("queue", lambda: 5)
    gauges.start()
    sim.run(until=2_000)
    events = gauges.chrome_events(pid=3)
    assert events[0] == {"ph": "M", "pid": 3, "name": "process_name",
                         "args": {"name": "gauges"}}
    counters = [e for e in events if e["ph"] == "C"]
    assert [e["ts"] for e in counters] == [1.0, 2.0]
    assert all(e["pid"] == 3 and e["args"]["value"] == 5.0
               for e in counters)
