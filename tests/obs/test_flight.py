"""Flight recorder: stage derivation, invariant audit, system wiring."""

import pytest

from repro.obs.flight import (NULL_FLIGHT, FlightRecorder,
                              NullFlightRecorder, STAGE_AFTER, STAGE_ORDER,
                              format_breakdown)


class _Sim:
    def __init__(self):
        self.now = 0


class _App:
    def __init__(self, name="a"):
        self.name = name


class _Req:
    def __init__(self, app, net_token=None):
        self.app = app
        self.flight = None
        self.net_token = net_token


def _recorder(**kwargs):
    return FlightRecorder(_Sim(), **kwargs)


def _fly(rec, req, *stops):
    """Stamp (label, ts[, core]) stops onto ``req``."""
    for stop in stops:
        label, ts = stop[0], stop[1]
        rec.sim.now = ts
        rec.mark(req, label, core=stop[2] if len(stop) > 2 else None)


# ----------------------------------------------------------------------
# Stage derivation and telescoping
# ----------------------------------------------------------------------
def test_stage_durations_telescope_to_total():
    rec = _recorder()
    req = _Req(_App("mc"), net_token=object())
    _fly(rec, req,
         ("client_send", 0), ("ingress", 500), ("admit", 600),
         ("submit", 600), ("run_start", 1_000, 2), ("complete", 2_000))
    rec.sim.now = 2_500
    rec.finalize(req, "done")
    assert req.flight is None
    assert rec.audit() == []
    summary = rec.stage_summaries()["mc"]
    assert summary["total_sum_ns"] == 2_500
    assert summary["stage_sum_ns"] == 2_500
    stages = summary["stages"]
    assert stages["net_in"]["sum_ns"] == 500
    assert stages["nic_ring"]["sum_ns"] == 100
    assert stages["sched_queue"]["sum_ns"] == 400  # admit->submit is 0
    assert stages["service"]["sum_ns"] == 1_000
    assert stages["net_out"]["sum_ns"] == 500
    assert rec.done_totals("mc") == [2_500]


def test_preempt_and_io_stages_split_the_service_time():
    rec = _recorder()
    req = _Req(_App("silo"))
    _fly(rec, req,
         ("submit", 0), ("run_start", 100, 0), ("preempt", 200, 0),
         ("run_start", 350, 1), ("io_park", 400, 1), ("io_done", 900),
         ("run_start", 950, 0))
    rec.sim.now = 1_000
    rec.on_complete(req)  # direct submit: marks complete + finalizes
    assert rec.audit() == []
    stages = rec.stage_summaries()["silo"]["stages"]
    assert stages["service"]["sum_ns"] == 100 + 50 + 50
    assert stages["preempt_wait"]["sum_ns"] == 150
    assert stages["io_wait"]["sum_ns"] == 500
    assert stages["sched_queue"]["sum_ns"] == 100 + 50
    assert rec.stage_summaries()["silo"]["stage_sum_ns"] == 1_000


def test_every_label_opens_a_stage():
    # A label outside STAGE_AFTER would silently break telescoping.
    assert set(STAGE_AFTER.values()) <= set(STAGE_ORDER)


def test_zero_duration_stages_keep_the_sum_exact():
    rec = _recorder()
    req = _Req(_App("mc"))
    _fly(rec, req, ("submit", 100), ("run_start", 100, 0))
    rec.sim.now = 300
    rec.on_complete(req)
    summary = rec.stage_summaries()["mc"]
    assert "sched_queue" not in summary["stages"]  # zero-length, skipped
    assert summary["stage_sum_ns"] == summary["total_sum_ns"] == 200


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
def test_shed_drop_dup_counted_but_not_aggregated():
    rec = _recorder()
    app = _App("mc")
    shed = _Req(app, net_token=object())
    _fly(rec, shed, ("client_send", 0), ("ingress", 10), ("shed", 20))
    rec.sim.now = 30
    rec.finalize(shed, "shed")
    dropped = _Req(app, net_token=object())
    _fly(rec, dropped, ("client_send", 40))
    rec.sim.now = 50
    rec.finalize(dropped, "drop")
    assert rec.outcome_counts() == {"mc": {"drop": 1, "shed": 1}}
    assert rec.audit() == []
    assert rec.stage_summaries() == {}  # only "done" flights aggregate


def test_finalize_is_idempotent_and_marks_after_are_ignored():
    rec = _recorder()
    req = _Req(_App("mc"))
    _fly(rec, req, ("submit", 0), ("run_start", 10, 0))
    rec.sim.now = 20
    rec.on_complete(req)
    rec.finalize(req, "drop")  # already finalized: no second outcome
    rec.on_complete(req)
    assert rec.outcome_counts() == {"mc": {"done": 1}}


def test_on_complete_leaves_net_requests_to_the_fabric():
    rec = _recorder()
    req = _Req(_App("mc"), net_token=object())
    _fly(rec, req, ("client_send", 0), ("ingress", 10), ("submit", 20),
         ("run_start", 30, 0))
    rec.on_complete(req)
    assert req.flight is not None  # still open: fabric finalizes it
    assert rec.outcome_counts() == {}


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
def test_illegal_transition_is_flagged():
    rec = _recorder()
    req = _Req(_App("mc"))
    _fly(rec, req, ("submit", 0), ("complete", 10))  # skipped run_start
    rec.sim.now = 10
    rec.finalize(req, "done")
    assert any("illegal transition submit -> complete" in v
               for v in rec.audit())


def test_non_monotonic_marks_are_flagged():
    rec = _recorder()
    req = _Req(_App("mc"))
    _fly(rec, req, ("submit", 100), ("run_start", 50, 0),
         ("complete", 200))
    rec.sim.now = 200
    rec.finalize(req, "done")
    assert any("non-monotonic" in v for v in rec.audit())


def test_overlapping_service_segments_are_flagged():
    rec = _recorder()
    for start in (0, 50):  # second run overlaps the first on core 1
        req = _Req(_App("mc"))
        _fly(rec, req, ("submit", start), ("run_start", start, 1))
        rec.sim.now = start + 100
        rec.on_complete(req)
    assert any("overlapping service segments" in v for v in rec.audit())


def test_disjoint_segments_on_different_cores_are_clean():
    rec = _recorder()
    for start, core in ((0, 1), (50, 2), (100, 1)):
        req = _Req(_App("mc"))
        _fly(rec, req, ("submit", start), ("run_start", start, core))
        rec.sim.now = start + 40
        rec.on_complete(req)
    assert rec.audit() == []


def test_violation_flood_is_capped():
    rec = _recorder()
    for i in range(60):
        req = _Req(_App("mc"))
        _fly(rec, req, ("submit", i), ("complete", i + 1))
        rec.sim.now = i + 1
        rec.finalize(req, "done")
    violations = rec.audit()
    assert len(violations) == 51  # 50 stored + the "... and N more" line
    assert "more violations" in violations[-1]


# ----------------------------------------------------------------------
# Reservoir and measurement window
# ----------------------------------------------------------------------
def test_reservoir_keeps_the_k_slowest():
    rec = _recorder(reservoir_k=2)
    for i, total in enumerate((300, 100, 900, 500)):
        req = _Req(_App("mc"))
        base = i * 10_000
        _fly(rec, req, ("submit", base), ("run_start", base, 0))
        rec.sim.now = base + total
        rec.on_complete(req)
    totals = [t["total_ns"] for t in rec.slowest_traces()]
    assert totals == [900, 500]


def test_begin_measurement_drops_aggregates_keeps_open_flights():
    rec = _recorder()
    done = _Req(_App("mc"))
    _fly(rec, done, ("submit", 0), ("run_start", 1, 0))
    rec.sim.now = 2
    rec.on_complete(done)
    inflight = _Req(_App("mc"))
    _fly(rec, inflight, ("submit", 5), ("run_start", 6, 0))
    rec.begin_measurement()
    assert rec.stage_summaries() == {}
    assert rec.outcome_counts() == {}
    assert rec.slowest_traces() == []
    # The open flight carries across the boundary and still finalizes.
    rec.sim.now = 10
    rec.on_complete(inflight)
    assert rec.outcome_counts() == {"mc": {"done": 1}}
    assert rec.audit() == []


# ----------------------------------------------------------------------
# Null recorder (zero-overhead default)
# ----------------------------------------------------------------------
def test_null_flight_records_nothing():
    req = _Req(_App("mc"))
    NULL_FLIGHT.begin(req)
    NULL_FLIGHT.mark(req, "submit")
    NULL_FLIGHT.on_complete(req)
    NULL_FLIGHT.finalize(req, "done")
    assert req.flight is None
    assert NULL_FLIGHT.outcome_counts() == {}
    assert not NULL_FLIGHT.enabled
    assert FlightRecorder.enabled is True
    assert NullFlightRecorder.enabled is False


# ----------------------------------------------------------------------
# Breakdown formatting
# ----------------------------------------------------------------------
def test_format_breakdown_reports_zero_delta():
    rec = _recorder()
    req = _Req(_App("mc"))
    _fly(rec, req, ("submit", 0), ("run_start", 100, 0))
    rec.sim.now = 1_100
    rec.on_complete(req)
    text = format_breakdown("vessel", rec.stage_summaries(),
                            client_samples={"mc": [1_100]})
    assert "latency breakdown by stage" in text
    assert "delta 0 ns" in text
    assert "vs measured latency 0 ns" in text
    assert "service" in text and "sched_queue" in text


# ----------------------------------------------------------------------
# End-to-end: the recorder wired through a real colocation run
# ----------------------------------------------------------------------
def _small_cfg(**kwargs):
    from repro.experiments.common import ExperimentConfig
    return ExperimentConfig(num_workers=4, sim_ms=4, warmup_ms=1,
                            seed=11, latency_breakdown=True, **kwargs)


def _run(system="vessel", cfg=None, capsys=None, **kwargs):
    from repro.experiments.common import run_colocation
    return run_colocation(system, cfg or _small_cfg(),
                          l_specs=[("memcached", "mc", 1.0)],
                          b_specs=("linpack",), **kwargs)


def test_vessel_direct_run_audit_clean_and_reconciled(capsys):
    report = _run()
    assert report.flight_audit == []
    summary = report.latency_stages["mc"]
    assert summary["stage_sum_ns"] == summary["total_sum_ns"]
    assert summary["total"]["count"] == report.completed["mc"]
    assert report.flight_counts["mc"]["done"] == report.completed["mc"]
    # satellite: server-side queue-wait percentiles in the report
    assert report.queue_wait["mc"]["count"] > 0
    assert report.queue_wait["mc"]["p99_us"] >= 0.0
    out = capsys.readouterr().out
    assert "latency breakdown by stage" in out
    assert "delta 0 ns" in out


def test_net_run_with_faults_and_admission_stays_clean(capsys):
    from repro.faults.plan import FaultPlan
    from repro.net import NetConfig
    from repro.overload.admission import AdmissionConfig

    cfg = _small_cfg(net=NetConfig())
    report = _run(cfg=cfg,
                  admission=AdmissionConfig(max_queue_depth=8),
                  fault_plan=FaultPlan(seed=5).drop_packets(0.05))
    assert report.flight_audit == []
    counts = report.flight_counts["mc"]
    assert counts["done"] > 0
    assert counts.get("drop", 0) > 0  # injected packet loss observed
    summary = report.latency_stages["mc"]
    assert summary["stage_sum_ns"] == summary["total_sum_ns"]
    assert set(summary["stages"]) >= {"net_in", "nic_ring",
                                      "sched_queue", "service", "net_out"}


def test_flight_runs_are_deterministic(capsys):
    def fingerprint():
        report = _run()
        return repr((report.latency_stages, report.flight_counts,
                     report.flight_audit, report.events_fired,
                     sorted(report.queue_wait.items())))
    assert fingerprint() == fingerprint()


@pytest.mark.parametrize("system", ["caladan", "arachne", "ideal",
                                    "linux-cfs"])
def test_baseline_systems_record_clean_flights(system, capsys):
    report = _run(system=system)
    assert report.flight_audit == []
    summary = report.latency_stages["mc"]
    assert summary["stage_sum_ns"] == summary["total_sum_ns"]
    assert report.flight_counts["mc"]["done"] > 0
