"""Merged Chrome trace export: core spans + ops + flights + gauges.

One Perfetto/Chrome timeline holds four processes: pid 0 core spans
(Tracer), pid 1 op charges (OpLedger events), pid 2 the flight
recorder's slowest-request stage spans, pid 3 gauge counter tracks.
These tests pin the pid/tid mapping, the per-section event shapes, and
that the merged document survives a JSON round trip.
"""

import json

from repro.obs.flight import FlightRecorder
from repro.obs.ledger import OpLedger
from repro.obs.timeseries import GaugeSeries
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class _App:
    name = "mc"


class _Req:
    def __init__(self):
        self.app = _App()
        self.flight = None
        self.net_token = None


def _build():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record(0, 1_000, 2_000, "app:mc")
    tracer.record(1, 1_500, 3_000, "batch:linpack")
    ledger = OpLedger(sim=sim, tracer=tracer, capture_events=True)
    sim.at(1_200, lambda: ledger.charge("uintr_send", 40, core=0,
                                        domain="hw"))

    flight = FlightRecorder(sim, reservoir_k=2)
    request = _Req()
    sim.at(1_000, lambda: flight.mark(request, "submit"))
    sim.at(1_100, lambda: flight.mark(request, "run_start", core=0))
    sim.at(2_000, lambda: flight.mark(request, "complete"))
    sim.at(2_000, lambda: flight.finalize(request, "done"))

    gauges = GaugeSeries(sim, tick_ns=1_000)
    gauges.add_probe("busy_cores", lambda: 2)
    gauges.start()
    sim.run(until=3_000)
    return ledger, tracer, flight, gauges


def test_merged_trace_pid_mapping_and_shapes():
    ledger, tracer, flight, gauges = _build()
    doc = ledger.chrome_trace(flight=flight, gauges=gauges)
    events = doc["traceEvents"]

    names = {(e["pid"], e.get("name")) for e in events if e["ph"] == "M"}
    assert (0, "process_name") in names
    assert (1, "process_name") in names
    assert (2, "process_name") in names
    assert (3, "process_name") in names

    spans = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert {e["tid"] for e in spans} == {0, 1}  # one lane per core
    assert {e["name"] for e in spans} == {"app:mc", "batch:linpack"}

    ops = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
    assert ops[0]["name"] == "uintr_send"
    assert ops[0]["args"]["cost_ns"] == 40

    flights = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
    assert [e["name"] for e in flights] == ["sched_queue", "service",
                                           "net_out"]
    service = flights[1]
    assert service["ts"] == 1.1 and service["dur"] == 0.9
    assert service["args"]["core"] == 0
    meta = [e for e in events if e["ph"] == "M" and e["pid"] == 2
            and e["name"] == "thread_name"]
    assert meta[0]["args"]["name"] == "mc 1.0us"

    counters = [e for e in events if e["ph"] == "C"]
    assert all(e["pid"] == 3 for e in counters)
    assert len(counters) == 3  # ticks at 1000/2000/3000 ns


def test_sections_are_ordered_and_spans_time_sorted():
    ledger, tracer, flight, gauges = _build()
    events = ledger.chrome_trace(flight=flight, gauges=gauges)[
        "traceEvents"]
    pids = [e["pid"] for e in events if e["ph"] != "M"]
    assert pids == sorted(pids)  # sections merge in pid order
    for pid in (0, 1, 3):
        ts = [e["ts"] for e in events
              if e["pid"] == pid and e["ph"] != "M"]
        assert ts == sorted(ts)


def test_merged_trace_round_trips_through_json(tmp_path):
    ledger, tracer, flight, gauges = _build()
    path = tmp_path / "merged.json"
    ledger.write_chrome_trace(str(path), flight=flight, gauges=gauges)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ns"
    assert {e["pid"] for e in doc["traceEvents"]} == {0, 1, 2, 3}
    for event in doc["traceEvents"]:
        assert event["ph"] in ("M", "X", "C")
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_sections_are_optional():
    ledger, tracer, flight, gauges = _build()
    doc = ledger.chrome_trace()  # ops + attached tracer only
    assert {e["pid"] for e in doc["traceEvents"]} <= {0, 1}
    doc = ledger.chrome_trace(flight=flight)
    assert 2 in {e["pid"] for e in doc["traceEvents"]}
    assert 3 not in {e["pid"] for e in doc["traceEvents"]}
