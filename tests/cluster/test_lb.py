"""Unit tests for the load-balancer policies (pure control plane)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.lb import (
    ConsistentHashLB, LeastLoadedLB, RoundRobinLB, make_lb)
from repro.cluster.source import make_batches
from repro.sim.rng import RngStreams


def _population(num_servers=4, batches=16, hot_fraction=0.5,
                hot_batches=2, seed=7, **overrides):
    cluster = ClusterConfig(num_servers=num_servers, batches=batches,
                            hot_fraction=hot_fraction,
                            hot_batches=hot_batches, **overrides)
    return cluster, make_batches(cluster,
                                 RngStreams(seed).spawn("cluster"))


# -- round-robin -------------------------------------------------------

def test_round_robin_deals_cyclically():
    cluster, batches = _population()
    assignment = RoundRobinLB(cluster).assign(batches)
    assert assignment == [b.index % cluster.num_servers for b in batches]
    counts = [assignment.count(s) for s in range(cluster.num_servers)]
    assert max(counts) - min(counts) <= 1  # counts balanced...
    weights = [0.0] * cluster.num_servers
    for batch, server in zip(batches, assignment):
        weights[server] += batch.weight
    assert max(weights) > 1.5 / cluster.num_servers  # ...weights not


def test_round_robin_never_rebalances():
    cluster, batches = _population()
    lb = RoundRobinLB(cluster)
    assignment = lb.assign(batches)
    before = list(assignment)
    assert lb.rebalance(assignment, [9.0, 0.0, 0.0, 0.0],
                        [b.weight for b in batches]) == []
    assert assignment == before


# -- least-loaded ------------------------------------------------------

def test_least_loaded_rebalance_is_deterministic():
    cluster, batches = _population()
    rates = [b.weight * 10.0 for b in batches]
    loads = [6.0, 1.0, 2.0, 1.0]
    lb_a, lb_b = LeastLoadedLB(cluster), LeastLoadedLB(cluster)
    assign_a = lb_a.assign(batches)
    assign_b = lb_b.assign(batches)
    moves_a = lb_a.rebalance(assign_a, loads, rates)
    moves_b = lb_b.rebalance(assign_b, loads, rates)
    assert moves_a == moves_b
    assert assign_a == assign_b
    assert moves_a  # the skewed fleet actually triggered migration


def test_least_loaded_shrinks_the_spread():
    cluster, batches = _population()
    lb = LeastLoadedLB(cluster)
    assignment = lb.assign(batches)
    rates = [b.weight * 10.0 for b in batches]
    loads = [0.0] * cluster.num_servers
    for batch_idx, server in enumerate(assignment):
        loads[server] += rates[batch_idx]
    spread_before = max(loads) - min(loads)
    moves = lb.rebalance(assignment, loads, rates)
    assert 0 < len(moves) <= cluster.migrate_per_epoch
    after = [0.0] * cluster.num_servers
    for batch_idx, server in enumerate(assignment):
        after[server] += rates[batch_idx]
    assert max(after) - min(after) < spread_before
    for batch_idx, src, dst in moves:
        assert assignment[batch_idx] == dst
        assert src != dst


def test_least_loaded_ties_break_by_lowest_index():
    cluster = ClusterConfig(num_servers=4, batches=8,
                            migrate_per_epoch=1)
    lb = LeastLoadedLB(cluster)
    # Servers 0 and 2 equally overloaded, 1 and 3 equally idle: the
    # move must come off server 0 and land on server 1.
    assignment = [0, 1, 2, 3, 0, 1, 2, 3]
    rates = [1.0] * 8
    moves = lb.rebalance(assignment, [5.0, 1.0, 5.0, 1.0], rates)
    assert moves == [(0, 0, 1)]


def test_least_loaded_balanced_fleet_is_left_alone():
    cluster, batches = _population(hot_fraction=0.0)
    lb = LeastLoadedLB(cluster)
    assignment = lb.assign(batches)
    before = list(assignment)
    assert lb.rebalance(assignment, [1.0] * cluster.num_servers,
                        [b.weight for b in batches]) == []
    assert assignment == before


def test_least_loaded_plans_against_the_stale_view():
    # The telemetry (not the true batch sums) drives migration: with
    # loads reported equal, nothing moves even though the real
    # assignment is lopsided.
    cluster = ClusterConfig(num_servers=2, batches=4)
    lb = LeastLoadedLB(cluster)
    assignment = [0, 0, 0, 0]
    assert lb.rebalance(assignment, [1.0, 1.0], [2.0] * 4) == []
    assert assignment == [0, 0, 0, 0]


# -- consistent hash ---------------------------------------------------

def test_consistent_hash_is_stable_and_deterministic():
    cluster, batches = _population()
    a = ConsistentHashLB(cluster).assign(batches)
    b = ConsistentHashLB(cluster).assign(batches)
    assert a == b
    assert set(a) <= set(range(cluster.num_servers))


def test_consistent_hash_add_server_moves_only_new_arcs():
    cluster, batches = _population(num_servers=4)
    lb = ConsistentHashLB(cluster)
    before = lb.assign(batches)
    lb.add_server(4)
    after = lb.assign(batches)
    moved = [(x, y) for x, y in zip(before, after) if x != y]
    assert moved  # something should land on the new server
    assert all(y == 4 for _, y in moved)


def test_consistent_hash_remove_server_moves_only_its_arcs():
    cluster, batches = _population(num_servers=4)
    lb = ConsistentHashLB(cluster)
    before = lb.assign(batches)
    lb.remove_server(2)
    after = lb.assign(batches)
    for x, y in zip(before, after):
        if x != 2:
            assert y == x  # untouched servers keep their arcs
        else:
            assert y != 2  # evacuated
    assert 2 not in after


def test_consistent_hash_remove_last_server_refused_intact():
    cluster = ClusterConfig(num_servers=1, batches=4)
    lb = ConsistentHashLB(cluster)
    with pytest.raises(ValueError):
        lb.remove_server(0)
    assert lb.servers == [0]  # refused without corrupting the ring


def test_make_lb_rejects_unknown_policy():
    cluster = ClusterConfig(lb_policy="round-robin")
    assert make_lb(cluster).name == "round-robin"
    with pytest.raises(ValueError, match="nope"):
        make_lb(ClusterConfig(lb_policy="nope"))
