"""End-to-end fleet determinism: plan once, shard anywhere, same bytes."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.experiments.common import ExperimentConfig
from repro.faults.plan import FaultPlan


def _cfg(seed=5):
    return ExperimentConfig(num_workers=2, sim_ms=3, warmup_ms=1,
                            seed=seed)


def _fleet(**overrides):
    params = dict(num_servers=2, batches=8, connections=10_000,
                  hot_fraction=0.5, hot_batches=2, load_fraction=0.5,
                  lb_policy="least-loaded", clients_per_server=1,
                  epoch_ms=0.5)
    params.update(overrides)
    return ClusterConfig(**params)


def test_jobs_fanout_is_byte_identical_to_serial():
    serial = Cluster("vessel", _cfg(), _fleet()).run(jobs=1)
    fanned = Cluster("vessel", _cfg(), _fleet()).run(jobs=2)
    assert serial.fingerprint() == fanned.fingerprint()


def test_rerun_is_deterministic_under_chaos():
    plan = FaultPlan(seed=3).drop_uintr(0.05).delay_packets(
        2_000, probability=0.1)
    first = Cluster("vessel", _cfg(), _fleet()).run(
        jobs=1, fault_plan=plan)
    again = Cluster("vessel", _cfg(), _fleet()).run(
        jobs=2, fault_plan=plan)
    assert first.fingerprint() == again.fingerprint()


def test_different_seeds_give_different_fleets():
    a = Cluster("vessel", _cfg(seed=5), _fleet()).run(jobs=1)
    b = Cluster("vessel", _cfg(seed=6), _fleet()).run(jobs=1)
    assert a.fingerprint() != b.fingerprint()


def test_merge_sums_and_histogram_percentiles():
    report = Cluster("vessel", _cfg(), _fleet()).run(jobs=1)
    assert len(report.server_reports) == 2
    assert report.completed["mc"] == sum(
        r.completed["mc"] for r in report.server_reports)
    assert report.events_fired == sum(
        r.events_fired for r in report.server_reports)
    # The merged p99 sits within the per-server envelope.
    per_server = report.per_server_p99_us["mc"]
    assert len(per_server) == 2
    assert min(per_server) <= report.p99_us() <= max(per_server)
    assert report.throughput_mops() > 0
    assert 0.0 <= report.loss_fraction() <= 1.0


def test_coordinator_plan_schedules_are_replayable_data():
    fleet = _fleet(coordinator=True, load_fraction=0.9,
                   interference_capacity=0.6, harvest_util=0.5)
    cluster = Cluster("vessel", _cfg(), fleet)
    plan = cluster.plan()
    assert plan.cap_schedules is not None
    assert len(plan.cap_schedules) == fleet.num_servers
    for schedule in plan.cap_schedules:
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        assert times[0] == 0
        assert all(0 <= cap <= _cfg().num_workers
                   for _, cap in schedule)
    assert plan.coordinator_stats["harvests"] >= 1


def test_skewed_population_reports_hot_share():
    plan = Cluster("vessel", _cfg(), _fleet(lb_policy="round-robin")) \
        .plan()
    assert plan.hottest_initial > 1.0 / 2  # skew beat the fair share
    assert plan.hottest_initial == plan.hottest_final  # rr never moves
    assert plan.migrations == []


def test_unknown_system_is_rejected():
    with pytest.raises(Exception):
        Cluster("notasystem", _cfg(), _fleet()).run(jobs=1)
