"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError


def test_starts_at_time_zero(sim):
    assert sim.now == 0


def test_after_fires_at_right_time(sim):
    seen = []
    sim.after(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]


def test_at_fires_at_absolute_time(sim):
    seen = []
    sim.at(250, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [250]


def test_events_fire_in_time_order(sim):
    seen = []
    sim.after(300, lambda: seen.append(3))
    sim.after(100, lambda: seen.append(1))
    sim.after(200, lambda: seen.append(2))
    sim.run()
    assert seen == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order(sim):
    seen = []
    for i in range(10):
        sim.at(50, lambda i=i: seen.append(i))
    sim.run()
    assert seen == list(range(10))


def test_cancelled_event_does_not_fire(sim):
    seen = []
    event = sim.after(100, lambda: seen.append("no"))
    event.cancel()
    sim.run()
    assert seen == []
    assert not event.alive


def test_cancel_is_idempotent(sim):
    event = sim.after(100, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_cannot_schedule_in_the_past(sim):
    sim.after(100, lambda: None)
    sim.run()
    assert sim.now == 100
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_run_until_advances_clock_to_until(sim):
    sim.after(10, lambda: None)
    sim.run(until=1000)
    assert sim.now == 1000


def test_run_until_does_not_fire_later_events(sim):
    seen = []
    sim.after(2000, lambda: seen.append("late"))
    sim.run(until=1000)
    assert seen == []
    assert sim.pending() == 1


def test_resume_after_run_until(sim):
    seen = []
    sim.after(2000, lambda: seen.append(sim.now))
    sim.run(until=1000)
    sim.run(until=3000)
    assert seen == [2000]


def test_events_scheduled_during_run_fire(sim):
    seen = []

    def first():
        sim.after(50, lambda: seen.append(sim.now))

    sim.after(100, first)
    sim.run()
    assert seen == [150]


def test_call_soon_fires_at_current_time(sim):
    seen = []

    def now_handler():
        sim.call_soon(lambda: seen.append(sim.now))

    sim.after(42, now_handler)
    sim.run()
    assert seen == [42]


def test_stop_halts_run(sim):
    seen = []
    sim.after(10, lambda: (seen.append(1), sim.stop()))
    sim.after(20, lambda: seen.append(2))
    sim.run()
    assert seen == [1]
    assert sim.pending() == 1


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_step_fires_one_event(sim):
    seen = []
    sim.after(5, lambda: seen.append("a"))
    sim.after(6, lambda: seen.append("b"))
    assert sim.step() is True
    assert seen == ["a"]


def test_peek_returns_next_live_time(sim):
    event = sim.after(100, lambda: None)
    sim.after(200, lambda: None)
    assert sim.peek() == 100
    event.cancel()
    assert sim.peek() == 200


def test_peek_empty_returns_none(sim):
    assert sim.peek() is None


def test_events_fired_counter(sim):
    for i in range(7):
        sim.after(i + 1, lambda: None)
    sim.run()
    assert sim.events_fired == 7


def test_run_not_reentrant(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.after(1, nested)
    sim.run()


def test_event_args_passed(sim):
    seen = []
    sim.after(1, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]


def test_many_events_heap_integrity(sim):
    import random
    rng = random.Random(7)
    times = [rng.randrange(1, 100000) for _ in range(2000)]
    seen = []
    for t in times:
        sim.at(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == sorted(times)


# ----------------------------------------------------------------------
# post(): the fire-and-forget fast path
# ----------------------------------------------------------------------
def test_post_fires_at_right_time(sim):
    seen = []
    sim.post(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]


def test_post_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.post(-1, lambda: None)


def test_post_args_passed(sim):
    seen = []
    sim.post(1, lambda a, b: seen.append((a, b)), 3, "y")
    sim.run()
    assert seen == [(3, "y")]


def test_post_and_after_share_one_ordering(sim):
    """Same-timestamp post() and after() events fire in schedule order."""
    seen = []
    sim.after(50, lambda: seen.append("a1"))
    sim.post(50, lambda: seen.append("p1"))
    sim.after(50, lambda: seen.append("a2"))
    sim.post(50, lambda: seen.append("p2"))
    sim.run()
    assert seen == ["a1", "p1", "a2", "p2"]


def test_post_counts_in_pending_and_events_fired(sim):
    sim.post(5, lambda: None)
    sim.after(6, lambda: None)
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0
    assert sim.events_fired == 2


def test_post_respects_run_until(sim):
    seen = []
    sim.post(2000, lambda: seen.append("late"))
    sim.run(until=1000)
    assert seen == []
    assert sim.pending() == 1
    sim.run()
    assert seen == ["late"]


def test_step_fires_post_entries(sim):
    seen = []
    sim.post(5, lambda: seen.append("p"))
    assert sim.step() is True
    assert seen == ["p"]


# ----------------------------------------------------------------------
# Dead-entry compaction (regression: a simulator reused across
# run(until=...) windows used to accumulate cancelled events scheduled
# past `until` in the heap without bound)
# ----------------------------------------------------------------------
def test_cancelled_events_past_until_do_not_accumulate(sim):
    window = 1_000
    for i in range(200):
        start = i * window
        # A completion event far past this window, always cancelled --
        # the scheduler-churn pattern that used to leak heap entries.
        event = sim.at(start + 10 * window, lambda: None)
        sim.at(start + 1, lambda: None)
        sim.run(until=(i + 1) * window)
        event.cancel()
    assert sim.pending() == 0
    # The heap may keep a bounded number of dead entries (lazy deletion)
    # but must not hold all 200.
    assert len(sim._heap) <= 130


def test_compaction_preserves_order_and_liveness(sim):
    import random
    rng = random.Random(11)
    seen = []
    events = []
    for _ in range(3000):
        t = rng.randrange(1, 1_000_000)
        events.append(sim.at(t, lambda t=t: seen.append(t)))
    kept = []
    for i, event in enumerate(events):
        if i % 3 == 0:
            event.cancel()  # triggers compaction along the way
        else:
            kept.append(event.time)
    sim.run()
    assert seen == sorted(kept)


def test_cancel_storm_inside_handler_keeps_running_loop_valid(sim):
    """_compact() must mutate the heap in place: run() holds a local
    reference across callbacks."""
    seen = []
    victims = [sim.at(10_000 + i, lambda: seen.append("victim"))
               for i in range(300)]

    def massacre():
        for event in victims:
            event.cancel()
        seen.append("massacre")

    sim.after(1, massacre)
    sim.after(20_000, lambda: seen.append("survivor"))
    sim.run()
    assert seen == ["massacre", "survivor"]
