"""Tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams


def test_same_name_returns_same_stream():
    rngs = RngStreams(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_names_are_independent():
    rngs = RngStreams(1)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_instances():
    first = [RngStreams(7).stream("x").random() for _ in range(3)]
    second = [RngStreams(7).stream("x").random() for _ in range(3)]
    assert first == second


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_existing():
    rngs1 = RngStreams(3)
    rngs1.stream("a")
    values_with_only_a = [rngs1.stream("a").random() for _ in range(3)]

    rngs2 = RngStreams(3)
    rngs2.stream("b")  # extra stream created first
    rngs2.stream("a")
    values_with_b_too = [rngs2.stream("a").random() for _ in range(3)]
    assert values_with_only_a == values_with_b_too


def test_spawn_derives_independent_factory():
    parent = RngStreams(9)
    child = parent.spawn("child")
    assert child.root_seed != parent.root_seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_spawn_is_deterministic():
    a = RngStreams(9).spawn("c").stream("x").random()
    b = RngStreams(9).spawn("c").stream("x").random()
    assert a == b
