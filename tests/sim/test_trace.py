"""Tests for the tracer and timeline renderer."""

import pytest

from repro.sim.trace import Tracer, category_glyph, render_timeline
from repro.hardware.machine import Machine


def test_record_and_query_spans(sim):
    tracer = Tracer(sim)
    tracer.record(0, 100, 200, "app:x")
    tracer.record(0, 200, 300, "idle")
    assert tracer.spans_between(0, 0, 1000) == [
        (100, 200, "app:x"), (200, 300, "idle")]


def test_spans_clipped_to_window(sim):
    tracer = Tracer(sim)
    tracer.record(0, 100, 500, "app:x")
    assert tracer.spans_between(0, 200, 300) == [(200, 300, "app:x")]


def test_zero_length_spans_skipped(sim):
    tracer = Tracer(sim)
    tracer.record(0, 100, 100, "app:x")
    assert tracer.spans_between(0, 0, 1000) == []


def test_span_cap_drops_excess(sim):
    tracer = Tracer(sim, max_spans_per_core=2)
    for i in range(5):
        tracer.record(0, i * 10, i * 10 + 5, "idle")
    assert len(tracer.spans[0]) == 2
    assert tracer.dropped == 3


def test_busy_fraction(sim):
    tracer = Tracer(sim)
    tracer.record(0, 0, 400, "app:x")
    tracer.record(0, 400, 1000, "idle")
    assert tracer.busy_fraction(0, 0, 1000) == pytest.approx(0.4)
    assert tracer.busy_fraction(0, 0, 1000, prefix="idle") == \
        pytest.approx(0.6)


def test_glyphs():
    assert category_glyph("app:memcached") == "M"
    assert category_glyph("runtime") == "r"
    assert category_glyph("kernel") == "K"
    assert category_glyph("idle") == "."
    assert category_glyph("weird") == "?"


def test_render_majority_per_bucket(sim):
    tracer = Tracer(sim)
    tracer.record(0, 0, 70, "app:a")
    tracer.record(0, 70, 100, "kernel")
    text = render_timeline(tracer, 0, 100, cores=[0], width=10,
                           legend=False)
    strip = text.split("|")[1]
    assert strip == "AAAAAAAKKK"


def test_render_legend_and_empty_window(sim):
    tracer = Tracer(sim)
    tracer.record(0, 0, 10, "app:a")
    text = render_timeline(tracer, 0, 10, cores=[0], width=5)
    assert "A=app:a" in text
    with pytest.raises(ValueError):
        render_timeline(tracer, 10, 10)


def test_machine_integration(sim, costs):
    machine = Machine(sim, costs, 2)
    tracer = Tracer(sim)
    machine.attach_tracer(tracer)
    machine.cores[0].run("app:svc", 500)
    sim.run(until=800)
    machine.settle_all()
    assert tracer.spans_between(0, 0, 800) == [
        (0, 500, "app:svc"), (500, 800, "idle")]


def test_tracer_agrees_with_accounting(sim, costs):
    machine = Machine(sim, costs, 1)
    tracer = Tracer(sim)
    machine.attach_tracer(tracer)
    core = machine.cores[0]
    core.run("app:x", 300, lambda: core.run("kernel", 200))
    sim.run(until=1000)
    machine.settle_all()
    total_app = sum(e - s for s, e, c in tracer.spans[0] if c == "app:x")
    assert total_app == core.acct.buckets["app:x"]


def test_spans_between_bisects_correct_window(sim):
    # Many sequential spans; windows landing on and between boundaries
    # must return exactly the overlapping spans (bisect fast path).
    tracer = Tracer(sim)
    for i in range(1000):
        tracer.record(0, i * 10, i * 10 + 10, f"s{i}")
    assert tracer.spans_between(0, 250, 270) == [
        (250, 260, "s25"), (260, 270, "s26")]
    # half-open: a span ending exactly at t0 or starting at t1 is excluded
    assert tracer.spans_between(0, 260, 260) == []
    got = tracer.spans_between(0, 255, 9995)
    assert got[0] == (255, 260, "s25")
    assert got[-1] == (9990, 9995, "s999")
    assert len(got) == 975
