"""CalendarSimulator must fire the identical event sequence as the
binary-heap Simulator — same times, same order, same clock semantics —
under schedule/cancel storms, reuse across run windows, and the post()
fast path.  The fire-order contract is what lets experiments swap the
queue without perturbing determinism."""

import random

import pytest

from repro.sim.calendar import CalendarSimulator
from repro.sim.engine import SimulationError, Simulator


def _storm(sim, seed, log, rounds=2000):
    """Drive a randomized schedule/cancel workload and log firings."""
    rng = random.Random(seed)
    handles = []

    def fire(tag):
        log.append((sim.now, tag))
        # Re-schedule from inside handlers too.
        if rng.random() < 0.35:
            delay = rng.randrange(0, 5000)
            tag2 = f"{tag}/r{len(log)}"
            if rng.random() < 0.5:
                sim.post(delay, fire, tag2)
            else:
                handles.append(sim.after(delay, fire, tag2))
        if handles and rng.random() < 0.3:
            handles.pop(rng.randrange(len(handles))).cancel()

    for i in range(rounds):
        delay = rng.randrange(0, 200_000)
        if rng.random() < 0.4:
            sim.post(delay, fire, f"p{i}")
        else:
            handles.append(sim.after(delay, fire, f"e{i}"))
    # A cancel storm before running: kill ~1/3 outright.
    rng.shuffle(handles)
    for _ in range(len(handles) // 3):
        handles.pop().cancel()


@pytest.mark.parametrize("seed", [1, 42, 777])
@pytest.mark.parametrize("width", [64, 4096, 1_000_000])
def test_fire_order_identical_under_storm(seed, width):
    log_heap, log_cal = [], []
    heap_sim = Simulator()
    cal_sim = CalendarSimulator(bucket_width_ns=width)
    _storm(heap_sim, seed, log_heap)
    _storm(cal_sim, seed, log_cal)
    heap_sim.run(until=150_000)
    cal_sim.run(until=150_000)
    assert log_cal == log_heap
    assert cal_sim.now == heap_sim.now == 150_000
    assert cal_sim.events_fired == heap_sim.events_fired
    # Both engines then drain the leftover tail identically.
    heap_sim.run()
    cal_sim.run()
    assert log_cal == log_heap
    assert cal_sim.pending() == heap_sim.pending() == 0


def test_same_time_fires_in_schedule_order():
    sim = CalendarSimulator()
    log = []
    sim.at(100, log.append, "a")
    sim.post(100, log.append, "b")
    sim.at(100, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]


def test_cancel_is_honored_and_pending_tracks():
    sim = CalendarSimulator()
    log = []
    keep = sim.at(50, log.append, "keep")
    kill = sim.at(50, log.append, "kill")
    kill.cancel()
    assert sim.pending() == 1
    sim.run()
    assert log == ["keep"]
    assert keep.alive is False


def test_cancel_storm_triggers_compaction():
    sim = CalendarSimulator(bucket_width_ns=256)
    log = []
    handles = [sim.at(i * 10, log.append, i) for i in range(500)]
    for handle in handles[::2]:
        handle.cancel()  # 250 dead > live threshold path
    sim.run()
    assert log == list(range(1, 500, 2))


def test_run_advances_clock_to_until():
    sim = CalendarSimulator()
    sim.post(10, lambda: None)
    sim.run(until=9_999)
    assert sim.now == 9_999
    assert sim.pending() == 0


def test_past_schedule_rejected():
    sim = CalendarSimulator()
    sim.post(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.post(-1, lambda: None)


def test_reuse_across_windows_matches_heap():
    log_heap, log_cal = [], []
    for sim, log in ((Simulator(), log_heap),
                     (CalendarSimulator(bucket_width_ns=128), log_cal)):
        def tick(sim=sim, log=log):
            log.append(sim.now)
            sim.post(7_321, tick)
        sim.post(0, tick)
        for window in range(1, 6):
            sim.run(until=window * 20_000)
    assert log_cal == log_heap
