"""Tests for the coroutine process abstraction."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Interrupt, Proc, Timeout, WaitFor


def test_process_runs_to_completion(sim):
    steps = []

    def body():
        steps.append(sim.now)
        yield Timeout(100)
        steps.append(sim.now)
        yield Timeout(50)
        steps.append(sim.now)

    proc = Proc(sim, body())
    sim.run()
    assert steps == [0, 100, 150]
    assert proc.finished


def test_process_result_is_return_value(sim):
    def body():
        yield Timeout(1)
        return 42

    proc = Proc(sim, body())
    sim.run()
    assert proc.result == 42


def test_wait_for_other_process(sim):
    order = []

    def worker():
        yield Timeout(100)
        order.append("worker")
        return "payload"

    def waiter(target):
        value = yield WaitFor(target)
        order.append(("waiter", value, sim.now))

    target = Proc(sim, worker())
    Proc(sim, waiter(target))
    sim.run()
    assert order == ["worker", ("waiter", "payload", 100)]


def test_wait_for_finished_process_resumes_immediately(sim):
    def worker():
        yield Timeout(10)
        return "done"

    target = Proc(sim, worker())
    sim.run()

    seen = []

    def waiter():
        value = yield WaitFor(target)
        seen.append((value, sim.now))

    Proc(sim, waiter())
    sim.run()
    assert seen == [("done", 10)]


def test_interrupt_raises_inside_generator(sim):
    caught = []

    def body():
        try:
            yield Timeout(1000)
        except Interrupt as exc:
            caught.append((sim.now, exc.cause))

    proc = Proc(sim, body())
    sim.after(100, proc.interrupt, "preempted")
    sim.run()
    assert caught == [(100, "preempted")]


def test_interrupt_cancels_pending_timeout(sim):
    resumed = []

    def body():
        try:
            yield Timeout(1000)
            resumed.append("timeout")
        except Interrupt:
            pass

    proc = Proc(sim, body())
    sim.after(10, proc.interrupt)
    sim.run()
    assert resumed == []
    assert sim.now == 10


def test_unhandled_interrupt_finishes_process(sim):
    def body():
        yield Timeout(1000)

    proc = Proc(sim, body())
    sim.after(5, proc.interrupt)
    sim.run()
    assert proc.finished
    assert proc.result is None


def test_interrupting_finished_process_is_an_error(sim):
    def body():
        yield Timeout(1)

    proc = Proc(sim, body())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        Timeout(-5)


def test_yielding_garbage_is_an_error(sim):
    def body():
        yield "nonsense"

    Proc(sim, body())
    with pytest.raises(SimulationError):
        sim.run()


def test_multiple_waiters_all_resume(sim):
    seen = []

    def worker():
        yield Timeout(30)
        return "v"

    def waiter(name, target):
        value = yield WaitFor(target)
        seen.append((name, value))

    target = Proc(sim, worker())
    Proc(sim, waiter("a", target))
    Proc(sim, waiter("b", target))
    sim.run()
    assert sorted(seen) == [("a", "v"), ("b", "v")]


def test_interrupt_can_be_survived_and_continue(sim):
    trace = []

    def body():
        while True:
            try:
                yield Timeout(100)
                trace.append(("slept", sim.now))
                return
            except Interrupt:
                trace.append(("interrupted", sim.now))

    proc = Proc(sim, body())
    sim.after(50, proc.interrupt)
    sim.run()
    assert trace == [("interrupted", 50), ("slept", 150)]
