"""Vectorized-source equivalence: batch draws == per-event draws.

The fluid engine's correctness rests on one invariant: pre-drawing a
source's whole schedule through numpy-backed uniform blocks yields the
*same integers* as the per-event scalar path on the same RNG stream.
These tests pin that invariant for the uniform transplant itself, for
every service-sampler kind (USR mix, TPC-C lognormal, bimodal,
exponential, constant), and for both arrival source shapes (open-loop
Poisson and bursty MMPP) against the real engine across seeds.
"""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.vectorized import BufferedUniforms, draw_bursty, \
    draw_open_loop
from repro.workloads.base import AppKind, App, BurstySource, OpenLoopSource
from repro.workloads.memcached import UsrServiceSampler
from repro.workloads.silo import silo_service_sampler
from repro.workloads.synthetic import (
    BimodalService,
    ConstantService,
    ExponentialService,
)
from repro.workloads.vectorized import batch_services

SEEDS = (42, 7, 20260808)


# ----------------------------------------------------------------------
# Uniform transplant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_buffered_uniforms_bit_identical(seed):
    scalar = random.Random(seed)
    buf = BufferedUniforms(random.Random(seed))
    # Cross a block boundary so the refill path is exercised.
    assert [buf.u() for _ in range(20_000)] \
        == [scalar.random() for _ in range(20_000)]


def test_buffered_uniforms_leaves_source_untouched():
    rng = random.Random(1)
    before = rng.getstate()
    buf = BufferedUniforms(rng)
    for _ in range(100):
        buf.u()
    assert rng.getstate() == before


@pytest.mark.parametrize("seed", SEEDS)
def test_variate_replays_match_stdlib(seed):
    scalar = random.Random(seed)
    buf = BufferedUniforms(random.Random(seed))
    for i in range(2_000):
        if i % 3 == 0:
            assert buf.expovariate(0.001) == scalar.expovariate(0.001)
        elif i % 3 == 1:
            assert buf.normalvariate(5.0, 0.8) \
                == scalar.normalvariate(5.0, 0.8)
        else:
            assert buf.lognormvariate(6.8, 0.22) \
                == scalar.lognormvariate(6.8, 0.22)


# ----------------------------------------------------------------------
# Service samplers (the USR / TPC-C / bimodal satellite requirement)
# ----------------------------------------------------------------------
def _sampler(kind, rng):
    if kind == "usr":
        return UsrServiceSampler(rng)
    if kind == "tpcc":
        return silo_service_sampler(rng)
    if kind == "bimodal":
        return BimodalService(800, 20_000, 0.05, rng)
    if kind == "exponential":
        return ExponentialService(1000.0, rng)
    return ConstantService(1500)


@pytest.mark.parametrize("kind", ["usr", "tpcc", "bimodal", "exponential",
                                  "constant"])
@pytest.mark.parametrize("seed", SEEDS)
def test_batch_services_integer_identical(kind, seed):
    n = 5_000
    scalar = _sampler(kind, random.Random(seed))
    batch = _sampler(kind, random.Random(seed))
    assert batch_services(batch, n) == [scalar() for _ in range(n)]


def test_batch_services_rejects_unknown_sampler():
    with pytest.raises(TypeError):
        batch_services(lambda: 1, 4)


# ----------------------------------------------------------------------
# Arrival schedules vs the real per-event sources
# ----------------------------------------------------------------------
def _scalar_arrivals(source_cls, seed, rate, until, **kwargs):
    sim = Simulator()
    app = App("probe", AppKind.LATENCY, mean_service_ns=1000)
    seen = []
    rngs = RngStreams(seed)
    source_cls(sim, app, lambda req: seen.append(req.arrival_ns), rate,
               ConstantService(1000), rngs.stream("arrivals/probe"),
               **kwargs)
    sim.run(until=until)
    return seen


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("rate", [0.2, 2.0, 9.5])
def test_open_loop_arrivals_integer_identical(seed, rate):
    until = 2_000_000
    expected = _scalar_arrivals(OpenLoopSource, seed, rate, until)
    got = draw_open_loop(RngStreams(seed).stream("arrivals/probe"),
                         rate, until)
    assert got == expected


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("rate", [0.5, 4.0])
def test_bursty_arrivals_integer_identical(seed, rate):
    # Long enough for many calm/burst phase toggles, so tick/toggle
    # interleaving on the shared stream is genuinely exercised.
    until = 3_000_000
    expected = _scalar_arrivals(BurstySource, seed, rate, until)
    got = draw_bursty(RngStreams(seed).stream("arrivals/probe"),
                      rate, until)
    assert got == expected


def test_bursty_differs_from_open_loop():
    # Sanity: the bursty replay is not accidentally the Poisson one.
    seed, rate, until = 42, 2.0, 1_000_000
    bursty = draw_bursty(RngStreams(seed).stream("arrivals/x"), rate, until)
    plain = draw_open_loop(RngStreams(seed).stream("arrivals/x"), rate,
                           until)
    assert bursty != plain
