"""Tests for measurement primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.stats import (
    BusyAccounter,
    Counter,
    LatencyRecorder,
    TimeWeightedValue,
    summarize_ns,
)


# ----------------------------------------------------------------------
# summarize_ns / LatencyRecorder
# ----------------------------------------------------------------------
def test_summary_of_empty_is_nan():
    summary = summarize_ns([])
    assert summary["count"] == 0
    assert math.isnan(summary["avg_us"])
    assert math.isnan(summary["p999_us"])


def test_summary_single_sample():
    summary = summarize_ns([2000])
    assert summary["count"] == 1
    assert summary["avg_us"] == pytest.approx(2.0)
    assert summary["p50_us"] == pytest.approx(2.0)
    assert summary["p999_us"] == pytest.approx(2.0)


def test_summary_percentile_ordering():
    samples = list(range(1, 100001))
    summary = summarize_ns(samples)
    assert (summary["p50_us"] <= summary["p90_us"] <= summary["p99_us"]
            <= summary["p999_us"] <= summary["max_us"])


def test_recorder_mean_and_percentile():
    recorder = LatencyRecorder("r")
    for value in (1000, 2000, 3000):
        recorder.record(value)
    assert recorder.mean_us() == pytest.approx(2.0)
    assert recorder.percentile_us(50) == pytest.approx(2.0)
    assert recorder.count == 3


def test_recorder_rejects_negative():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1)


def test_recorder_clear():
    recorder = LatencyRecorder()
    recorder.record(5)
    recorder.clear()
    assert recorder.count == 0


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=200))
def test_summary_mean_matches_numpy(samples):
    summary = summarize_ns(samples)
    assert summary["avg_us"] == pytest.approx(
        sum(samples) / len(samples) / 1000.0)
    assert summary["count"] == len(samples)


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=200))
def test_summary_percentiles_within_range(samples):
    summary = summarize_ns(samples)
    lo, hi = min(samples) / 1000.0, max(samples) / 1000.0
    for key in ("p50_us", "p90_us", "p99_us", "p999_us"):
        assert lo - 1e-9 <= summary[key] <= hi + 1e-9


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_accumulates():
    counter = Counter()
    counter.add()
    counter.add(4)
    assert counter.value == 5


def test_counter_rate():
    counter = Counter()
    counter.add(1000)
    # 1000 ops in 1 ms == 1M ops/s
    assert counter.rate_per_sec(1_000_000) == pytest.approx(1e6)


def test_counter_rate_zero_elapsed():
    counter = Counter()
    counter.add(10)
    assert counter.rate_per_sec(0) == 0.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add(-1)


# ----------------------------------------------------------------------
# TimeWeightedValue
# ----------------------------------------------------------------------
def test_time_weighted_average():
    sim = Simulator()
    value = TimeWeightedValue(sim, initial=2.0)
    sim.after(100, lambda: value.set(4.0))
    sim.run(until=200)
    # 2.0 for 100 ns, 4.0 for 100 ns
    assert value.time_average() == pytest.approx(3.0)


def test_time_weighted_add():
    sim = Simulator()
    value = TimeWeightedValue(sim, initial=1.0)
    value.add(2.0)
    assert value.value == 3.0


def test_time_weighted_reset():
    sim = Simulator()
    value = TimeWeightedValue(sim, initial=10.0)
    sim.after(100, value.reset)
    sim.after(100, lambda: value.set(2.0))
    sim.run(until=200)
    assert value.time_average() == pytest.approx(2.0)


# ----------------------------------------------------------------------
# BusyAccounter
# ----------------------------------------------------------------------
def test_busy_accounter_charges_and_fractions():
    acct = BusyAccounter()
    acct.charge("app", 750)
    acct.charge("kernel", 250)
    assert acct.total() == 1000
    assert acct.fraction("app") == pytest.approx(0.75)
    assert acct.fraction("missing") == 0.0


def test_busy_accounter_rejects_negative():
    with pytest.raises(ValueError):
        BusyAccounter().charge("x", -1)


def test_busy_accounter_cores_equivalent():
    acct = BusyAccounter()
    acct.charge("app", 2_000_000)
    assert acct.cores_equivalent("app", 1_000_000) == pytest.approx(2.0)


def test_busy_accounter_merge():
    a = BusyAccounter()
    a.charge("app", 10)
    b = BusyAccounter()
    b.charge("app", 5)
    b.charge("idle", 3)
    merged = a.merged(b)
    assert merged.buckets == {"app": 15, "idle": 3}
    # originals untouched
    assert a.buckets == {"app": 10}


def test_busy_accounter_empty_fraction():
    assert BusyAccounter().fraction("app") == 0.0
