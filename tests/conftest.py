"""Shared fixtures for the test suite."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.timing import CostModel
from repro.hardware.machine import Machine


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def costs():
    return CostModel()


@pytest.fixture
def rngs():
    return RngStreams(12345)


@pytest.fixture
def machine(sim, costs):
    """A small machine: 1 scheduler core + 4 workers."""
    return Machine(sim, costs, 5)


@pytest.fixture
def machine1(sim, costs):
    return Machine(sim, costs, 1)


from repro.kernel.signals import KernelSignals
from repro.kernel.syscalls import SyscallLayer
from repro.uprocess.loader import ProgramImage
from repro.uprocess.manager import Manager
from repro.uprocess.threads import UThread


@pytest.fixture
def manager(sim, costs):
    return Manager(syscalls=SyscallLayer(costs),
                   signals=KernelSignals(sim, costs), costs=costs)


@pytest.fixture
def domain(manager, machine):
    return manager.create_domain(machine.cores)


@pytest.fixture
def two_uprocs(manager, domain):
    a = manager.create_uprocess(domain, ProgramImage("app-a"))
    b = manager.create_uprocess(domain, ProgramImage("app-b"))
    return a, b


@pytest.fixture
def installed(domain, two_uprocs, machine):
    """Thread of app A installed on core 0 (plus a thread of app B)."""
    a, b = two_uprocs
    thread_a = UThread(a)
    thread_b = UThread(b)
    domain.switcher.install(machine.cores[0], thread_a)
    return thread_a, thread_b
