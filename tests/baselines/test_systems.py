"""Cross-cutting tests for the baseline colocation systems."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.baselines.arachne import ArachneSystem
from repro.baselines.caladan import CaladanSystem, caladan_dr_l, caladan_dr_h
from repro.baselines.ideal import IdealSystem
from repro.baselines.linux_cfs import LinuxCfsSystem
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app, UsrServiceSampler

ALL_SYSTEMS = [IdealSystem, VesselSystem, CaladanSystem, caladan_dr_l,
               caladan_dr_h, ArachneSystem, LinuxCfsSystem]


def run_system(factory, rate=0.5, sim_ms=12, workers=4, seed=7,
               with_batch=True):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = factory(sim, machine, rngs, worker_cores=machine.cores[1:])
    app = memcached_app()
    system.add_app(app)
    if with_batch:
        system.add_app(linpack_app())
    system.start()
    OpenLoopSource(sim, app, system.submit, rate,
                   UsrServiceSampler(rngs.stream("svc")),
                   rngs.stream("arr"))
    sim.run(until=sim_ms * MS)
    return system, app, system.report()


@pytest.mark.parametrize("factory", ALL_SYSTEMS)
def test_every_system_completes_requests(factory):
    _, app, _ = run_system(factory)
    assert app.completed.value > 0
    # At 12.5% load every system must keep up on average.
    assert app.completed.value >= 0.9 * (app.offered.value - len(app.queue))


@pytest.mark.parametrize("factory", ALL_SYSTEMS)
def test_accounting_conserved_everywhere(factory):
    system, _, report = run_system(factory)
    total = sum(report.buckets.values())
    assert total == report.elapsed_ns * report.num_worker_cores


@pytest.mark.parametrize("factory", ALL_SYSTEMS)
def test_latency_at_least_service_time(factory):
    _, app, _ = run_system(factory)
    assert app.latency.percentile_us(1) >= 0.5  # min service ~0.7 us


def test_ideal_has_zero_overhead():
    _, _, report = run_system(IdealSystem)
    assert report.waste_fraction() == 0.0
    assert report.app_fraction() == pytest.approx(1.0)


def test_latency_ordering_vessel_caladan_cfs():
    """The paper's headline latency ordering at moderate load."""
    results = {}
    for factory in (VesselSystem, CaladanSystem, LinuxCfsSystem):
        _, app, _ = run_system(factory, rate=1.0, sim_ms=15)
        results[factory] = app.latency.percentile_us(99.9)
    assert results[VesselSystem] < results[CaladanSystem]
    assert results[CaladanSystem] < results[LinuxCfsSystem]


def test_efficiency_ordering_vessel_beats_caladan():
    _, _, vessel = run_system(VesselSystem, rate=1.5, sim_ms=15)
    _, _, caladan = run_system(CaladanSystem, rate=1.5, sim_ms=15)
    assert vessel.waste_fraction() < caladan.waste_fraction()
    assert vessel.app_fraction() > caladan.app_fraction()


def test_dr_h_more_efficient_higher_latency_than_dr_l():
    _, app_l, rep_l = run_system(caladan_dr_l, rate=1.5, sim_ms=20)
    _, app_h, rep_h = run_system(caladan_dr_h, rate=1.5, sim_ms=20)
    assert rep_h.waste_fraction() <= rep_l.waste_fraction() + 0.01
    assert app_h.latency.percentile_us(99.9) > \
        app_l.latency.percentile_us(99.9) * 0.9


def test_caladan_uses_fig3_pipeline():
    system, _, _ = run_system(CaladanSystem, rate=2.5, sim_ms=15)
    assert system.reallocations + system.rebinds > 0
    assert system.parks > 0


def test_cfs_b_app_gets_most_cores_at_low_load():
    """Paper: 'Linux CFS always grants cores to execute B-app'."""
    _, _, report = run_system(LinuxCfsSystem, rate=0.3, sim_ms=20)
    b_cores = report.buckets.get("app:linpack", 0) / report.elapsed_ns
    assert b_cores > 2.0  # of 4 workers


def test_cfs_latency_is_milliseconds():
    _, app, _ = run_system(LinuxCfsSystem, rate=0.5, sim_ms=25)
    assert app.latency.percentile_us(99.9) > 1000  # >1 ms


def test_arachne_saturates_at_granted_cores():
    """With a lagging estimator, Arachne cannot serve much more than its
    initial single-core grant within a short window."""
    _, app, _ = run_system(ArachneSystem, rate=2.5, sim_ms=15)
    max_possible = 15 * MS / 970  # one core's worth
    assert app.completed.value <= 1.3 * max_possible
    assert app.latency.percentile_us(99.9) > 500


def test_caladan_bw_cap_constructor():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)
    system = CaladanSystem(sim, machine, RngStreams(0),
                           worker_cores=machine.cores[1:],
                           bw_cap_app="membench", bw_cap_gbps=10.0)
    assert system.bw_cap_app == "membench"


def test_ideal_preempts_batch_for_latency_instantly():
    _, app, report = run_system(IdealSystem, rate=2.0, sim_ms=10)
    assert app.latency.percentile_us(99.9) < 5.0
