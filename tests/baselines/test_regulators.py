"""Tests for the MBA and cgroup bandwidth-regulation baselines."""

import pytest

from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.membus import MemoryBus
from repro.baselines.cgroup_bw import CgroupBandwidthRegulator
from repro.baselines.mba import MBA_EFFECTIVE_FRACTION, MbaRegulator
from repro.workloads.membench import membench_app


# ----------------------------------------------------------------------
# MBA
# ----------------------------------------------------------------------
def test_mba_levels_quantized():
    assert MbaRegulator.quantize_level(10) == 10
    assert MbaRegulator.quantize_level(14) == 10
    assert MbaRegulator.quantize_level(16) == 20
    assert MbaRegulator.quantize_level(1) == 10
    assert MbaRegulator.quantize_level(150) == 100


def test_mba_calibration_monotone_and_overshooting():
    levels = sorted(MBA_EFFECTIVE_FRACTION)
    fractions = [MBA_EFFECTIVE_FRACTION[lv] for lv in levels]
    assert fractions == sorted(fractions)
    # the documented inaccuracy: achieved >> programmed at low levels
    assert MBA_EFFECTIVE_FRACTION[10] > 0.3
    assert MBA_EFFECTIVE_FRACTION[100] == 1.0


def test_mba_applies_bus_cap(sim):
    bus = MemoryBus(sim, 40.0)
    regulator = MbaRegulator(bus, "t", full_rate_gbps=12.0)
    level = regulator.set_target(30)
    assert level == 30
    assert bus._caps["t"] == pytest.approx(
        12.0 * MBA_EFFECTIVE_FRACTION[30])


def test_mba_rejects_bad_rate(sim):
    bus = MemoryBus(sim, 40.0)
    with pytest.raises(ValueError):
        MbaRegulator(bus, "t", full_rate_gbps=0)


# ----------------------------------------------------------------------
# cgroup CPU quota
# ----------------------------------------------------------------------
def test_cgroup_quota_rounds_up_to_slices(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus)
    regulator = CgroupBandwidthRegulator(sim, machine.cores[0],
                                         app.batch_work,
                                         target_fraction=0.1,
                                         period_ns=20 * MS,
                                         slice_ns=5 * MS)
    # 10% of 20 ms = 2 ms, rounded UP to one 5 ms slice -> 25%
    assert regulator.effective_runtime_ns() == 5 * MS


def test_cgroup_full_quota_not_rounded(sim, costs):
    machine = Machine(sim, costs, 1)
    app = membench_app(machine.membus)
    regulator = CgroupBandwidthRegulator(sim, machine.cores[0],
                                         app.batch_work, 1.0)
    assert regulator.effective_runtime_ns() == regulator.period_ns


def test_cgroup_throttles_after_quota(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus)
    regulator = CgroupBandwidthRegulator(sim, machine.cores[0],
                                         app.batch_work, 0.25)
    regulator.start()
    sim.run(until=5 * regulator.period_ns)
    assert regulator.throttle_events >= 4
    # achieved CPU fraction ~= one slice per period (25% here)
    machine.cores[0].settle()
    busy = machine.cores[0].acct.buckets.get("app:membench", 0)
    fraction = busy / (5 * regulator.period_ns)
    assert fraction == pytest.approx(0.25, abs=0.07)


def test_cgroup_overshoot_at_low_target(sim, costs):
    """The Figure 13b inaccuracy: 10% asked, ~25% delivered."""
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus)
    regulator = CgroupBandwidthRegulator(sim, machine.cores[0],
                                         app.batch_work, 0.10)
    regulator.start()
    sim.run(until=5 * regulator.period_ns)
    machine.cores[0].settle()
    busy = machine.cores[0].acct.buckets.get("app:membench", 0)
    fraction = busy / (5 * regulator.period_ns)
    assert fraction > 0.2  # far above the 10% target


def test_cgroup_target_validated(sim, costs):
    machine = Machine(sim, costs, 1)
    app = membench_app(machine.membus)
    with pytest.raises(ValueError):
        CgroupBandwidthRegulator(sim, machine.cores[0], app.batch_work, 0.0)
    with pytest.raises(ValueError):
        CgroupBandwidthRegulator(sim, machine.cores[0], app.batch_work, 1.5)
