"""Tests for the kernel IPI path."""

import pytest

from repro.hardware.ipi import IpiController


def test_ipi_delivery_latency(sim, costs):
    ipi = IpiController(sim, costs)
    seen = []
    ipi.register_handler(1, lambda vec: seen.append((vec, sim.now)))
    ipi.send(1, vector=7)
    sim.run()
    assert seen == [(7, costs.ipi_deliver_ns)]


def test_ipi_to_unregistered_core_rejected(sim, costs):
    ipi = IpiController(sim, costs)
    with pytest.raises(KeyError):
        ipi.send(3)


def test_ipi_counter(sim, costs):
    ipi = IpiController(sim, costs)
    ipi.register_handler(0, lambda vec: None)
    for _ in range(4):
        ipi.send(0)
    sim.run()
    assert ipi.sent == 4


def test_ipi_slower_than_uintr(sim, costs):
    # The §2.2 premise the whole design rests on.
    assert costs.ipi_deliver_ns > 10 * costs.uintr_deliver_ns
