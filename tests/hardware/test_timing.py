"""Tests for the cost model's calibration invariants."""

import random

import pytest

from repro.hardware.timing import CostModel


@pytest.fixture
def cm():
    return CostModel()


def test_vessel_park_switch_matches_table1(cm):
    # Table 1: 0.161 us average; the deterministic base is 160 ns.
    assert cm.vessel_park_switch_ns() == 160


def test_vessel_preempt_includes_uintr_path(cm):
    assert cm.vessel_preempt_switch_ns() == (
        cm.vessel_park_switch_ns() + cm.uintr_send_ns
        + cm.uintr_deliver_ns + cm.uiret_ns)


def test_caladan_realloc_matches_fig3(cm):
    assert cm.caladan_realloc_ns() == 5300


def test_caladan_phases_sum_to_total(cm):
    phases = cm.caladan_realloc_phases()
    assert sum(phases.values()) == cm.caladan_realloc_ns()
    assert len(phases) == 6


def test_caladan_park_switch_matches_table1(cm):
    one_way = cm.caladan_park_yield_ns + cm.caladan_park_switch_ns
    assert one_way == 2100  # Table 1: 2.103 us average


def test_switch_cost_ordering(cm):
    # The paper's core claim: userspace switch << cooperative kernel
    # switch << preemptive reallocation.
    assert (cm.vessel_park_switch_ns()
            < cm.caladan_park_yield_ns + cm.caladan_park_switch_ns
            < cm.caladan_realloc_ns())
    assert cm.caladan_realloc_ns() > 30 * cm.vessel_park_switch_ns()


def test_uintr_vs_ipi_ratio(cm):
    # §2.2: "up to 15x lower latencies than IPI-based signals"
    ipi_path = cm.syscall_ns + cm.ipi_deliver_ns + cm.signal_deliver_ns
    uintr_path = cm.uintr_send_ns + cm.uintr_deliver_ns
    assert 10 <= ipi_path / uintr_path <= 25


def test_jitter_bounded(cm):
    rng = random.Random(0)
    for _ in range(10000):
        j = cm.jitter_ns(rng)
        assert j == 0 or cm.jitter_min_ns <= j <= cm.jitter_max_ns


def test_kernel_jitter_bigger_than_user_jitter(cm):
    assert cm.kernel_jitter_min_ns > cm.jitter_max_ns


def test_jitter_probability_roughly_respected(cm):
    rng = random.Random(1)
    hits = sum(1 for _ in range(200_000) if cm.jitter_ns(rng) > 0)
    assert hits / 200_000 == pytest.approx(cm.jitter_probability, rel=0.3)


def test_copy_with_overrides(cm):
    modified = cm.copy(wrpkru_ns=99)
    assert modified.wrpkru_ns == 99
    assert cm.wrpkru_ns != 99
    assert modified.syscall_ns == cm.syscall_ns


def test_switch_noise_nonnegative(cm):
    rng = random.Random(2)
    for _ in range(1000):
        assert cm.vessel_switch_noise_ns(rng) >= 0
        assert cm.caladan_switch_noise_ns(rng) >= 0


def test_wrpkru_in_documented_range(cm):
    # §2.3: 11-260 cycles; at ~2 GHz that is roughly 5-130 ns.
    assert 5 <= cm.wrpkru_ns <= 130
