"""Tests for the MPK model: PKRU semantics, regions, combined checks."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.mpk import (
    AccessKind,
    AddressSpaceMap,
    MpkFault,
    PageFault,
    Permission,
    PkruRegister,
    Region,
    PKEY_COUNT,
)


# ----------------------------------------------------------------------
# PkruRegister
# ----------------------------------------------------------------------
def test_zero_pkru_allows_everything():
    pkru = PkruRegister(0)
    for pkey in range(PKEY_COUNT):
        assert pkru.allows(pkey, AccessKind.READ)
        assert pkru.allows(pkey, AccessKind.WRITE)


def test_access_disable_blocks_read_and_write():
    pkru = PkruRegister(0b01 << (2 * 3))  # AD for key 3
    assert not pkru.allows(3, AccessKind.READ)
    assert not pkru.allows(3, AccessKind.WRITE)
    assert pkru.allows(4, AccessKind.READ)


def test_write_disable_blocks_only_write():
    pkru = PkruRegister(0b10 << (2 * 5))  # WD for key 5
    assert pkru.allows(5, AccessKind.READ)
    assert not pkru.allows(5, AccessKind.WRITE)


def test_execute_never_gated_by_pkru():
    pkru = PkruRegister(PkruRegister.ALL_DENIED_EXCEPT_0)
    for pkey in range(PKEY_COUNT):
        assert pkru.allows(pkey, AccessKind.EXECUTE)


def test_all_denied_except_0_shape():
    pkru = PkruRegister(PkruRegister.ALL_DENIED_EXCEPT_0)
    assert pkru.allows(0, AccessKind.WRITE)
    for pkey in range(1, PKEY_COUNT):
        assert not pkru.allows(pkey, AccessKind.READ)


def test_build_grants_exactly_requested():
    pkru = PkruRegister.build({2: True, 7: False})
    assert pkru.allows(2, AccessKind.WRITE)
    assert pkru.allows(7, AccessKind.READ)
    assert not pkru.allows(7, AccessKind.WRITE)
    assert not pkru.allows(3, AccessKind.READ)
    assert pkru.allows(0, AccessKind.WRITE)  # key 0 always open


def test_wrpkru_rdpkru_roundtrip():
    pkru = PkruRegister()
    pkru.wrpkru(0xDEAD)
    assert pkru.rdpkru() == 0xDEAD


def test_pkru_value_range_checked():
    with pytest.raises(ValueError):
        PkruRegister(1 << 32)
    with pytest.raises(ValueError):
        PkruRegister().wrpkru(-1)


def test_pkey_range_checked():
    with pytest.raises(ValueError):
        PkruRegister(0).allows(16, AccessKind.READ)


def test_pkru_equality_and_copy():
    a = PkruRegister(123)
    b = a.copy()
    assert a == b
    b.wrpkru(5)
    assert a != b
    assert a.value == 123


@given(st.dictionaries(st.integers(min_value=1, max_value=15), st.booleans(),
                       max_size=15))
def test_build_matches_spec_for_all_keys(grants):
    pkru = PkruRegister.build(grants)
    for pkey in range(1, PKEY_COUNT):
        if pkey in grants:
            assert pkru.allows(pkey, AccessKind.READ)
            assert pkru.allows(pkey, AccessKind.WRITE) == grants[pkey]
        else:
            assert not pkru.allows(pkey, AccessKind.READ)


# ----------------------------------------------------------------------
# Regions and the address-space map
# ----------------------------------------------------------------------
def _map_with(*regions):
    aspace = AddressSpaceMap("test")
    for region in regions:
        aspace.map(region)
    return aspace


def test_region_validation():
    with pytest.raises(ValueError):
        Region(start=0, size=0, perms=Permission.rw(), pkey=1)
    with pytest.raises(ValueError):
        Region(start=0, size=10, perms=Permission.rw(), pkey=16)


def test_overlapping_map_rejected():
    aspace = _map_with(Region(0x1000, 0x1000, Permission.rw(), 1, "a"))
    with pytest.raises(ValueError):
        aspace.map(Region(0x1800, 0x1000, Permission.rw(), 2, "b"))


def test_adjacent_regions_allowed():
    aspace = _map_with(
        Region(0x1000, 0x1000, Permission.rw(), 1, "a"),
        Region(0x2000, 0x1000, Permission.rw(), 2, "b"),
    )
    assert aspace.find(0x1FFF).name == "a"
    assert aspace.find(0x2000).name == "b"


def test_find_unmapped_returns_none():
    aspace = _map_with(Region(0x1000, 0x1000, Permission.rw(), 1))
    assert aspace.find(0x0) is None
    assert aspace.find(0x2000) is None


def test_unmap_removes_region():
    region = Region(0x1000, 0x1000, Permission.rw(), 1)
    aspace = _map_with(region)
    aspace.unmap(region)
    assert aspace.find(0x1000) is None


def test_check_access_happy_path():
    region = Region(0x1000, 0x1000, Permission.rw(), 3)
    aspace = _map_with(region)
    pkru = PkruRegister.build({3: True})
    assert aspace.check_access(0x1400, AccessKind.WRITE, pkru) is region


def test_unmapped_access_is_page_fault():
    aspace = _map_with(Region(0x1000, 0x1000, Permission.rw(), 1))
    with pytest.raises(PageFault):
        aspace.check_access(0x9000, AccessKind.READ, PkruRegister(0))


def test_page_perms_checked_before_pkey():
    # Read-only page: a write faults as a page fault even with open PKRU.
    aspace = _map_with(Region(0x1000, 0x1000, Permission.READ, 1))
    with pytest.raises(PageFault):
        aspace.check_access(0x1000, AccessKind.WRITE, PkruRegister(0))


def test_pkey_denied_access_is_mpk_fault():
    aspace = _map_with(Region(0x1000, 0x1000, Permission.rw(), 4))
    pkru = PkruRegister.build({})  # nothing granted
    with pytest.raises(MpkFault) as excinfo:
        aspace.check_access(0x1000, AccessKind.READ, pkru)
    assert excinfo.value.pkey == 4


def test_exec_only_region_fetch_allowed_read_denied():
    # The §4.1 text-region property.
    aspace = _map_with(Region(0x1000, 0x1000, Permission.exec_only(), 2))
    pkru = PkruRegister.build({})  # no data rights at all
    aspace.check_access(0x1000, AccessKind.EXECUTE, pkru)  # ok
    with pytest.raises(PageFault):
        aspace.check_access(0x1000, AccessKind.READ, pkru)


def test_set_pkey_rebinds_region():
    region = Region(0x1000, 0x1000, Permission.rw(), 1)
    aspace = _map_with(region)
    aspace.set_pkey(region, 9)
    pkru = PkruRegister.build({9: True})
    aspace.check_access(0x1000, AccessKind.WRITE, pkru)


def test_set_pkey_unmapped_region_rejected():
    aspace = AddressSpaceMap()
    region = Region(0x1000, 0x1000, Permission.rw(), 1)
    with pytest.raises(ValueError):
        aspace.set_pkey(region, 2)


def test_set_perms_changes_page_bits():
    region = Region(0x1000, 0x1000, Permission.rw(), 1)
    aspace = _map_with(region)
    aspace.set_perms(region, Permission.READ)
    with pytest.raises(PageFault):
        aspace.check_access(0x1000, AccessKind.WRITE,
                            PkruRegister.build({1: True}))


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                max_size=50))
def test_find_matches_linear_scan(addresses):
    regions = [Region(i * 0x10000, 0x8000, Permission.rw(), 1, f"r{i}")
               for i in range(8)]
    aspace = _map_with(*regions)
    for addr in addresses:
        expected = next((r for r in regions if r.contains(addr)), None)
        assert aspace.find(addr) is expected
