"""Tests for the shared-bandwidth bus model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.membus import BandwidthMeter, MemoryBus, _water_fill


# ----------------------------------------------------------------------
# water-filling
# ----------------------------------------------------------------------
def test_water_fill_satisfies_all_when_capacity_ample():
    shares = _water_fill({"a": 1.0, "b": 2.0}, capacity=10.0)
    assert shares == {"a": 1.0, "b": 2.0}


def test_water_fill_splits_evenly_when_scarce():
    shares = _water_fill({"a": 10.0, "b": 10.0}, capacity=4.0)
    assert shares["a"] == pytest.approx(2.0)
    assert shares["b"] == pytest.approx(2.0)


def test_water_fill_redistributes_leftover():
    shares = _water_fill({"small": 1.0, "big": 10.0}, capacity=6.0)
    assert shares["small"] == pytest.approx(1.0)
    assert shares["big"] == pytest.approx(5.0)


@given(st.dictionaries(st.text(min_size=1, max_size=3),
                       st.floats(min_value=0.01, max_value=100.0),
                       min_size=1, max_size=10),
       st.floats(min_value=0.1, max_value=500.0))
def test_water_fill_properties(demands, capacity):
    shares = _water_fill(demands, capacity)
    total = sum(shares.values())
    assert total <= capacity + 1e-6
    for key, share in shares.items():
        assert -1e-9 <= share <= demands[key] + 1e-6
    # Work-conserving: either all demands met or capacity exhausted.
    if sum(demands.values()) <= capacity:
        assert total == pytest.approx(sum(demands.values()))
    else:
        assert total == pytest.approx(capacity)


# ----------------------------------------------------------------------
# MemoryBus
# ----------------------------------------------------------------------
def test_single_transfer_at_demand_rate(sim):
    bus = MemoryBus(sim, 10.0)
    done = []
    bus.start_transfer("a", 400.0, 4.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(100, abs=2)  # 400 B at 4 B/ns


def test_two_transfers_share_capacity(sim):
    bus = MemoryBus(sim, 10.0)
    done = []
    bus.start_transfer("a", 1000.0, 20.0, lambda: done.append(("a", sim.now)))
    bus.start_transfer("b", 1000.0, 20.0, lambda: done.append(("b", sim.now)))
    sim.run()
    # each gets 5 B/ns -> 200 ns
    for _, when in done:
        assert when == pytest.approx(200, abs=3)


def test_completion_frees_capacity_for_the_other(sim):
    bus = MemoryBus(sim, 10.0)
    done = {}
    bus.start_transfer("short", 500.0, 20.0,
                       lambda: done.setdefault("short", sim.now))
    bus.start_transfer("long", 2000.0, 20.0,
                       lambda: done.setdefault("long", sim.now))
    sim.run()
    # short: 100 ns at 5 B/ns; long: 500 B by t=100, then 1500 B at 10 B/ns
    assert done["short"] == pytest.approx(100, abs=3)
    assert done["long"] == pytest.approx(250, abs=4)


def test_cancel_returns_remaining_bytes(sim):
    bus = MemoryBus(sim, 10.0)
    transfer = bus.start_transfer("a", 1000.0, 10.0)
    sim.after(50, lambda: None)
    sim.run(until=50)
    remaining = bus.cancel_transfer(transfer)
    assert remaining == pytest.approx(500.0, abs=15)
    sim.run()
    assert bus.active_count() == 0


def test_cancel_twice_is_safe(sim):
    bus = MemoryBus(sim, 10.0)
    transfer = bus.start_transfer("a", 100.0, 10.0)
    bus.cancel_transfer(transfer)
    assert bus.cancel_transfer(transfer) == 0.0


def test_tag_cap_limits_aggregate(sim):
    bus = MemoryBus(sim, 100.0)
    bus.set_tag_cap("tenant", 5.0)
    done = []
    bus.start_transfer("tenant", 500.0, 50.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(100, abs=3)  # capped at 5 B/ns


def test_tag_cap_shared_within_tag(sim):
    bus = MemoryBus(sim, 100.0)
    bus.set_tag_cap("t", 10.0)
    done = []
    bus.start_transfer("t", 500.0, 50.0, lambda: done.append(sim.now))
    bus.start_transfer("t", 500.0, 50.0, lambda: done.append(sim.now))
    sim.run()
    for when in done:
        assert when == pytest.approx(100, abs=3)  # 5 B/ns each


def test_uncap_restores_full_rate(sim):
    bus = MemoryBus(sim, 100.0)
    bus.set_tag_cap("t", 1.0)
    bus.set_tag_cap("t", None)
    done = []
    bus.start_transfer("t", 500.0, 50.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(10, abs=2)


def test_consumed_bytes_tracks_progress(sim):
    bus = MemoryBus(sim, 10.0)
    bus.start_transfer("a", 1000.0, 10.0)
    sim.run(until=30)
    assert bus.consumed_bytes("a") == pytest.approx(300.0, abs=15)


def test_bytes_conserved_on_completion(sim):
    bus = MemoryBus(sim, 10.0)
    bus.start_transfer("a", 777.0, 3.0)
    sim.run()
    assert bus.consumed_bytes("a") == pytest.approx(777.0, abs=1)


def test_utilization(sim):
    bus = MemoryBus(sim, 10.0)
    assert bus.utilization() == 0.0
    bus.start_transfer("a", 1e6, 4.0)
    assert bus.utilization() == pytest.approx(0.4)
    bus.start_transfer("b", 1e6, 20.0)
    assert bus.utilization() == pytest.approx(1.0)


def test_meter_windows(sim):
    bus = MemoryBus(sim, 10.0)
    meter = BandwidthMeter(bus, "a")
    bus.start_transfer("a", 1e9, 4.0)
    sim.run(until=100)
    assert meter.sample_gbps() == pytest.approx(4.0, abs=0.2)
    sim.run(until=200)
    assert meter.sample_gbps() == pytest.approx(4.0, abs=0.2)


def test_invalid_parameters_rejected(sim):
    with pytest.raises(ValueError):
        MemoryBus(sim, 0)
    bus = MemoryBus(sim, 10.0)
    with pytest.raises(ValueError):
        bus.start_transfer("a", 0, 1.0)
    with pytest.raises(ValueError):
        bus.start_transfer("a", 10.0, 0)
    with pytest.raises(ValueError):
        bus.set_tag_cap("a", -1.0)


def test_fully_throttled_transfer_waits_for_uncap(sim):
    bus = MemoryBus(sim, 10.0)
    bus.set_tag_cap("t", 0.0)
    done = []
    bus.start_transfer("t", 100.0, 10.0, lambda: done.append(sim.now))
    sim.run(until=1000)
    assert done == []
    bus.set_tag_cap("t", None)
    sim.run(until=2000)
    assert done and done[0] == pytest.approx(1010, abs=3)
