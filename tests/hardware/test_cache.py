"""Tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cache import CacheSim


def small_cache(ways=2, sets=4, line=64):
    return CacheSim(size_bytes=ways * sets * line, ways=ways, line_bytes=line)


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheSim(size_bytes=1000, ways=3, line_bytes=64)  # not divisible
    with pytest.raises(ValueError):
        CacheSim(size_bytes=0, ways=1, line_bytes=64)


def test_first_access_misses_second_hits():
    cache = small_cache()
    assert cache.access(0x0) is False
    assert cache.access(0x0) is True


def test_same_line_different_offsets_hit():
    cache = small_cache(line=64)
    cache.access(0x100)
    assert cache.access(0x13F) is True  # same 64-byte line


def test_lru_eviction_within_set():
    cache = small_cache(ways=2, sets=1, line=64)
    cache.access(0 * 64)   # A
    cache.access(1 * 64)   # B
    cache.access(2 * 64)   # C evicts A (LRU)
    assert cache.access(1 * 64) is True    # B survived
    assert cache.access(0 * 64) is False   # A was evicted


def test_mru_update_protects_recent_line():
    cache = small_cache(ways=2, sets=1, line=64)
    cache.access(0 * 64)   # A
    cache.access(1 * 64)   # B
    cache.access(0 * 64)   # touch A -> B is now LRU
    cache.access(2 * 64)   # C evicts B
    assert cache.access(0 * 64) is True
    assert cache.access(1 * 64) is False


def test_distinct_sets_do_not_interfere():
    cache = small_cache(ways=1, sets=4, line=64)
    for set_index in range(4):
        cache.access(set_index * 64)
    for set_index in range(4):
        assert cache.access(set_index * 64) is True


def test_access_range_counts_misses():
    cache = small_cache(ways=8, sets=8, line=64)
    misses = cache.access_range(0, 64 * 5)
    assert misses == 5
    assert cache.access_range(0, 64 * 5) == 0


def test_access_range_partial_lines():
    cache = small_cache(ways=8, sets=8, line=64)
    # 96 bytes starting at offset 32 touch exactly two lines (32..127)
    assert cache.access_range(32, 96) == 2
    # one more byte spills into a third line
    assert cache.access_range(32, 97) == 1  # only line 2 is new


def test_access_range_rejects_nonpositive():
    with pytest.raises(ValueError):
        small_cache().access_range(0, 0)


def test_flush_empties_cache():
    cache = small_cache()
    cache.access(0)
    cache.flush()
    assert cache.resident_lines() == 0
    assert cache.access(0) is False


def test_stats_by_tag():
    cache = small_cache()
    cache.access(0, tag="a")
    cache.access(0, tag="a")
    cache.access(64 * 100, tag="b")
    assert cache.stats.miss_rate("a") == pytest.approx(0.5)
    assert cache.stats.miss_rate("b") == pytest.approx(1.0)
    assert cache.stats.accesses == 3


def test_miss_rate_empty_is_zero():
    assert small_cache().stats.miss_rate() == 0.0


def test_working_set_fitting_cache_converges_to_hits():
    cache = CacheSim(64 * 1024, ways=8, line_bytes=64)
    # 32 KiB working set in a 64 KiB cache: after one pass, all hits.
    for _ in range(2):
        cache.access_range(0, 32 * 1024, tag="ws")
    hits, misses = cache.stats.by_tag["ws"]
    assert misses == 32 * 1024 // 64          # only the cold pass
    assert hits == 32 * 1024 // 64


@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                max_size=300))
def test_resident_lines_bounded_by_capacity(addresses):
    cache = small_cache(ways=2, sets=4)
    for addr in addresses:
        cache.access(addr)
    assert cache.resident_lines() <= 2 * 4
    assert cache.stats.accesses == len(addresses)


@given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                max_size=200))
def test_immediate_reaccess_always_hits(addresses):
    cache = small_cache(ways=4, sets=8)
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr) is True
