"""Tests for userspace interrupts: delivery, deferral, UITT routing."""

import pytest

from repro.hardware.uintr import UintrController, VECTOR_COUNT


@pytest.fixture
def uintr(sim, costs):
    return UintrController(sim, costs)


def _wire(uintr, sender=0, receiver=1, vector=2):
    seen = []
    uintr.register_handler(receiver, lambda vec: seen.append(
        (vec, uintr.sim.now)))
    uintr.on_user_resume(receiver)
    index = uintr.register_sender(sender, receiver, vector)
    return seen, index


def test_delivery_to_running_receiver(uintr, sim, costs):
    seen, index = _wire(uintr)
    uintr.senduipi(0, index)
    sim.run()
    assert len(seen) == 1
    vector, when = seen[0]
    assert vector == 2
    assert when == costs.uintr_send_ns + costs.uintr_deliver_ns


def test_delivery_deferred_while_suppressed(uintr, sim):
    seen, index = _wire(uintr)
    uintr.on_user_suspend(1)
    uintr.senduipi(0, index)
    sim.run()
    assert seen == []
    assert uintr.deferred == 1


def test_deferred_vector_delivered_on_resume(uintr, sim):
    seen, index = _wire(uintr)
    uintr.on_user_suspend(1)
    uintr.senduipi(0, index)
    sim.run()
    uintr.on_user_resume(1)
    sim.run()
    assert [v for v, _ in seen] == [2]


def test_multiple_vectors_coalesce_in_upid(uintr, sim):
    seen = []
    uintr.register_handler(1, lambda vec: seen.append(vec))
    uintr.on_user_suspend(1)
    i3 = uintr.register_sender(0, 1, 3)
    i7 = uintr.register_sender(0, 1, 7)
    uintr.senduipi(0, i3)
    uintr.senduipi(0, i7)
    uintr.on_user_resume(1)
    sim.run()
    assert sorted(seen) == [3, 7]


def test_duplicate_vector_posts_once(uintr, sim):
    seen, index = _wire(uintr)
    uintr.on_user_suspend(1)
    uintr.senduipi(0, index)
    uintr.senduipi(0, index)
    uintr.on_user_resume(1)
    sim.run()
    assert len(seen) == 1  # the PIR is a bitmap


def test_unknown_uitt_index_rejected(uintr):
    _wire(uintr)
    with pytest.raises(IndexError):
        uintr.senduipi(0, 99)


def test_unknown_sender_rejected(uintr):
    with pytest.raises(IndexError):
        uintr.senduipi(42, 0)


def test_sender_registration_requires_upid(uintr):
    with pytest.raises(KeyError):
        uintr.register_sender(0, receiver_id=9, vector=1)


def test_vector_range_checked(uintr, sim):
    seen = []
    upid = uintr.register_handler(1, seen.append)
    with pytest.raises(ValueError):
        upid.post(VECTOR_COUNT)


def test_counters(uintr, sim):
    seen, index = _wire(uintr)
    uintr.senduipi(0, index)
    sim.run()
    assert uintr.sent == 1
    assert uintr.delivered == 1
    assert uintr.deferred == 0


def test_two_receivers_routed_independently(uintr, sim):
    seen_a, seen_b = [], []
    uintr.register_handler(1, lambda v: seen_a.append(v))
    uintr.register_handler(2, lambda v: seen_b.append(v))
    uintr.on_user_resume(1)
    uintr.on_user_resume(2)
    ia = uintr.register_sender(0, 1, 5)
    ib = uintr.register_sender(0, 2, 6)
    uintr.senduipi(0, ia)
    uintr.senduipi(0, ib)
    sim.run()
    assert seen_a == [5]
    assert seen_b == [6]


def test_suspend_between_post_and_delivery_defers(uintr, sim):
    seen, index = _wire(uintr)
    uintr.senduipi(0, index)
    # Suppress before the delivery event fires.
    uintr.on_user_suspend(1)
    sim.run()
    assert seen == []
    uintr.on_user_resume(1)
    sim.run()
    assert len(seen) == 1


def test_pending_vectors_peeks_without_draining(uintr, sim):
    seen, index = _wire(uintr)
    uintr.on_user_suspend(1)
    uintr.senduipi(0, index)
    assert uintr.pending_vectors(1) == [2]
    assert uintr.pending_vectors(1) == [2]  # peek, not drain
    assert uintr.pending_vectors(9) == []   # unknown receiver
    uintr.on_user_resume(1)
    sim.run()
    assert uintr.pending_vectors(1) == []
    assert [v for v, _ in seen] == [2]


def test_injected_drop_keeps_vector_posted(uintr, sim):
    seen, index = _wire(uintr)
    from repro.hardware.uintr import UINTR_DROP
    uintr.inject = lambda s, r, v: UINTR_DROP
    uintr.senduipi(0, index)
    sim.run()
    # The doorbell is lost but the PIR bit survives.
    assert seen == []
    assert uintr.dropped == 1
    assert uintr.pending_vectors(1) == [2]


def test_retry_after_drop_delivers_posted_vector(uintr, sim):
    seen, index = _wire(uintr)
    from repro.hardware.uintr import UINTR_DROP
    dispositions = [UINTR_DROP, None]
    uintr.inject = lambda s, r, v: dispositions.pop(0)
    uintr.senduipi(0, index)
    sim.run()
    assert seen == []
    # The watchdog's retry: a second senduipi re-raises the doorbell
    # and the original posted vector gets delivered exactly once.
    uintr.senduipi(0, index)
    sim.run()
    assert [v for v, _ in seen] == [2]
    assert uintr.pending_vectors(1) == []


def test_injected_delay_shifts_delivery(uintr, sim, costs):
    seen, index = _wire(uintr)
    uintr.inject = lambda s, r, v: 5_000
    uintr.senduipi(0, index)
    sim.run()
    assert uintr.delayed == 1
    _, when = seen[0]
    assert when == costs.uintr_send_ns + costs.uintr_deliver_ns + 5_000


def test_inject_hook_not_consulted_while_suppressed(uintr, sim):
    seen, index = _wire(uintr)
    calls = []
    uintr.inject = lambda s, r, v: calls.append((s, r, v))
    uintr.on_user_suspend(1)
    uintr.senduipi(0, index)
    sim.run()
    # Suppression defers before the wire is ever touched, so there is
    # no in-flight notification for the hook to drop or delay.
    assert calls == []
    assert uintr.deferred == 1
    uintr.on_user_resume(1)
    sim.run()
    assert len(seen) == 1
