"""Tests for cores: segment execution, preemption, accounting."""

import pytest

from repro.sim.engine import SimulationError
from repro.hardware.machine import Core, CoreMode, Machine


def test_run_completes_and_calls_back(sim):
    core = Core(sim, 0)
    done = []
    core.run("app", 1000, lambda: done.append(sim.now))
    sim.run()
    assert done == [1000]


def test_accounting_charges_category(sim):
    core = Core(sim, 0)
    core.run("app:x", 500)
    sim.run()
    core.settle()
    assert core.acct.buckets["app:x"] == 500


def test_idle_time_accounted(sim):
    core = Core(sim, 0)
    sim.after(300, lambda: core.run("app", 200))
    sim.run()
    core.settle()
    assert core.acct.buckets["idle"] == 300
    assert core.acct.buckets["app"] == 200


def test_preempt_returns_remaining(sim):
    core = Core(sim, 0)
    core.run("app", 1000)
    sim.run(until=400)
    remaining = core.preempt()
    assert remaining == 600
    core.settle()
    assert core.acct.buckets["app"] == 400


def test_preempt_cancels_completion_callback(sim):
    core = Core(sim, 0)
    done = []
    core.run("app", 1000, lambda: done.append("x"))
    sim.run(until=100)
    core.preempt()
    sim.run()
    assert done == []


def test_double_run_is_an_error(sim):
    core = Core(sim, 0)
    core.run("app", 100)
    with pytest.raises(SimulationError):
        core.run("app", 100)


def test_preempt_idle_core_is_an_error(sim):
    core = Core(sim, 0)
    with pytest.raises(SimulationError):
        core.preempt()


def test_negative_duration_rejected(sim):
    core = Core(sim, 0)
    with pytest.raises(SimulationError):
        core.run("app", -5)


def test_zero_duration_segment(sim):
    core = Core(sim, 0)
    done = []
    core.run("app", 0, lambda: done.append(sim.now))
    sim.run()
    assert done == [0]


def test_set_idle_requires_no_segment(sim):
    core = Core(sim, 0)
    core.run("app", 100)
    with pytest.raises(SimulationError):
        core.set_idle()


def test_busy_flag(sim):
    core = Core(sim, 0)
    assert not core.busy
    core.run("app", 10)
    assert core.busy
    sim.run()
    assert not core.busy


def test_chained_segments_account_fully(sim):
    core = Core(sim, 0)

    def chain(n):
        if n > 0:
            core.run("app", 100, lambda: chain(n - 1))

    chain(5)
    sim.run()
    core.settle()
    assert core.acct.buckets["app"] == 500


def test_machine_has_controllers(sim, costs):
    machine = Machine(sim, costs, 3)
    assert machine.num_cores == 3
    assert machine.uintr is not None
    assert machine.ipi is not None
    assert machine.membus is not None


def test_machine_rejects_zero_cores(sim, costs):
    with pytest.raises(ValueError):
        Machine(sim, costs, 0)


def test_total_accounting_aggregates(sim, costs):
    machine = Machine(sim, costs, 2)
    machine.cores[0].run("app", 100)
    machine.cores[1].run("kernel", 50)
    sim.run()
    total = machine.total_accounting()
    assert total.buckets["app"] == 100
    assert total.buckets["kernel"] == 50


def test_core_pkru_starts_locked_down(sim):
    core = Core(sim, 0)
    from repro.hardware.mpk import AccessKind
    assert core.pkru.allows(0, AccessKind.WRITE)
    assert not core.pkru.allows(1, AccessKind.READ)
    assert core.mode is CoreMode.IDLE
