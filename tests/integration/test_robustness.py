"""Robustness: the headline orderings hold across seeds, and the
Caladan policy knobs behave as specified."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.baselines.caladan import CaladanSystem, caladan_dr_h
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app, UsrServiceSampler


def run_once(factory, seed, rate=1.2, workers=3, sim_ms=12):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = factory(sim, machine, rngs, worker_cores=machine.cores[1:])
    app = memcached_app()
    system.add_app(app)
    system.add_app(linpack_app())
    system.start()
    OpenLoopSource(sim, app, system.submit, rate,
                   UsrServiceSampler(rngs.stream("svc")),
                   rngs.stream("arr"))
    sim.run(until=sim_ms * MS)
    return app, system.report()


@pytest.mark.parametrize("seed", [3, 17, 1001])
def test_vessel_beats_caladan_across_seeds(seed):
    vessel_app, vessel_rep = run_once(VesselSystem, seed)
    caladan_app, caladan_rep = run_once(CaladanSystem, seed)
    assert vessel_app.latency.percentile_us(99.9) \
        < caladan_app.latency.percentile_us(99.9)
    assert vessel_rep.waste_fraction() < caladan_rep.waste_fraction()


def test_caladan_tick_stretches_with_cores():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 50)
    small = CaladanSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:9])
    big = CaladanSystem(sim, machine, RngStreams(1),
                        worker_cores=machine.cores[1:49])
    assert small.alloc_interval_ns == 10_000  # the configured 10 us
    assert big.alloc_interval_ns > 10_000     # stretched past capacity


def test_dr_h_grants_later_than_plain():
    """The Delay Range upper bound gates grants."""
    sim = Simulator()
    machine = Machine(sim, CostModel(), 4)
    plain = CaladanSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    drh = caladan_dr_h(sim, machine, RngStreams(1),
                       worker_cores=machine.cores[1:])
    app = memcached_app()
    plain.add_app(app)
    from repro.workloads.base import Request
    app.enqueue(Request(app, arrival_ns=0, service_ns=1000))
    sim.now = 2000  # 2 us of queueing delay
    assert plain._congested(app)          # > 0 triggers plain Caladan
    drh_app = memcached_app("mc2")
    drh.add_app(drh_app)
    drh_app.enqueue(Request(drh_app, arrival_ns=0, service_ns=1000))
    assert not drh._congested(drh_app)    # 2 us < the 4 us DR-H bound
    sim.now = 5000
    assert drh._congested(drh_app)


def test_vessel_deterministic_across_runs():
    first_app, first = run_once(VesselSystem, seed=7)
    second_app, second = run_once(VesselSystem, seed=7)
    assert first.buckets == second.buckets
    assert first_app.latency.samples == second_app.latency.samples
