"""End-to-end invariants across the whole stack, including randomized
(property-based) runs of the full VESSEL system."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.scheduler import VesselSystem
from repro.baselines.caladan import CaladanSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app
from repro.workloads.synthetic import ExponentialService


def _run(system_cls, workers, n_lapps, rate_each, seed, sim_ms=8):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = system_cls(sim, machine, rngs,
                        worker_cores=machine.cores[1:])
    apps = [memcached_app(f"l{i}") for i in range(n_lapps)]
    for app in apps:
        system.add_app(app)
    batch = linpack_app()
    system.add_app(batch)
    system.start()
    for i, app in enumerate(apps):
        OpenLoopSource(sim, app, system.submit, rate_each,
                       ExponentialService(1000, rngs.stream(f"svc{i}")),
                       rngs.stream(f"arr{i}"))
    sim.run(until=sim_ms * MS)
    return sim, machine, system, apps, batch


@settings(max_examples=12, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=6),
    n_lapps=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_vessel_randomized_invariants(workers, n_lapps, seed):
    rate_each = 0.4 * workers / n_lapps  # 40% aggregate load
    sim, machine, system, apps, batch = _run(
        VesselSystem, workers, n_lapps, rate_each, seed)
    report = system.report()

    # 1. Time conservation: every worker nanosecond is accounted once.
    assert sum(report.buckets.values()) == \
        report.elapsed_ns * report.num_worker_cores

    # 2. No request is lost: offered == completed + still queued + in flight.
    for app in apps:
        in_flight = sum(1 for cs in system._cores.values()
                        if cs.request is not None
                        and cs.request.app is app)
        assert app.offered.value == (app.completed.value + len(app.queue)
                                     + in_flight)

    # 3. Latency >= 0 and app work <= offered work.
    for app in apps:
        if app.latency.samples:
            assert min(app.latency.samples) >= 0

    # 4. MPK safety: every core running app code has the PKRU of the
    #    thread the message pipe maps to it.
    pipe = system.domain.smas.pipe
    for core in system.worker_cores:
        task = pipe.cpuid_to_task.get(core.id)
        if task is not None and core.category.startswith("app:"):
            assert core.pkru.value == task.uproc.pkru().value

    # 5. Batch progress is bounded by total core time.
    assert batch.useful_ns <= report.elapsed_ns * report.num_worker_cores


@settings(max_examples=8, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_caladan_randomized_invariants(workers, seed):
    sim, machine, system, apps, batch = _run(
        CaladanSystem, workers, 1, 0.4 * workers, seed)
    report = system.report()
    assert sum(report.buckets.values()) == \
        report.elapsed_ns * report.num_worker_cores
    app = apps[0]
    in_flight = sum(1 for cs in system._cores.values()
                    if cs.request is not None)
    assert app.offered.value == (app.completed.value + len(app.queue)
                                 + in_flight)


def test_same_seed_is_deterministic():
    results = []
    for _ in range(2):
        _, _, system, apps, batch = _run(VesselSystem, 3, 2, 0.4, seed=99)
        results.append((apps[0].completed.value, apps[1].completed.value,
                        batch.useful_ns,
                        tuple(sorted(apps[0].latency.samples))))
    assert results[0] == results[1]


def test_different_seeds_differ():
    outcomes = set()
    for seed in (1, 2):
        _, _, _, apps, _ = _run(VesselSystem, 3, 1, 1.0, seed=seed)
        outcomes.add(tuple(apps[0].latency.samples[:50]))
    assert len(outcomes) == 2


def test_vessel_functional_state_consistent_after_run():
    """After a busy run the uProcess layer is still coherent."""
    _, machine, system, apps, _ = _run(VesselSystem, 4, 2, 1.0, seed=5,
                                       sim_ms=10)
    domain = system.domain
    # every thread claims a core consistently with the pipe map
    for core_id, task in domain.smas.pipe.cpuid_to_task.items():
        if task is not None and task.core_id is not None:
            assert task.core_id == core_id
    # all uProcesses still alive and in their slots
    for uproc in domain.uprocs:
        assert uproc.alive
        assert uproc.slot.in_use


def test_heavier_load_means_more_latency():
    lats = []
    for rate in (0.5, 3.5):
        _, _, _, apps, _ = _run(VesselSystem, 4, 1, rate, seed=11,
                                sim_ms=10)
        lats.append(apps[0].latency.percentile_us(99))
    assert lats[1] > lats[0]


def test_batch_yield_when_latency_app_saturates():
    _, _, system, apps, batch = _run(VesselSystem, 2, 1, 1.9, seed=13,
                                     sim_ms=10)
    report = system.report()
    # ~95% load: linpack must be squeezed to almost nothing
    assert batch.useful_ns < 0.2 * report.elapsed_ns * 2
    assert apps[0].completed.value > 0
