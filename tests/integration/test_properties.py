"""Property-based suites over the core subsystems."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.membus import MemoryBus
from repro.hardware.mpk import AccessKind
from repro.hardware.timing import CostModel
from repro.kernel.cfs import CfsScheduler, CfsTask, Chunk
from repro.kernel.kprocess import KProcess
from repro.kernel.syscalls import SyscallLayer
from repro.uprocess.loader import ProgramImage
from repro.uprocess.manager import Manager
from repro.uprocess.smas import MAX_UPROCESSES, Smas
from repro.uprocess.threads import UThread


# ----------------------------------------------------------------------
# Engine: random event workloads behave like a sorted reference
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                          st.booleans()),
                min_size=1, max_size=120))
def test_engine_fires_live_events_in_order(spec):
    sim = Simulator()
    fired = []
    expected = []
    events = []
    for time, keep in spec:
        event = sim.at(time, lambda t=time: fired.append(t))
        events.append((event, time, keep))
    for event, time, keep in events:
        if keep:
            expected.append(time)
        else:
            event.cancel()
    sim.run()
    assert fired == sorted(expected)


# ----------------------------------------------------------------------
# Memory bus: bytes are conserved under random cancellation
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=10, max_value=10_000),
                          st.floats(min_value=0.5, max_value=30.0),
                          st.integers(min_value=0, max_value=2_000)),
                min_size=1, max_size=25),
       st.floats(min_value=1.0, max_value=50.0))
def test_membus_bytes_conserved(transfers, capacity):
    sim = Simulator()
    bus = MemoryBus(sim, capacity)
    handles = []
    for size, demand, cancel_at in transfers:
        handle = bus.start_transfer("t", size, demand)
        handles.append((handle, size, cancel_at))
    remaining_total = 0.0
    for handle, size, cancel_at in handles:
        if cancel_at > 0:
            if sim.now < cancel_at:
                sim.run(until=cancel_at)
            remaining_total += bus.cancel_transfer(handle)
    sim.run()
    moved = bus.consumed_bytes("t")
    offered = sum(size for size, _, _ in transfers)
    assert moved + remaining_total == pytest.approx(offered, rel=1e-6,
                                                    abs=1.0)


# ----------------------------------------------------------------------
# CFS: time conservation and no lost work under random task mixes
# ----------------------------------------------------------------------
class _CountingTask(CfsTask):
    def __init__(self, chunks):
        self.chunks = list(chunks)
        self.executed = 0

    def next_chunk(self):
        if not self.chunks:
            return None
        duration = self.chunks.pop(0)

        def done(d=duration):
            self.executed += d
        return Chunk(duration, "app", done)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=-10, max_value=10),
                          st.lists(st.integers(min_value=1000,
                                               max_value=500_000),
                                   min_size=1, max_size=5)),
                min_size=1, max_size=6),
       st.integers(min_value=1, max_value=3))
def test_cfs_conserves_time_and_work(task_specs, cores):
    sim = Simulator()
    machine = Machine(sim, CostModel(), cores)
    cfs = CfsScheduler(sim, machine.cores)
    tasks = []
    for nice, chunks in task_specs:
        proc = KProcess("p", nice=nice)
        thread = proc.spawn_thread()
        task = _CountingTask(chunks)
        cfs.register(thread, task)
        cfs.wake(thread)
        tasks.append((task, sum(chunks)))
    sim.run(until=100 * MS)
    total = machine.total_accounting()
    # Conservation: app + kernel + idle == wall time on every core.
    assert sum(total.buckets.values()) == 100 * MS * cores
    for task, offered in tasks:
        # Work is never manufactured; finished tasks ran exactly offered.
        assert task.executed <= offered
        if not task.chunks and task.executed == offered:
            pass  # fully drained
    executed = sum(t.executed for t, _ in tasks)
    assert executed <= total.buckets.get("app", 0) + 1


# ----------------------------------------------------------------------
# SMAS key algebra: no app PKRU ever reaches another slot or the runtime
# ----------------------------------------------------------------------
def test_pkru_isolation_exhaustive():
    for me in range(1, MAX_UPROCESSES + 1):
        pkru = Smas.app_pkru(me)
        for other in range(1, MAX_UPROCESSES + 1):
            if other == me:
                assert pkru.allows(other, AccessKind.WRITE)
            else:
                assert not pkru.allows(other, AccessKind.READ)
        assert not pkru.allows(14, AccessKind.READ)   # runtime
        assert pkru.allows(15, AccessKind.READ)       # pipe RO
        assert not pkru.allows(15, AccessKind.WRITE)


# ----------------------------------------------------------------------
# Userspace switch: random switch sequences keep PKRU/map consistent
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=5),
                          st.booleans()),
                min_size=1, max_size=60))
def test_switch_sequences_keep_invariants(ops):
    sim = Simulator()
    machine = Machine(sim, CostModel(), 4)
    manager = Manager(syscalls=SyscallLayer(CostModel()))
    domain = manager.create_domain(machine.cores)
    uprocs = [manager.create_uprocess(domain, ProgramImage(f"u{i}"))
              for i in range(3)]
    threads = [UThread(uprocs[i % 3]) for i in range(6)]
    from repro.uprocess.threads import UThreadState
    for core_id, thread_index, preempt in ops:
        core = machine.cores[core_id]
        thread = threads[thread_index]
        if thread.state is UThreadState.RUNNING and \
                thread.core_id not in (None, core.id):
            # Scheduling a running thread on a second core must fault.
            with pytest.raises(RuntimeError):
                domain.switcher.switch(core, thread, preempt=preempt)
            continue
        if domain.smas.pipe.cpuid_to_task.get(core.id) is None:
            domain.switcher.install(core, thread)
        else:
            domain.switcher.switch(core, thread, preempt=preempt)
        # Invariant: the core's PKRU is the mapped task's, always.
        mapped = domain.smas.pipe.cpuid_to_task[core.id]
        assert mapped is thread
        assert core.pkru.value == thread.uproc.pkru().value
        assert thread.core_id == core.id
    # No two cores claim the same thread.
    claimed = [t for t in domain.smas.pipe.cpuid_to_task.values()
               if t is not None]
    on_core = [t for t in claimed if t.core_id is not None]
    assert len({id(t) for t in on_core}) == len(on_core)
