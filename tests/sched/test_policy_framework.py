"""Tests for the pluggable-policy framework: registry, mechanism
validation (containment of buggy policies), and backwards compatibility
of the pre-framework ``VesselSystem`` surface."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.obs.ledger import OpLedger
from repro.sched.policy import (
    DEFAULT_L_PREEMPT_QUANTUM_NS, DEFAULT_ROTATION_QUANTUM_NS,
    Rotate, SchedPolicy, available_policies, make_policy, register_policy)
from repro.vessel import scheduler as vessel_scheduler
from repro.vessel.scheduler import VesselSystem
from repro.vessel.policy import VesselDefaultPolicy
from repro.workloads.base import OpenLoopSource
from repro.experiments.common import make_l_app


def run_system(policy=None, rate=1.0, sim_ms=6, **system_kwargs):
    """One small memcached run; returns (system, report, ledger)."""
    sim = Simulator()
    ledger = OpLedger(sim=sim)
    machine = Machine(sim, CostModel(), 4, ledger=ledger)
    rngs = RngStreams(42)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:],
                          policy=policy, **system_kwargs)
    app, sampler = make_l_app("memcached", "memcached", rngs)
    system.add_app(app)
    system.start()
    OpenLoopSource(sim, app, system.submit, rate, sampler,
                   rngs.stream("arrivals/memcached"))
    sim.at(1 * MS, system.begin_measurement)
    sim.run(until=sim_ms * MS)
    return system, system.report(), ledger


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_policies_registered():
    names = available_policies()
    for name in ("default", "mlfq", "sjf", "trust-group", "priority"):
        assert name in names
    assert "abstract" not in names  # the base class is not a policy


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown"):
        make_policy("no-such-policy")


def test_make_policy_forwards_params():
    policy = make_policy("mlfq", levels=5, base_quantum_ns=7_000)
    assert policy.levels == 5
    assert policy.base_quantum_ns == 7_000
    policy = make_policy("default", rotation_quantum_ns=1_234)
    assert policy.rotation_quantum_ns == 1_234


def test_register_requires_concrete_name():
    with pytest.raises(ValueError):
        @register_policy
        class Nameless(SchedPolicy):
            pass  # inherits name == "abstract"


# ----------------------------------------------------------------------
# Backwards compatibility of the VesselSystem surface
# ----------------------------------------------------------------------
def test_default_policy_is_the_vessel_policy(sim, machine, rngs):
    system = VesselSystem(sim, machine, rngs)
    assert isinstance(system.policy, VesselDefaultPolicy)
    assert system.rotation_quantum_ns == DEFAULT_ROTATION_QUANTUM_NS
    assert system.l_preempt_quantum_ns == DEFAULT_L_PREEMPT_QUANTUM_NS


def test_policy_accepts_registry_name(sim, machine, rngs):
    system = VesselSystem(sim, machine, rngs, policy="mlfq")
    assert system.policy.name == "mlfq"


def test_quantum_ctor_params_override_policy(sim, machine, rngs):
    system = VesselSystem(sim, machine, rngs,
                          rotation_quantum_ns=5_000,
                          l_preempt_quantum_ns=40_000)
    assert system.policy.rotation_quantum_ns == 5_000
    assert system.policy.l_preempt_quantum_ns == 40_000
    # the old attribute surface still reads and writes through
    system.rotation_quantum_ns = 9_000
    assert system.policy.rotation_quantum_ns == 9_000


def test_module_constant_aliases_unchanged():
    assert vessel_scheduler.ROTATION_QUANTUM_NS == 20_000
    assert vessel_scheduler.L_PREEMPT_QUANTUM_NS == 20_000
    # pre-framework private names some tests/tools reach for
    assert vessel_scheduler._CoreState is vessel_scheduler.CoreState
    assert vessel_scheduler._AppState is vessel_scheduler.AppState


# ----------------------------------------------------------------------
# Containment: a buggy policy is rejected, not obeyed
# ----------------------------------------------------------------------
class BuggyIdlePolicy(SchedPolicy):
    """Emits Rotate from on_core_idle — never valid there (rotation is
    only meaningful at a request boundary)."""

    name = "test-buggy-idle"

    def on_core_idle(self, core_state):
        return Rotate(core_state.core.id)


def test_invalid_decision_is_rejected_and_counted():
    system, report, ledger = run_system(policy=BuggyIdlePolicy())
    assert system.policy_rejects > 0
    assert ledger.op_counts().get("policy:rejected", 0) > 0
    # The system survives the buggy policy: placement still happens via
    # on_arrival, so requests keep completing.
    assert report.completed.get("memcached", 0) > 0


def test_default_policy_never_rejected():
    system, report, ledger = run_system()
    assert system.policy_rejects == 0
    assert "policy:rejected" not in ledger.op_counts()
    assert report.completed.get("memcached", 0) > 0
