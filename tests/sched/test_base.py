"""Tests for the shared system base and report math."""

import math

import pytest

from repro.sched.base import ColocationSystem, SystemReport
from repro.workloads.base import Request
from repro.workloads.memcached import memcached_app


def test_report_throughput():
    report = SystemReport(system="x", elapsed_ns=1_000_000,
                          num_worker_cores=2)
    report.completed["mc"] = 500
    assert report.throughput_mops("mc") == pytest.approx(0.5)
    assert report.throughput_mops("missing") == 0.0


def test_report_fractions():
    report = SystemReport(system="x", elapsed_ns=100, num_worker_cores=2)
    report.buckets = {"app:a": 60, "app:b": 40, "runtime": 50, "kernel": 30,
                      "idle": 20}
    assert report.app_fraction() == pytest.approx(0.5)
    assert report.waste_fraction() == pytest.approx(0.4)
    assert report.cores_equivalent("app") == pytest.approx(1.0)
    assert report.cores_equivalent("kernel") == pytest.approx(0.3)


def test_cores_equivalent_is_busy_over_elapsed():
    # The naive form — busy / (elapsed * num_cores) * num_cores — must
    # equal the simplified busy / elapsed regardless of the core count.
    for num_cores in (1, 2, 16):
        report = SystemReport(system="x", elapsed_ns=1_000,
                              num_worker_cores=num_cores)
        report.buckets = {"app:a": 750, "runtime": 500}
        naive = (750 / (1_000 * num_cores)) * num_cores
        assert report.cores_equivalent("app") == pytest.approx(naive)
        assert report.cores_equivalent("app") == pytest.approx(0.75)
        assert report.cores_equivalent("runtime") == pytest.approx(0.5)
    empty = SystemReport(system="x", elapsed_ns=0, num_worker_cores=2)
    assert empty.cores_equivalent("app") == 0.0
    report = SystemReport(system="x", elapsed_ns=100, num_worker_cores=2)
    assert report.cores_equivalent("missing") == 0.0


def test_report_p999_missing_is_nan():
    report = SystemReport(system="x", elapsed_ns=1, num_worker_cores=1)
    assert math.isnan(report.p999_us("nope"))


def test_base_system_validations(sim, machine, rngs):
    system = ColocationSystem.__new__(ColocationSystem)
    ColocationSystem.__init__(system, sim, machine, rngs)
    assert len(system.worker_cores) == machine.num_cores - 1
    with pytest.raises(ValueError):
        ColocationSystem(sim, machine, rngs, worker_cores=[])


def test_duplicate_app_rejected(sim, machine, rngs):
    system = ColocationSystem(sim, machine, rngs)
    system.add_app(memcached_app("a"))
    with pytest.raises(ValueError):
        system.add_app(memcached_app("a"))


def test_effective_service_identity_when_decoupled(sim, machine, rngs):
    system = ColocationSystem(sim, machine, rngs)
    app = memcached_app()
    request = Request(app, 0, 1234)
    assert system.effective_service_ns(request) == 1234


def test_effective_service_inflates_with_bus(sim, machine, rngs):
    system = ColocationSystem(sim, machine, rngs)
    system.bus_sensitivity = 2.0
    app = memcached_app()
    request = Request(app, 0, 1000)
    machine.membus.start_transfer("x", 1e12, machine.membus.capacity * 2)
    inflated = system.effective_service_ns(request)
    assert inflated == pytest.approx(1000 * (1 + 2.0 * 0.5), abs=2)


def test_begin_measurement_resets(sim, machine, rngs):
    system = ColocationSystem(sim, machine, rngs)
    app = memcached_app()
    system.add_app(app)
    app.complete(Request(app, 0, 10), 100)
    system.worker_cores[0].run("app:memcached", 50)
    sim.run()
    system.begin_measurement()
    assert app.completed.value == 0
    report = system.report()
    assert report.buckets in ({}, {"idle": 0})
