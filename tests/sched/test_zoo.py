"""Determinism and sanity tests for the policy zoo.

Determinism is a policy contract (see ``repro.sched.zoo``): same seed
⇒ same simulation, for every policy.  Each case runs the policy-zoo
colocation twice in-process and compares the full serialized reports.
"""

import pytest

from repro.experiments.common import run_colocation
from repro.experiments.policy_zoo import ZOO, smoke_config


def _serialize(report):
    return {
        "buckets": dict(sorted(report.buckets.items())),
        "latency": {k: dict(sorted(v.items()))
                    for k, v in sorted(report.latency.items())},
        "completed": dict(sorted(report.completed.items())),
        "useful_ns": dict(sorted(report.useful_ns.items())),
        "events_fired": report.events_fired,
    }


def _run_zoo_once(name, params, seed=42):
    cfg = smoke_config(seed=seed).scaled(sim_ms=6, policy=name,
                                         policy_params=params)
    return run_colocation(
        "vessel", cfg,
        l_specs=[("memcached", "mc-hi", 0.8), ("memcached", "mc-lo", 0.8)],
        b_specs=("linpack",))


@pytest.mark.parametrize("label,name,params",
                         ZOO, ids=[row[0] for row in ZOO])
def test_zoo_policy_is_deterministic(label, name, params):
    first = _serialize(_run_zoo_once(name, params))
    second = _serialize(_run_zoo_once(name, params))
    assert first == second
    # and the run actually served traffic through the policy
    assert first["completed"].get("mc-hi", 0) > 0
    assert first["completed"].get("mc-lo", 0) > 0


def test_zoo_covers_at_least_four_alternative_policies():
    names = {name for _, name, _ in ZOO}
    assert "default" in names
    assert len(names - {"default"}) >= 4


def test_trust_group_pays_forced_idle_for_isolation():
    # Strict per-app cookies on paired SMT siblings must show the
    # core-scheduling signature: strictly less best-effort throughput
    # than the unconstrained default under the identical workload.
    default = _run_zoo_once("default", {})
    trust = _run_zoo_once("trust-group", {})
    assert trust.useful_ns.get("linpack", 0) \
        < default.useful_ns.get("linpack", 0)


def test_trust_group_with_shared_cookie_relaxes():
    # Putting both memcached instances in one trust group lets them
    # share a sibling pair again, recovering batch throughput relative
    # to the strict grouping.
    strict = _run_zoo_once("trust-group", {})
    shared = _run_zoo_once(
        "trust-group", {"groups": {"mc-hi": "mc", "mc-lo": "mc"}})
    assert shared.useful_ns.get("linpack", 0) \
        >= strict.useful_ns.get("linpack", 0)
