"""Unit tests for the shared scheduler queue/scan primitives."""

from repro.sched.queues import (
    FifoQueue, MultiLevelQueue, first_idle, first_of_kind, first_where,
    longest_queue, rr_scan, shortest_queue)


class FakeCore:
    def __init__(self, busy=False):
        self.busy = busy


class FakeCoreState:
    def __init__(self, kind=None, busy=False, depth=0):
        self.kind = kind
        self.core = FakeCore(busy)
        self.fifo = FifoQueue()
        for i in range(depth):
            self.fifo.append(f"t{i}")


# ----------------------------------------------------------------------
# FifoQueue
# ----------------------------------------------------------------------
def test_fifo_order_and_peek():
    q = FifoQueue()
    assert not q
    assert q.peek() is None
    q.append("a")
    q.append("b")
    assert q.peek() == "a"
    assert list(q) == ["a", "b"]
    assert q.popleft() == "a"
    assert len(q) == 1
    assert "b" in q


def test_fifo_remove_and_purge():
    q = FifoQueue()
    for item in ("a", "b", "c", "b"):
        q.append(item)
    q.remove("b")
    assert list(q) == ["a", "c", "b"]  # removes the first occurrence
    q.purge(lambda item: item == "b")
    assert list(q) == ["a", "c"]


# ----------------------------------------------------------------------
# MultiLevelQueue
# ----------------------------------------------------------------------
def test_mlq_pops_lowest_level_first():
    levels = {"hot": 0, "warm": 1, "cold": 2}
    q = MultiLevelQueue(3, levels.get)
    for item in ("cold", "hot", "warm"):
        q.append(item)
    assert q.peek() == "hot"
    assert [q.popleft() for _ in range(3)] == ["hot", "warm", "cold"]


def test_mlq_fifo_within_level_and_iteration_order():
    order = {"a": 1, "b": 1, "c": 0}
    q = MultiLevelQueue(2, order.get)
    for item in ("a", "b", "c"):
        q.append(item)
    assert list(q) == ["c", "a", "b"]
    assert len(q) == 3
    assert "b" in q
    q.remove("a")
    assert list(q) == ["c", "b"]


def test_mlq_clamps_out_of_range_levels():
    q = MultiLevelQueue(2, lambda item: 99)
    q.append("x")
    assert q.popleft() == "x"


def test_mlq_purge():
    q = MultiLevelQueue(2, lambda item: 0 if item.startswith("a") else 1)
    for item in ("a1", "b1", "a2"):
        q.append(item)
    q.purge(lambda item: item.startswith("a"))
    assert list(q) == ["b1"]


# ----------------------------------------------------------------------
# Core scans: all first-match, deterministic in iteration order
# ----------------------------------------------------------------------
def test_first_where_and_first_idle():
    busy = FakeCoreState(kind="L", busy=True)
    idle = FakeCoreState()
    assert first_where([busy, idle], lambda s: not s.core.busy) is idle
    assert first_idle([busy, idle]) is idle
    assert first_idle([busy]) is None
    # kind must be None: a core whose thread parked mid-switch is not
    # idle for placement purposes.
    holding = FakeCoreState(kind="B", busy=False)
    assert first_idle([holding]) is None


def test_first_of_kind():
    b1 = FakeCoreState(kind="B")
    b2 = FakeCoreState(kind="B")
    assert first_of_kind([FakeCoreState(kind="L"), b1, b2], "B") is b1


def test_shortest_and_longest_queue_tie_break_first():
    a = FakeCoreState(kind="L", depth=2)
    b = FakeCoreState(kind="L", depth=1)
    c = FakeCoreState(kind="L", depth=1)
    def is_l(state):
        return state.kind == "L"

    assert shortest_queue([a, b, c], is_l) is b  # first of the ties
    assert longest_queue([a, b, c], is_l) is a
    assert shortest_queue([], is_l) is None
    assert shortest_queue([a], lambda s: False) is None


def test_rr_scan_wraps_and_respects_start():
    items = ["a", "b", "c", "d"]
    assert rr_scan(items, 2, lambda x: x in ("a", "c")) == 2
    assert rr_scan(items, 3, lambda x: x in ("a", "c")) == 0  # wrapped
    assert rr_scan(items, 0, lambda x: False) is None
    assert rr_scan([], 0, lambda x: True) is None
