"""The hybrid fluid/event mode's contract, as tests:

- ``--fluid`` defaults off and the off path is the untouched exact
  engine (events fire; the golden byte-identity suite next door pins
  the actual bytes).
- Eligibility is conservative: every unmodeled feature produces a
  reason, and any reason forces the exact engine — with a report
  *identical* to the ``--fluid off`` twin.
- The fluid path fires zero discrete events and lands within the
  (generous, unit-test-scale) tolerance of the exact engine.  The
  tight pinned-scenario tolerance lives in ``python -m repro
  fluidcheck``; these tests only guard the plumbing.
- ``--engine calendar`` is byte-identical through the full
  ``run_colocation`` stack, not just the queue microtests.
"""

import pytest

from repro.experiments.common import ExperimentConfig, run_colocation
from repro.experiments.fluid_run import fluid_eligibility
from repro.net import NetConfig

L_MEMCACHED = [("memcached", "memcached", 2.0)]


def _cfg(**overrides):
    base = dict(num_workers=4, sim_ms=4, warmup_ms=1, seed=42,
                bursty=True)
    base.update(overrides)
    return ExperimentConfig(**base)


def _snapshot(report):
    return (report.elapsed_ns, dict(report.buckets),
            {k: dict(v) for k, v in report.latency.items()},
            dict(report.completed), dict(report.useful_ns),
            report.events_fired)


def test_fluid_defaults_off():
    cfg = ExperimentConfig()
    assert cfg.fluid == "off"
    assert cfg.engine == "heap"


def test_fluid_off_runs_the_event_engine():
    report = run_colocation("vessel", _cfg(), L_MEMCACHED)
    assert report.events_fired > 0


def test_eligible_run_is_fluid_and_fires_no_events():
    assert fluid_eligibility("vessel", _cfg(fluid="on"), L_MEMCACHED) == []
    report = run_colocation("vessel", _cfg(fluid="on"), L_MEMCACHED)
    assert report.events_fired == 0
    assert report.completed["memcached"] > 0


@pytest.mark.parametrize("system,kwargs,needle", [
    ("fakesys", {}, "no fluid adapter"),
    ("vessel", dict(cfg_overrides=dict(net=NetConfig())), "net fabric"),
    ("vessel", dict(cfg_overrides=dict(policy="mlfq")), "policies"),
    ("vessel", dict(l_specs=[("rocksdb", "rocksdb", 1.0)]),
     "batch replay"),
    ("caladan", dict(l_specs=[("memcached", "a", 1.0),
                              ("memcached", "b", 1.0)]),
     "single L-app partition"),
    ("vessel", dict(b_specs=("membench",)), "linpack"),
    ("vessel", dict(bus_sensitivity=0.5), "bus-sensitivity"),
    ("vessel", dict(vessel_bw_cap=10.0), "bandwidth caps"),
    ("vessel", dict(setup_hook=lambda *a: None), "setup hooks"),
    ("vessel", dict(track_queues=True), "queue tracking"),
])
def test_eligibility_reasons(system, kwargs, needle):
    kwargs = dict(kwargs)
    cfg = _cfg(fluid="on", **kwargs.pop("cfg_overrides", {}))
    l_specs = kwargs.pop("l_specs", L_MEMCACHED)
    reasons = fluid_eligibility(system, cfg, l_specs, **kwargs)
    assert any(needle in reason for reason in reasons), reasons


def test_ineligible_fluid_run_falls_back_byte_identically(capsys):
    off = run_colocation("vessel", _cfg(), L_MEMCACHED,
                         track_queues=True)
    on = run_colocation("vessel", _cfg(fluid="on"), L_MEMCACHED,
                        track_queues=True)
    assert _snapshot(on) == _snapshot(off)
    assert on.queue_peak == off.queue_peak
    captured = capsys.readouterr()
    # The notice must stay off stdout (byte-compared output).
    assert "fallback" not in captured.out
    assert "fallback" in captured.err


@pytest.mark.parametrize("system", ["vessel", "caladan"])
def test_fluid_tracks_exact_at_unit_scale(system):
    cfg = _cfg(num_workers=8, sim_ms=6, warmup_ms=2)
    specs = [("memcached", "memcached", 3.6)]  # load 0.45
    exact = run_colocation(system, cfg, specs)
    fluid = run_colocation(system, cfg.scaled(fluid="on"), specs)
    # Plumbing-level guards; the tight tolerance gate is `fluidcheck`.
    assert fluid.events_fired == 0
    e_tput = exact.throughput_mops("memcached")
    f_tput = fluid.throughput_mops("memcached")
    assert f_tput == pytest.approx(e_tput, rel=0.05)
    e_p99 = exact.p99_us("memcached")
    f_p99 = fluid.p99_us("memcached")
    assert abs(f_p99 - e_p99) <= max(5.0, 0.6 * e_p99)


def test_calendar_engine_byte_identical_through_run_colocation():
    heap = run_colocation("vessel", _cfg(), L_MEMCACHED)
    calendar = run_colocation("vessel", _cfg(engine="calendar"),
                              L_MEMCACHED)
    assert _snapshot(calendar) == _snapshot(heap)
