"""Byte-identity regression: the policy refactor must not move a bit.

``golden_vessel_reports.json`` was captured on the seed commit, before
``VesselSystem`` was split into mechanism + :class:`VesselDefaultPolicy`
(reports, ledger op counts, preemption/rotation counters, and the
engine's event count, for four scenarios spanning idle placement, BE
preemption, long-request preemption, and dense FIFO rotation).  These
tests re-run the same scenarios through the refactored scheduler and
compare *exactly* — floats included, since equal simulations produce
equal arithmetic.  Any diff here means the default policy is no longer
the paper's scheduler.
"""

import json
import os

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.obs.ledger import OpLedger
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.experiments.common import make_l_app

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_vessel_reports.json")

SCENARIOS = {
    "memcached_r1.0": dict(l_specs=[("memcached", "memcached", 1.0)]),
    "memcached_r2.0": dict(l_specs=[("memcached", "memcached", 2.0)]),
    "silo_r0.05": dict(l_specs=[("silo", "silo", 0.05)]),
    "dense_4apps": dict(
        l_specs=[("memcached", f"mc{i}", 0.7) for i in range(4)],
        num_workers=2, batch=False),
}


def run_one(l_specs, num_workers=4, sim_ms=10, warmup_ms=2, seed=42,
            batch=True):
    """One VESSEL colocation run, serialized like the golden capture."""
    sim = Simulator()
    ledger = OpLedger(sim=sim)
    machine = Machine(sim, CostModel(), num_workers + 1, ledger=ledger)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    pending = []
    for kind, name, rate in l_specs:
        app, sampler = make_l_app(kind, name, rngs)
        system.add_app(app)
        pending.append((app, sampler, name, rate))
    if batch:
        system.add_app(linpack_app())
    system.start()
    for app, sampler, name, rate in pending:
        OpenLoopSource(sim, app, system.submit, rate, sampler,
                       rngs.stream(f"arrivals/{name}"))
    sim.at(warmup_ms * MS, system.begin_measurement)
    sim.run(until=sim_ms * MS)
    report = system.report()
    return {
        "system": report.system,
        "elapsed_ns": report.elapsed_ns,
        "num_worker_cores": report.num_worker_cores,
        "buckets": dict(sorted(report.buckets.items())),
        "latency": {k: dict(sorted(v.items()))
                    for k, v in sorted(report.latency.items())},
        "completed": dict(sorted(report.completed.items())),
        "useful_ns": dict(sorted(report.useful_ns.items())),
        "ledger_ops": dict(sorted(ledger.op_counts().items())),
        "preemptions": system.preemptions,
        "rotations": system.rotations,
        "events_fired": sim.events_fired,
    }


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_default_policy_matches_seed_commit(golden, scenario):
    expected = golden[scenario]
    actual = json.loads(json.dumps(run_one(**SCENARIOS[scenario])))
    assert actual == expected


def test_golden_scenarios_exercise_the_interesting_paths(golden):
    # The goldens are only a meaningful bar if the mechanisms whose
    # refactoring could drift actually fired during the capture.
    assert golden["memcached_r2.0"]["preemptions"] > 0
    assert golden["dense_4apps"]["rotations"] > 0
    assert golden["dense_4apps"]["ledger_ops"]["sched_rotation"] > 0


def test_policy_rejections_never_fire_under_default():
    # Containment of buggy policies must be invisible for the stock
    # policy: a rejected decision would both perturb byte-identity and
    # show up in this counter.
    result = run_one(**SCENARIOS["dense_4apps"])
    assert "policy:rejected" not in result["ledger_ops"]
