"""Smoke tests: every experiment module runs at tiny scale and its
headline qualitative claims hold.  The benchmarks run the full versions;
these keep CI fast while still exercising every code path."""


import pytest

from repro.experiments.common import ExperimentConfig

TINY = ExperimentConfig(num_workers=4, sim_ms=8, warmup_ms=2)


def test_tab1_shapes():
    from repro.experiments import tab1_context_switch as tab1
    results = tab1.run(TINY, iterations=4000)
    vessel, caladan = results["vessel"], results["caladan"]
    assert vessel["avg_us"] == pytest.approx(0.161, abs=0.03)
    assert caladan["avg_us"] == pytest.approx(2.1, abs=0.15)
    assert caladan["avg_us"] > 10 * vessel["avg_us"]
    assert vessel["p999_us"] > vessel["p50_us"]


def test_fig03_timeline():
    from repro.experiments import fig03_realloc_timeline as fig3
    results = fig3.run(TINY)
    assert results["measured_total_us"] == pytest.approx(5.3, abs=0.01)
    assert len(results["timeline"]) == 6
    starts = [p["start_us"] for p in results["timeline"]]
    assert starts == sorted(starts)


def test_micro_uintr_ratio():
    from repro.experiments import micro_uintr
    results = micro_uintr.run(TINY, iterations=200)
    assert 10 <= results["ratio"] <= 25  # paper: up to 15x


def test_fig01_decline_and_waste():
    from repro.experiments import fig01_colocation_cost as fig1
    results = fig1.run(TINY, load_points=(0.3, 0.6))
    assert 0.03 <= results["max_decline"] <= 0.35
    assert 0.02 <= results["max_waste"] <= 0.30
    for point in results["points"]:
        assert point["total_normalized"] < 1.0


def test_fig02_kernel_share_grows():
    from repro.experiments import fig02_dense_cost as fig2
    results = fig2.run(TINY, counts=(1, 4))
    kernel = [p["kernel_fraction"] for p in results["points"]]
    assert kernel[1] > kernel[0]


def test_fig09_vessel_beats_caladan():
    from repro.experiments import fig09_colocation as fig9
    results = fig9.run(TINY, systems=("vessel", "caladan"),
                       loads=(0.3, 0.6), include_slow_systems=False,
                       include_silo=False)
    summary = results["summary"]
    assert summary["vessel"]["avg_decline"] \
        < summary["caladan"]["avg_decline"]
    for row in results["memcached"]:
        if row["system"] == "vessel":
            twin = next(r for r in results["memcached"]
                        if r["system"] == "caladan"
                        and r["load"] == row["load"])
            assert row["p999_us"] < twin["p999_us"]


def test_fig09_silo_amortizes_overhead():
    from repro.experiments import fig09_colocation as fig9
    cfg = ExperimentConfig(num_workers=4, sim_ms=30, warmup_ms=5)
    results = fig9.run(cfg, systems=("vessel", "caladan"), loads=(0.5,),
                       include_slow_systems=False, include_silo=True)
    for row in results["silo"]:
        assert row["total_normalized"] > 0.9  # both near-ideal


def test_fig10_dense_shapes():
    from repro.experiments import fig10_dense as fig10
    results = fig10.run(TINY, counts=(1, 6), loads=(0.4, 0.6))
    summary = results["summary"]
    vessel_drop = 1 - (summary[("vessel", 6)]["peak_tput_mops"]
                       / max(1e-9,
                             summary[("vessel", 1)]["peak_tput_mops"]))
    caladan_drop = 1 - (summary[("caladan-dr-l", 6)]["peak_tput_mops"]
                        / max(1e-9,
                              summary[("caladan-dr-l", 1)]
                              ["peak_tput_mops"]))
    assert caladan_drop > vessel_drop  # dense colocation hurts Caladan more


def test_fig11_cache_friendliness():
    from repro.experiments import fig11_cache as fig11
    results = fig11.run(TINY, total_ops=8000)
    assert results["vessel"]["miss_rate"] < results["caladan"]["miss_rate"]
    assert results["vessel"]["completion_ms"] \
        < results["caladan"]["completion_ms"]
    assert 0.0 < results["completion_reduction"] < 0.6


def test_fig13_accuracy_part():
    from repro.experiments import fig13_membw as fig13
    results = fig13.run_accuracy_part(TINY, targets=(0.1, 0.5, 1.0))
    errors = results["max_error"]
    assert errors["vessel"] < 0.10
    assert errors["mba"] > 0.2
    assert errors["cgroup"] > errors["vessel"]
    for row in results["rows"]:
        # nobody regulates *below* a trivial floor or above solo max
        for key in ("vessel", "mba", "cgroup"):
            assert 0.0 <= row[key] <= 1.05


def test_fig13_colocation_part():
    from repro.experiments import fig13_membw as fig13
    cfg = ExperimentConfig(num_workers=4, sim_ms=10, warmup_ms=2)
    results = fig13.run_colocation_part(cfg, loads=(0.4,))
    rows = results["rows"]
    vessel = next(r for r in rows if r["system"] == "vessel")
    caladan = next(r for r in rows if r["system"] == "caladan")
    assert vessel["p999_us"] < caladan["p999_us"]
    assert vessel["total_normalized"] > caladan["total_normalized"]


def test_fig12_control_plane_factors():
    """The Figure 12 knee mechanics without the full (slow) sweep."""
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams
    from repro.hardware.machine import Machine
    from repro.hardware.timing import CostModel
    from repro.vessel.scheduler import VesselSystem
    from repro.baselines.caladan import CaladanSystem

    def factors(system_cls, workers):
        sim = Simulator()
        machine = Machine(sim, CostModel(), workers + 1)
        system = system_cls(sim, machine, RngStreams(0),
                            worker_cores=machine.cores[1:])
        return system.control_plane_factor

    assert factors(VesselSystem, 8) < 1.5
    assert factors(VesselSystem, 42) > 5
    assert factors(VesselSystem, 44) > factors(VesselSystem, 42)
    # Caladan's IOKernel saturates far earlier.
    assert factors(CaladanSystem, 8) < 1.5
    assert factors(CaladanSystem, 32) > 10
    assert factors(CaladanSystem, 8) > factors(VesselSystem, 8)


def test_fig07_fractions():
    from repro.experiments import fig07_timeline as fig7
    results = fig7.run(TINY)
    vessel, caladan = results["vessel"], results["caladan"]
    assert vessel["app_fraction"] > caladan["app_fraction"]
    assert caladan["kernel_fraction"] > vessel["kernel_fraction"]
    assert "core" in vessel["strip"]
    for data in results.values():
        total = (data["app_fraction"] + data["runtime_fraction"]
                 + data["kernel_fraction"] + data["idle_fraction"])
        assert total == pytest.approx(1.0, abs=0.02)


def test_sensitivity_monotone():
    from repro.experiments import sensitivity as sens
    results = sens.run(TINY, multipliers=(1, 16, 48))
    rows = results["rows"]
    assert rows[0]["waste"] < rows[-1]["waste"]
    assert rows[0]["p999_us"] < rows[-1]["p999_us"]
    assert results["caladan_waste"] > 0


def test_ablations_structure():
    from repro.experiments import ablations as abl
    results = abl.run(TINY)
    names = {r["variant"] for r in results["rows"]}
    assert names == {"vessel", "vessel-no-uintr", "vessel-kernel-switch",
                     "caladan", "caladan-fast-switch",
                     "vessel-q5us", "vessel-q20us", "vessel-q80us"}
    gate = results["gate_defense"]
    assert gate["full_defenses_ns"] > gate["no_defenses_ns"]
    # the quantum sweep's dense shape spends more on switching at the
    # short quantum than at the long one
    by_name = {r["variant"]: r for r in results["rows"]}
    assert by_name["vessel-q5us"]["waste_fraction"] \
        >= by_name["vessel-q80us"]["waste_fraction"]


def test_cli_list_and_selection(capsys):
    from repro.__main__ import main as cli_main
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "sensitivity" in out


def test_cli_rejects_unknown():
    from repro.__main__ import main as cli_main
    with pytest.raises(SystemExit):
        cli_main(["fig99"])
