"""Tests for the experiment harness infrastructure."""

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    normalized_total,
    parse_profile,
    run_colocation,
    system_factory,
)
from repro.sched.base import SystemReport


def test_system_factory_known_names():
    for name in ("ideal", "vessel", "caladan", "caladan-dr-l",
                 "caladan-dr-h", "arachne", "linux-cfs"):
        assert callable(system_factory(name))


def test_system_factory_unknown_name():
    with pytest.raises(ValueError):
        system_factory("windows-scheduler")


def test_l_capacity():
    cfg = ExperimentConfig(num_workers=8)
    assert l_capacity_mops(cfg, 1000) == pytest.approx(8.0)
    assert l_capacity_mops(cfg, 2000) == pytest.approx(4.0)


def test_normalized_total_ideal_case():
    cfg = ExperimentConfig(num_workers=4)
    report = SystemReport(system="x", elapsed_ns=1_000_000,
                          num_worker_cores=4)
    report.completed["mc"] = 2000   # 2 Mops of 4 Mops capacity -> 0.5
    report.useful_ns["lp"] = 2_000_000  # half the 4 core-seconds
    total = normalized_total(report, cfg, {"mc": 1000})
    assert total == pytest.approx(1.0)


def test_normalized_total_with_alone_baseline():
    cfg = ExperimentConfig(num_workers=4)
    report = SystemReport(system="x", elapsed_ns=1_000_000,
                          num_worker_cores=4)
    report.useful_ns["mb"] = 500_000
    total = normalized_total(report, cfg, {},
                             b_alone_useful={"mb": 1_000_000})
    assert total == pytest.approx(0.5)


def test_format_table_aligns():
    text = format_table(["name", "value"], [["a", 1.5], ["long-name", 2]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "1.500" in lines[2]


def test_parse_profile_defaults():
    cfg = parse_profile([])
    assert cfg.num_workers == 8


def test_parse_profile_paper():
    cfg = parse_profile(["--scale", "paper"])
    assert cfg.num_workers == 32


def test_run_colocation_smoke():
    cfg = ExperimentConfig(num_workers=2, sim_ms=4, warmup_ms=1)
    report = run_colocation("ideal", cfg,
                            l_specs=[("memcached", "memcached", 0.3)])
    assert report.completed["memcached"] > 0
    assert report.elapsed_ns == cfg.measure_ns


def test_run_colocation_silo():
    cfg = ExperimentConfig(num_workers=2, sim_ms=6, warmup_ms=1)
    report = run_colocation("ideal", cfg, l_specs=[("silo", "silo", 0.02)])
    assert report.completed["silo"] > 0


def test_run_colocation_unknown_specs():
    cfg = ExperimentConfig(num_workers=2, sim_ms=2, warmup_ms=1)
    with pytest.raises(ValueError):
        run_colocation("ideal", cfg, l_specs=[("mysql", "m", 1.0)])
    with pytest.raises(ValueError):
        run_colocation("ideal", cfg, l_specs=[], b_specs=("bitcoin",))


def test_scaled_returns_modified_copy():
    cfg = ExperimentConfig()
    other = cfg.scaled(num_workers=2)
    assert other.num_workers == 2
    assert cfg.num_workers == 8
