"""Admission control: watermarks, shed accounting, client rejections."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, US
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.net import NetConfig, NetFabric
from repro.overload.admission import AdmissionConfig, AdmissionControl
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource, Request
from repro.workloads.memcached import UsrServiceSampler, memcached_app
from repro.workloads.linpack import linpack_app
from repro.workloads.synthetic import ExponentialService


def build(workers=2, seed=7):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    return sim, machine, rngs, system


def test_attach_interposes_submit():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig())
    original = system.submit
    ctl.attach(system)
    assert system.submit == ctl.submit
    assert system.admission is ctl
    assert ctl._inner_submit == original
    with pytest.raises(RuntimeError):
        ctl.attach(system)


def test_queue_depth_watermark_sheds():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=4,
                                                max_oldest_wait_ns=0))
    ctl.attach(system)
    app = memcached_app("mc")
    system.add_app(app)
    # Don't start the system: nothing drains, so the depth cap binds
    # after exactly 4 admitted requests.
    for _ in range(10):
        system.submit(Request(app, sim.now, 1000, 0))
    assert len(app.queue) == 4
    assert ctl.admitted["mc"] == 4
    assert ctl.shed["mc"]["queue_depth"] == 6
    assert ctl.shed_by_stage["submit"] == 6
    assert ctl.total_shed("mc") == 6


def test_oldest_wait_watermark_sheds():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=0,
                                                max_oldest_wait_ns=50 * US))
    ctl.attach(system)
    app = memcached_app("mc")
    # A stale head-of-line request (placed directly, bypassing both the
    # scheduler and admission): age decides, not depth.
    app.queue.append(Request(app, arrival_ns=0, service_ns=1000, conn_id=0))
    sim.at(40 * US, lambda: None)
    sim.run(until=40 * US)
    assert ctl.reason_to_shed(app, sim.now) is None  # 40 us < 50 us
    sim.at(60 * US, lambda: None)
    sim.run(until=60 * US)
    assert ctl.reason_to_shed(app, sim.now) == "oldest_wait"
    ctl.submit(Request(app, sim.now, 1000, 0))
    assert len(app.queue) == 1  # the newcomer was shed
    assert ctl.shed["mc"]["oldest_wait"] == 1


def test_batch_apps_never_shed():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=1))
    ctl.attach(system)
    batch = linpack_app()
    system.add_app(batch)
    assert ctl.reason_to_shed(batch, sim.now) is None


def test_zero_watermarks_disable_checks():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=0,
                                                max_oldest_wait_ns=0))
    ctl.attach(system)
    app = memcached_app("mc")
    system.add_app(app)
    for _ in range(500):
        system.submit(Request(app, sim.now, 1000, 0))
    assert len(app.queue) == 500
    assert ctl.total_shed() == 0


def test_begin_measurement_zeroes_counters():
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=2))
    ctl.attach(system)
    app = memcached_app("mc")
    system.add_app(app)
    for _ in range(5):
        system.submit(Request(app, sim.now, 1000, 0))
    assert ctl.total_shed() == 3
    ctl.begin_measurement()
    assert ctl.total_shed() == 0
    assert ctl.admitted == {}
    snap = ctl.snapshot()
    assert snap["by_stage"] == {"ingress": 0, "submit": 0}


def test_ingress_shed_sends_rejection_to_client():
    """Over the fabric, sheds reject at the NIC and clients observe
    them (sheds counter) instead of timing out."""
    sim, machine, rngs, system = build(workers=2)
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=3,
                                                max_oldest_wait_ns=0))
    ctl.attach(system)
    fabric = NetFabric(sim, NetConfig(), rngs, num_workers=2)
    app = memcached_app("mc")
    system.add_app(app)
    # Way over capacity for 2 workers: the depth cap must engage.
    fabric.add_workload(app, 6.0, UsrServiceSampler(rngs.stream("svc")),
                        None, 8)
    fabric.connect(system)
    fabric.admission = ctl
    system.start()
    sim.run(until=2 * MS)
    stats = fabric.stats["mc"]
    assert stats["sheds"] > 0
    assert ctl.shed_by_stage["ingress"] > 0
    # Clients saw every shed as a response-like rejection: each one
    # retried or was counted lost, never silently dropped.
    conservation = fabric.conservation()["mc"]
    assert conservation["balance"] == 0


def test_direct_mode_shed_drops_silently():
    """Without a fabric the shed request simply never enters the
    system (open-loop sources don't react), but is still counted."""
    sim, machine, rngs, system = build()
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=2,
                                                max_oldest_wait_ns=0))
    ctl.attach(system)
    app = memcached_app("mc")
    system.add_app(app)
    OpenLoopSource(sim, app, system.submit, 2.0,
                   ExponentialService(1000, rngs.stream("s")),
                   rngs.stream("a"))
    sim.run(until=1 * MS)
    assert ctl.total_shed("mc") > 0
    assert len(app.queue) <= 2


def test_shed_ledger_ops_counted():
    from repro.obs.ledger import OpLedger
    sim = Simulator()
    ledger = OpLedger(sim=sim)
    machine = Machine(sim, CostModel(), 3, ledger=ledger)
    rngs = RngStreams(7)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    ctl = AdmissionControl(sim, AdmissionConfig(max_queue_depth=1),
                           ledger=ledger)
    ctl.attach(system)
    app = memcached_app("mc")
    system.add_app(app)
    for _ in range(4):
        system.submit(Request(app, sim.now, 1000, 0))
    assert ledger.op_counts(domain="net").get("shed:queue_depth") == 3
