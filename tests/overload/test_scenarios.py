"""Scenario suite: determinism, --jobs equality, faults x overload.

These run the real scenario entry points at tiny scale, so they cover
the full wiring (admission + trace + churn + chaos through
``run_colocation``) rather than isolated units.
"""

from repro.experiments import churn, flashcrowd, overload_suite, oversub
from repro.experiments.common import ExperimentConfig


def tiny(seed=42, **overrides):
    cfg = ExperimentConfig(num_workers=2, sim_ms=3, warmup_ms=1, seed=seed)
    return cfg.scaled(**overrides) if overrides else cfg


def test_churn_deterministic_and_leak_free():
    results = churn.run(tiny())
    churned = results["churned"]
    snap = churned.churn
    assert snap["created"] > 0
    assert snap["created"] - snap["destroyed"] == snap["active"]
    assert churned.uncontained == []
    # The long-lived tenant kept serving through the turnover.
    assert churned.completed.get("resident", 0) > 0
    assert churn._fingerprint(results) == churn._fingerprint(
        churn.run(tiny()))


def test_churn_jobs_equality():
    serial = churn.run(tiny())
    fanned = churn.run(tiny(jobs=2))
    assert churn._fingerprint(serial) == churn._fingerprint(fanned)


def test_flashcrowd_protected_arm_sheds_and_stays_bounded():
    results = flashcrowd.run(tiny())
    arms = dict(results["arms"])
    flagship = arms[flashcrowd.FLAGSHIP]
    plain = arms["vessel"]
    assert flagship.net_ops["mc"]["sheds"] > 0
    assert plain.net_ops["mc"]["sheds"] == 0
    # Admission caps the protected queue below the unprotected peak.
    assert flagship.queue_peak["mc"] < plain.queue_peak["mc"]


def test_flashcrowd_jobs_equality():
    serial = flashcrowd.run(tiny())
    fanned = flashcrowd.run(tiny(jobs=2))
    assert flashcrowd._fingerprint(serial) == flashcrowd._fingerprint(fanned)


def test_oversub_admission_bounds_queues():
    results = oversub.run(tiny())
    by_label = {(factor, protected): report
                for (factor, tenants, protected), report
                in results["arms"]}
    for factor in oversub.FACTORS:
        worst_raw = max(by_label[(factor, False)].queue_peak.values())
        worst_adm = max(by_label[(factor, True)].queue_peak.values())
        cap = oversub.admission_for(factor).max_queue_depth
        assert worst_adm <= cap
        assert worst_adm < worst_raw


def test_oversub_deterministic():
    assert oversub._fingerprint(oversub.run(tiny())) \
        == oversub._fingerprint(oversub.run(tiny()))


def test_chaos_overload_contained_and_conserved():
    """Uintr drops + packet delays during the spike: the audit must be
    clean and the request-conservation identity exact."""
    report = overload_suite.chaos_run(tiny())
    assert sum(report.fault_injected.values()) > 0
    assert report.uncontained == []
    for name, row in report.net_conservation.items():
        assert row["balance"] == 0, (name, row)
    # Shed accounting agrees across the fabric and admission layers.
    fabric_sheds = report.net_ops["mc"]["sheds"]
    admission_sheds = sum(sum(per.values())
                          for per in report.admission["shed"].values())
    assert fabric_sheds == admission_sheds
    assert fabric_sheds > 0


def test_chaos_run_deterministic():
    first = overload_suite.chaos_run(tiny())
    second = overload_suite.chaos_run(tiny())
    assert overload_suite._chaos_fingerprint(first) \
        == overload_suite._chaos_fingerprint(second)
