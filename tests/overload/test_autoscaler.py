"""SLO autoscaler policy: control law, harvest/return, composition."""

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.overload.autoscaler import SloAutoscalePolicy
from repro.sched.policy import available_policies, make_policy
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import UsrServiceSampler, memcached_app


def build(policy, workers=4, rate=1.2, seed=11, ledger=None):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1, ledger=ledger)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:], policy=policy)
    app = memcached_app("mc")
    system.add_app(app)
    system.add_app(linpack_app())
    system.start()
    OpenLoopSource(sim, app, system.submit, rate,
                   UsrServiceSampler(rngs.stream("svc")),
                   rngs.stream("arrivals"))
    return sim, system, app


def test_registered_in_policy_zoo():
    assert "autoscale" in available_policies()
    policy = make_policy("autoscale", slo_p99_us=50.0)
    assert isinstance(policy, SloAutoscalePolicy)
    assert policy.slo_p99_ns == 50_000


def test_harvests_under_tight_slo():
    # An SLO below the achievable tail forces harvesting: the policy
    # must claw back best-effort cores (and report it).
    policy = SloAutoscalePolicy(slo_p99_us=2.0, min_samples=16,
                                hysteresis_periods=1000)
    sim, system, app = build(policy, rate=1.5)
    sim.run(until=6 * MS)
    assert policy.harvests > 0
    assert policy.be_allowed < policy._total_cores
    snap = policy.scaling_snapshot()
    assert snap["harvests"] == policy.harvests
    assert snap["total_cores"] == 4
    # The system keeps serving throughout.
    assert app.completed.value > 0


def test_returns_after_calm_period():
    # Start harvested, then observe a trivially satisfiable SLO: the
    # hysteresis must eventually return cores to the BE pool.
    policy = SloAutoscalePolicy(slo_p99_us=100_000.0, min_samples=8,
                                hysteresis_periods=2)
    sim, system, app = build(policy, rate=0.3)
    policy.be_allowed = 0  # pretend an earlier storm harvested everything
    policy._total_cores = 4
    sim.run(until=4 * MS)
    assert policy.returns > 0
    assert policy.be_allowed > 0


def test_be_cap_enforced_on_idle_cores():
    # With the cap at zero from boot, idle cores must never pick up
    # best-effort work even though linpack is runnable throughout.
    policy = SloAutoscalePolicy(slo_p99_us=100_000.0,
                                hysteresis_periods=10**9)
    policy.be_allowed = 0  # cap set before the system boots
    sim, system, app = build(policy, rate=0.2)
    sim.run(until=1 * MS)
    assert sum(1 for cs in system._cores.values() if cs.kind == "B") == 0
    assert app.completed.value > 0  # latency traffic unaffected


def test_windows_follow_app_lifecycle():
    policy = SloAutoscalePolicy()
    sim, system, app = build(policy, rate=0.5)
    sim.run(until=2 * MS)
    assert "mc" in policy._windows
    assert len(policy._windows["mc"]) > 0
    newcomer = memcached_app("late")
    system.add_app(newcomer)
    assert "late" in policy._windows
    system.remove_app("late")
    assert "late" not in policy._windows
    # Batch apps never get a latency window.
    assert "linpack" not in policy._windows


def test_control_actions_charged_to_ledger():
    # Every harvest/return/cap-preempt is an auditable policy op.
    from repro.obs.ledger import OpLedger

    ledger = OpLedger()
    policy = SloAutoscalePolicy(slo_p99_us=2.0, min_samples=16,
                                hysteresis_periods=1000)
    sim, system, app = build(policy, rate=1.5, ledger=ledger)
    sim.run(until=6 * MS)
    assert policy.harvests > 0
    assert ledger.op_count("autoscale:harvest",
                           domain="policy") == policy.harvests
    assert ledger.op_count("autoscale:cap_preempt", domain="policy") > 0
    assert ledger.op_count("autoscale:return",
                           domain="policy") == policy.returns


def test_no_ledger_ops_without_a_ledger():
    # The default NULL_LEDGER path must stay byte-identical: the guard
    # is `ledger.enabled`, so a ledger-less run counts nothing.
    policy = SloAutoscalePolicy(slo_p99_us=2.0, min_samples=16,
                                hysteresis_periods=1000)
    sim, system, app = build(policy, rate=1.5)
    sim.run(until=6 * MS)
    assert policy.harvests > 0
    assert system.ledger.op_count("autoscale:harvest") == 0


def test_deterministic_under_seed():
    def once():
        policy = SloAutoscalePolicy(slo_p99_us=2.0, min_samples=16)
        sim, system, app = build(policy, rate=1.5, seed=23)
        sim.run(until=5 * MS)
        return (app.completed.value, policy.harvests, policy.returns,
                policy.be_allowed, sim.events_fired)

    assert once() == once()
