"""Tests for the multi-queue NIC: RSS steering and ring accounting."""

import pytest

from repro.net.nic import Nic
from repro.obs.ledger import OpLedger
from repro.sim.rng import RngStreams
from repro.workloads.base import Request
from repro.workloads.memcached import memcached_app


def _nic(sim, **kwargs):
    kwargs.setdefault("num_rings", 4)
    return Nic(sim, lambda r: None, **kwargs)


def test_steering_is_deterministic_for_identical_keys(sim):
    a = _nic(sim, rss_key=42)
    b = _nic(sim, rss_key=42)
    mapping_a = [a.ring_for("memcached", c) for c in range(64)]
    mapping_b = [b.ring_for("memcached", c) for c in range(64)]
    assert mapping_a == mapping_b
    # The hash spreads 64 connections over more than one ring.
    assert len(set(mapping_a)) > 1


def test_steering_differs_across_keys(sim):
    a = _nic(sim, rss_key=1)
    b = _nic(sim, rss_key=2)
    assert [a.ring_for("memcached", c) for c in range(64)] != \
        [b.ring_for("memcached", c) for c in range(64)]


def test_seeded_rss_key_is_reproducible():
    key_a = RngStreams(777).stream("net/rss").getrandbits(64)
    key_b = RngStreams(777).stream("net/rss").getrandbits(64)
    key_c = RngStreams(778).stream("net/rss").getrandbits(64)
    assert key_a == key_b
    assert key_a != key_c


def test_flows_are_sticky(sim):
    nic = _nic(sim, rss_key=7)
    first = nic.ring_for("silo", 3)
    for _ in range(10):
        assert nic.ring_for("silo", 3) == first


def test_validation(sim):
    with pytest.raises(ValueError):
        _nic(sim, num_rings=0)


def test_ring_overflow_matches_ledger_accounting(sim):
    """Overflow drops agree between counters, callbacks, and `net:` ops."""
    ledger = OpLedger(sim=sim)
    dropped = []
    app = memcached_app()
    nic = Nic(sim, lambda r: None, num_rings=1, ring_capacity=4,
              nic_ns=600, ledger=ledger, on_drop=dropped.append)
    results = [nic.rx(Request(app, 0, 1000, conn_id=0)) for _ in range(10)]
    assert results == [True] * 4 + [False] * 6
    assert nic.dropped == 6
    assert len(dropped) == 6
    assert ledger.op_count("nic_drop", domain="net") == 6
    sim.run()
    assert nic.received == 4
    assert ledger.op_count("nic_rx", domain="net") == 4
    # Per-packet NIC cost is charged, not just counted.
    assert ledger.total_ns(domain="net", op="nic_rx") == 4 * 600


def test_depth_and_oldest_wait_signals(sim):
    nic = _nic(sim, num_rings=1, nic_ns=500)
    app = memcached_app()
    nic.rx(Request(app, 0, 1000))
    nic.rx(Request(app, 0, 1000))
    assert nic.ring_depth(0) == 2
    sim.run(until=400)
    assert nic.oldest_wait_ns(sim.now) == 400
    sim.run()
    assert nic.ring_depth(0) == 0
    assert nic.oldest_wait_ns(sim.now) == 0


def test_rx_restamps_arrival_time(sim):
    seen = []
    nic = Nic(sim, seen.append, num_rings=1, nic_ns=600)
    request = Request(memcached_app(), 0, 1000)
    sim.at(100, nic.rx, request)
    sim.run()
    assert seen == [request]
    assert request.arrival_ns == 700
