"""Client machine reliability: timeouts, retries, and duplicate guards."""

import pytest

from repro.net import LINK_DROP, NetConfig, NetFabric
from repro.sim.units import MS, US
from repro.workloads.base import Request
from repro.workloads.memcached import memcached_app


class _EchoServer:
    """A 'scheduling system' that serves every request after service_ns."""

    def __init__(self, sim):
        self.sim = sim
        self.served = 0

    def submit(self, request):
        self.served += 1
        self.sim.after(request.service_ns, self._finish, request)

    def _finish(self, request):
        request.app.complete(request, self.sim.now)


class _BlackHoleServer:
    """Accepts requests and never answers."""

    def __init__(self, sim):
        self.served = 0

    def submit(self, request):
        self.served += 1


def _fabric(sim, rngs, server, cfg, service_ns=1_000, connections=1):
    fabric = NetFabric(sim, cfg, rngs, num_workers=2)
    app = memcached_app()
    fabric.add_workload(app, rate_mops=0.0,
                        service_sampler=lambda: service_ns,
                        payload_sampler=None, connections=connections)
    fabric.connect(server)
    return fabric, app


def _closed_loop_cfg(**overrides):
    """One in-flight request per connection; think time parks the loop."""
    overrides.setdefault("clients", 1)
    overrides.setdefault("closed_loop", True)
    overrides.setdefault("think_ns", 50 * MS)
    return NetConfig(**overrides)


def test_response_completes_exactly_once(sim, rngs):
    server = _EchoServer(sim)
    fabric, _ = _fabric(sim, rngs, server, _closed_loop_cfg())
    sim.run(until=1 * MS)
    stats = fabric.stats["memcached"]
    assert stats["offered"] == 1
    assert stats["completed"] == 1
    assert stats["retries"] == stats["losses"] == 0
    # Client-observed latency covers the full round trip: two link
    # crossings plus the NIC ring plus the 1 us of service.
    (latency,) = fabric.client_latency["memcached"].samples
    assert latency > 1_000 + 2 * fabric.cfg.propagation_ns


def test_timeout_retry_does_not_double_count_completions(sim, rngs):
    """Late responses to earlier attempts are duplicates, not completions."""
    server = _EchoServer(sim)
    cfg = _closed_loop_cfg(timeout_ns=50 * US, max_retries=2)
    fabric, _ = _fabric(sim, rngs, server, cfg, service_ns=100 * US)
    sim.run(until=1 * MS)
    stats = fabric.stats["memcached"]
    # Both timeouts fired and retransmitted before the first response.
    assert stats["timeouts"] == 2
    assert stats["retries"] == 2
    assert server.served == 3
    # All three attempts eventually completed server-side, but the
    # logical request is satisfied once: one completion, two duplicates.
    assert stats["completed"] == 1
    assert stats["dup_responses"] == 2
    assert stats["losses"] == 0
    assert fabric.client_latency["memcached"].count == 1


def test_request_lost_after_max_retries(sim, rngs):
    server = _BlackHoleServer(sim)
    cfg = _closed_loop_cfg(timeout_ns=50 * US, max_retries=2)
    fabric, _ = _fabric(sim, rngs, server, cfg)
    sim.run(until=1 * MS)
    stats = fabric.stats["memcached"]
    assert server.served == 3          # original + two retries
    assert stats["timeouts"] == 3
    assert stats["retries"] == 2
    assert stats["losses"] == 1
    assert stats["completed"] == 0
    assert fabric.client_latency["memcached"].count == 0


def test_observed_drop_triggers_fast_retry(sim, rngs):
    server = _EchoServer(sim)
    cfg = _closed_loop_cfg(timeout_ns=2 * MS, max_retries=2,
                           drop_retry_backoff_ns=5 * US)
    fabric, _ = _fabric(sim, rngs, server, cfg)
    calls = {"n": 0}

    def drop_first(request, nbytes):
        calls["n"] += 1
        return LINK_DROP if calls["n"] == 1 else None

    fabric.link_in.inject = drop_first
    sim.run(until=1 * MS)
    stats = fabric.stats["memcached"]
    assert stats["drops_observed"] == 1
    assert stats["retries"] == 1
    assert stats["completed"] == 1
    assert stats["losses"] == 0
    # The retransmission went out after the drop backoff, well before
    # the 2 ms timeout would have noticed the loss.
    (latency,) = fabric.client_latency["memcached"].samples
    assert latency < 100 * US


def test_request_latency_prefers_client_send_timestamp():
    app = memcached_app()
    request = Request(app, arrival_ns=500, service_ns=1_000)
    assert request.latency_ns(2_000) == 1_500
    request.client_send_ns = 100     # sent 400 ns before server arrival
    assert request.latency_ns(2_000) == 1_900


def test_open_loop_rate_splits_across_machines(sim, rngs):
    cfg = NetConfig(clients=4)
    fabric = NetFabric(sim, cfg, rngs, num_workers=2)
    app = memcached_app()
    fabric.add_workload(app, rate_mops=0.4,
                        service_sampler=lambda: 1_000,
                        payload_sampler=None, connections=8)
    fabric.connect(_EchoServer(sim))
    per_machine = [sum(w.rate_mops for w in m.workloads)
                   for m in fabric.machines]
    assert sum(per_machine) == pytest.approx(0.4)
    assert all(rate == pytest.approx(0.1) for rate in per_machine)
    sim.run(until=2 * MS)
    stats = fabric.stats["memcached"]
    # ~0.4 Mops for 2 ms is ~800 sends; allow generous Poisson slack.
    assert 400 < stats["offered"] < 1_600
    assert stats["completed"] > 0


def test_fabric_rejects_double_connect(sim, rngs):
    fabric, _ = _fabric(sim, rngs, _EchoServer(sim), _closed_loop_cfg())
    with pytest.raises(RuntimeError):
        fabric.connect(_EchoServer(sim))
