"""Client retry hardening: exponential backoff, jitter, retry budget."""

from dataclasses import replace

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, US
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.net import NetConfig, NetFabric
from repro.net.client import ClientMachine, _Pending, _ClientWorkload
from repro.net.link import LINK_DROP
from repro.vessel.scheduler import VesselSystem
from repro.workloads.memcached import UsrServiceSampler, memcached_app


def run_fabric(net, seed=5, rate=3.0, sim_ms=2, drop_probability=0.0):
    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    fabric = NetFabric(sim, net, rngs, num_workers=2)
    app = memcached_app("mc")
    system.add_app(app)
    fabric.add_workload(app, rate, UsrServiceSampler(rngs.stream("svc")),
                        None, 8)
    fabric.connect(system)
    if drop_probability > 0:
        drop_rng = rngs.stream("test/drops")
        fabric.link_in.inject = (
            lambda request, nbytes:
            LINK_DROP if drop_rng.random() < drop_probability else None)
    system.start()
    sim.run(until=sim_ms * MS)
    return fabric


def fingerprint(fabric):
    return repr((sorted(fabric.stats["mc"].items()),
                 round(fabric.client_latency["mc"].percentile_us(99), 6)))


def make_client(cfg):
    sim = Simulator()

    class _FabricStub:
        rngs = RngStreams(9)

        def bump(self, *a, **k):
            pass

        def add(self, *a, **k):
            pass

    client = ClientMachine(sim, 0, _FabricStub(), cfg)
    app = memcached_app("mc")
    workload = _ClientWorkload(app, lambda: 1000, None, [0], 1.0,
                               RngStreams(9).stream("w"))
    return client, _Pending(client, workload, 0, 1000, 64, 64)


def test_defaults_preserve_legacy_floors():
    # backoff_base_ns == 0 (the default) must leave retry timing
    # byte-identical to the pre-hardening behaviour: the floor verbatim.
    client, pending = make_client(NetConfig())
    pending.attempts = 1
    assert client._backoff_ns(pending, 0) == 0
    assert client._backoff_ns(pending, 5 * US) == 5 * US
    pending.attempts = 7
    assert client._backoff_ns(pending, 5 * US) == 5 * US


def test_exponential_growth_and_cap():
    cfg = NetConfig(backoff_base_ns=10 * US, backoff_factor=2.0,
                    backoff_max_ns=60 * US)
    client, pending = make_client(cfg)
    delays = []
    for attempts in (1, 2, 3, 4, 5):
        pending.attempts = attempts
        delays.append(client._backoff_ns(pending, 0))
    assert delays[:3] == [10 * US, 20 * US, 40 * US]
    assert delays[3] == delays[4] == 60 * US  # clamped at backoff_max_ns
    # The floor still wins when it exceeds the computed delay.
    pending.attempts = 1
    assert client._backoff_ns(pending, 15 * US) == 15 * US


def test_jitter_is_seeded_and_bounded():
    cfg = NetConfig(backoff_base_ns=10 * US, backoff_jitter=0.5)
    client_a, pending = make_client(cfg)
    pending.attempts = 1
    first = [client_a._backoff_ns(pending, 0) for _ in range(8)]
    client_b, pending_b = make_client(cfg)
    pending_b.attempts = 1
    second = [client_b._backoff_ns(pending_b, 0) for _ in range(8)]
    assert first == second  # same stream (net/backoff/0), same draws
    assert all(10 * US <= d <= 15 * US for d in first)
    assert len(set(first)) > 1  # actually jittered


def test_retry_budget_suppresses_storm():
    # Under heavy induced loss, a tiny budget converts most retries
    # into suppressions (counted as losses, never amplifying load).
    lossy = replace(NetConfig(), max_retries=5)
    budgeted = replace(lossy, retry_budget=0.05, retry_budget_cap=2.0)
    unbounded = run_fabric(lossy, drop_probability=0.3)
    bounded = run_fabric(budgeted, drop_probability=0.3)
    assert bounded.stats["mc"]["retries_suppressed"] > 0
    assert bounded.stats["mc"]["retries"] \
        < unbounded.stats["mc"]["retries"]
    # Suppressed requests are accounted as losses: conservation holds.
    assert bounded.conservation()["mc"]["balance"] == 0


def test_backoff_ns_counter_accumulates():
    cfg = replace(NetConfig(), backoff_base_ns=20 * US, max_retries=3)
    fabric = run_fabric(cfg, drop_probability=0.3)
    stats = fabric.stats["mc"]
    assert stats["retries"] > 0
    assert stats["backoff_ns"] >= stats["retries"] * 20 * US


def test_default_config_runs_byte_identical_to_itself():
    assert fingerprint(run_fabric(NetConfig())) \
        == fingerprint(run_fabric(NetConfig()))


def test_hardened_config_deterministic():
    cfg = replace(NetConfig(), backoff_base_ns=20 * US, backoff_jitter=0.5,
                  retry_budget=0.1)
    assert fingerprint(run_fabric(cfg, drop_probability=0.2)) \
        == fingerprint(run_fabric(cfg, drop_probability=0.2))
