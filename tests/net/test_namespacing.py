"""Per-machine RNG namespacing: N fabrics, one seed, no stream sharing."""

from repro.net import NetConfig
from repro.sim.rng import RngStreams


def test_stream_prefix_default_is_legacy_name():
    # server_id=None must keep the historical stream names so every
    # pre-cluster experiment stays byte-identical.
    assert NetConfig().stream_prefix() == "net"


def test_stream_prefix_namespaced_by_server_id():
    assert NetConfig(server_id=0).stream_prefix() == "net/server0"
    assert NetConfig(server_id=7).stream_prefix() == "net/server7"


def test_namespaced_streams_draw_independently():
    rngs = RngStreams(42)
    legacy = rngs.stream(f"{NetConfig().stream_prefix()}/rss")
    s0 = rngs.stream(f"{NetConfig(server_id=0).stream_prefix()}/rss")
    s1 = rngs.stream(f"{NetConfig(server_id=1).stream_prefix()}/rss")
    draws = [rng.getrandbits(64) for rng in (legacy, s0, s1)]
    assert len(set(draws)) == 3  # three distinct streams

    # And the same (seed, server) pair always replays the same stream.
    replay = RngStreams(42).stream(
        f"{NetConfig(server_id=1).stream_prefix()}/rss")
    assert replay.getrandbits(64) == draws[2]
