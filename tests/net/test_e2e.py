"""End-to-end: run_colocation over the simulated cluster fabric."""

from dataclasses import asdict

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    l_capacity_mops,
    make_payload_sampler,
    run_colocation,
)
from repro.faults import FaultInjector, FaultPlan
from repro.net import NetConfig
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS


def _net_cfg(**overrides):
    return ExperimentConfig(num_workers=2, sim_ms=4, warmup_ms=1,
                            net=NetConfig(), **overrides)


def _run(system="vessel", cfg=None, **kwargs):
    cfg = cfg or _net_cfg()
    rate = 0.3 * l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    return run_colocation(system, cfg,
                          l_specs=[("memcached", "memcached", rate)],
                          **kwargs)


def test_net_run_reports_client_latency():
    report = _run()
    assert report.completed["memcached"] > 0
    client_p99 = report.client_p99_us("memcached")
    server_p99 = report.latency["memcached"]["p99_us"]
    assert client_p99 > 0
    # The network path only ever adds latency on top of the server path.
    assert client_p99 >= server_p99
    counters = report.net_ops["memcached"]
    assert counters["offered"] > 0
    assert counters["completed"] > 0
    assert counters["completed"] <= counters["offered"]


def test_net_run_is_deterministic_under_identical_seed():
    assert asdict(_run()) == asdict(_run())


def test_net_run_varies_with_seed():
    a = _run(cfg=_net_cfg(seed=1))
    b = _run(cfg=_net_cfg(seed=2))
    assert a.net_ops["memcached"] != b.net_ops["memcached"]


def test_direct_submit_path_has_no_net_state():
    cfg = ExperimentConfig(num_workers=2, sim_ms=4, warmup_ms=1)
    report = run_colocation("vessel", cfg,
                            l_specs=[("memcached", "memcached", 0.3)])
    assert report.client_latency == {}
    assert report.net_ops == {}


def test_packet_faults_are_observed_and_contained():
    holder = {}

    def attach(sim, machine, system):
        plan = (FaultPlan(seed=99)
                .drop_packets(0.05, at_ns=1 * MS)
                .delay_packets(20_000, probability=0.05, at_ns=1 * MS))
        injector = FaultInjector(plan)
        injector.attach(system)
        holder["injector"] = injector

    report = _run(setup_hook=attach)
    injector = holder["injector"]
    assert injector.total_injected > 0
    counters = report.net_ops["memcached"]
    # Dropped packets were observed by clients and retried, never
    # silently lost from the accounting.
    assert counters["drops_observed"] > 0
    assert counters["retries"] > 0
    assert injector.uncontained() == []


def test_packet_faults_require_a_fabric():
    def attach(sim, machine, system):
        FaultInjector(FaultPlan(seed=1).drop_packets(0.1)).attach(system)

    cfg = ExperimentConfig(num_workers=2, sim_ms=2, warmup_ms=1)
    with pytest.raises(RuntimeError, match="network fabric"):
        run_colocation("vessel", cfg,
                       l_specs=[("memcached", "memcached", 0.3)],
                       setup_hook=attach)


@pytest.mark.parametrize("kind,name", [("memcached", "memcached"),
                                       ("silo", "silo")])
def test_payload_samplers_produce_positive_sizes(kind, name):
    sampler = make_payload_sampler(kind, name, RngStreams(5))
    sizes = [sampler() for _ in range(200)]
    assert all(bytes_in > 0 and bytes_out > 0
               for bytes_in, bytes_out in sizes)
    # Requests and responses are not a single constant size.
    assert len(set(sizes)) > 10


def test_payload_samplers_are_seed_deterministic():
    a = make_payload_sampler("silo", "silo", RngStreams(5))
    b = make_payload_sampler("silo", "silo", RngStreams(5))
    assert [a() for _ in range(50)] == [b() for _ in range(50)]


def test_make_payload_sampler_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_payload_sampler("mysql", "m", RngStreams(1))


def test_net_config_validation():
    cfg = NetConfig(rings=0)
    assert cfg.num_rings(8) == 8
    assert cfg.num_rings(0) == 1
    assert NetConfig(rings=3).num_rings(8) == 3
