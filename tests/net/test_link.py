"""Tests for the serializing link."""

import pytest

from repro.net.link import LINK_DROP, Link
from repro.obs.ledger import OpLedger
from repro.workloads.memcached import memcached_app
from repro.workloads.base import Request


def _request(nbytes=0):
    app = memcached_app()
    request = Request(app, 0, 1000)
    request.bytes_in = nbytes
    return request


def test_serialization_time_scales_with_bytes(sim):
    link = Link(sim, "l", gbps=100.0, propagation_ns=0)
    # 125 bytes at 100 Gbps = 1000 bits / 100 bits-per-ns = 10 ns
    assert link.serialization_ns(125) == 10
    assert link.serialization_ns(1250) == 100
    # Tiny packets still occupy the wire for at least a nanosecond.
    assert link.serialization_ns(1) == 1


def test_delivery_after_serialization_and_propagation(sim):
    link = Link(sim, "l", gbps=100.0, propagation_ns=500)
    arrived = []
    link.send(_request(), 125, lambda r: arrived.append(sim.now))
    sim.run()
    assert arrived == [510]


def test_packets_queue_behind_the_wire(sim):
    link = Link(sim, "l", gbps=100.0, propagation_ns=0)
    arrived = []
    for _ in range(3):
        link.send(_request(), 125, lambda r: arrived.append(sim.now))
    assert link.queue_ns() == 30
    sim.run()
    # Each packet serializes for 10 ns *after* the previous one.
    assert arrived == [10, 20, 30]


def test_validation():
    with pytest.raises(ValueError):
        Link(None, "l", gbps=0)
    with pytest.raises(ValueError):
        Link(None, "l", propagation_ns=-1)


def test_inject_drop_fires_on_drop_callback(sim):
    dropped = []
    link = Link(sim, "l", on_drop=dropped.append)
    link.inject = lambda request, nbytes: LINK_DROP
    request = _request()
    assert not link.send(request, 100, lambda r: None)
    assert dropped == [request]
    assert link.dropped == 1
    assert link.tx_packets == 0


def test_inject_delay_postpones_delivery(sim):
    link = Link(sim, "l", gbps=100.0, propagation_ns=0)
    link.inject = lambda request, nbytes: 5_000
    arrived = []
    link.send(_request(), 125, lambda r: arrived.append(sim.now))
    sim.run()
    assert arrived == [5_010]


def test_ledger_charges_link_tx_under_net_domain(sim):
    ledger = OpLedger(sim=sim)
    link = Link(sim, "l", gbps=100.0, propagation_ns=0, ledger=ledger)
    link.send(_request(), 125, lambda r: None)
    sim.run()
    assert ledger.op_count("link_tx", domain="net") == 1
    assert ledger.total_ns(domain="net", op="link_tx") == 10
