"""The §4.2 security suite: every attack class must be defeated, and the
ablations must show each defense is load-bearing."""


from repro.uprocess import attacks as atk
from repro.uprocess.callgate import CallGate
from repro.uprocess.threads import UThread


def test_embedded_wrpkru_defeated(domain, two_uprocs):
    a, _ = two_uprocs
    outcome = atk.attack_embedded_wrpkru(domain.loader, a)
    assert not outcome.succeeded


def test_dlopen_wrpkru_defeated(domain, two_uprocs):
    a, _ = two_uprocs
    outcome = atk.attack_dlopen_wrpkru(domain.loader, a)
    assert not outcome.succeeded


def test_control_flow_hijack_defeated(domain, installed, machine):
    outcome = atk.attack_control_flow_hijack(domain.gate, machine.cores[0])
    assert not outcome.succeeded


def test_control_flow_hijack_succeeds_without_recheck(domain, installed,
                                                      machine):
    gate = CallGate(domain.smas, pkru_recheck=False)
    outcome = atk.attack_control_flow_hijack(gate, machine.cores[0])
    assert outcome.succeeded


def test_plt_overwrite_defeated(domain, two_uprocs):
    a, _ = two_uprocs
    outcome = atk.attack_plt_overwrite(domain.smas, a)
    assert not outcome.succeeded


def test_return_address_overwrite_defeated(domain, installed, machine):
    thread_a, thread_b = installed
    sibling = UThread(thread_a.uproc)
    outcome = atk.attack_return_address(domain.gate, domain.smas,
                                        machine.cores[0], thread_a, sibling)
    assert not outcome.succeeded


def test_return_address_overwrite_succeeds_without_stack_switch(
        domain, installed, machine):
    thread_a, _ = installed
    sibling = UThread(thread_a.uproc)
    gate = CallGate(domain.smas, stack_switch=False)
    outcome = atk.attack_return_address(gate, domain.smas, machine.cores[0],
                                        thread_a, sibling)
    assert outcome.succeeded  # the defense is load-bearing


def test_runtime_read_defeated(domain, two_uprocs, machine):
    a, _ = two_uprocs
    outcome = atk.attack_direct_runtime_read(domain.smas, machine.cores[0], a)
    assert not outcome.succeeded


def test_cross_uprocess_read_defeated(domain, two_uprocs):
    a, b = two_uprocs
    assert not atk.attack_cross_uprocess_read(domain.smas, a, b).succeeded
    assert not atk.attack_cross_uprocess_read(domain.smas, b, a).succeeded


def test_foreign_text_jump_contained(domain, two_uprocs):
    a, b = two_uprocs
    outcome = atk.attack_jump_into_foreign_text(domain.smas, a, b)
    assert not outcome.succeeded
    assert "fetch allowed" in outcome.detail  # necessary-and-safe (§4.1)


def test_all_attack_classes_covered():
    assert len(atk.ALL_ATTACKS) == 8


def test_full_sweep_with_defenses_on(domain, two_uprocs, installed, machine):
    """Every §4.2 attack in one sweep — none may land."""
    a, b = two_uprocs
    thread_a, _ = installed
    sibling = UThread(a)
    outcomes = [
        atk.attack_embedded_wrpkru(domain.loader, a),
        atk.attack_dlopen_wrpkru(domain.loader, a),
        atk.attack_control_flow_hijack(domain.gate, machine.cores[0]),
        atk.attack_plt_overwrite(domain.smas, a),
        atk.attack_return_address(domain.gate, domain.smas,
                                  machine.cores[0], thread_a, sibling),
        atk.attack_direct_runtime_read(domain.smas, machine.cores[0], a),
        atk.attack_cross_uprocess_read(domain.smas, a, b),
        atk.attack_jump_into_foreign_text(domain.smas, a, b),
    ]
    assert [o.succeeded for o in outcomes] == [False] * 8
