"""Teardown leak regression: 1k create-destroy-create churn cycles.

Every ``remove_app`` must release the tenant's SMAS slot (and pkey),
boot kProcess, SIGSEGV registration, and proxied kernel descriptors —
under rapid recycling each per-cycle residue compounds into an audit
failure (and, for slots, a hard ``SmasError``) long before 1k cycles.
"""

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import US
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.uprocess.smas import MAX_UPROCESSES
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import Request
from repro.workloads.memcached import memcached_app


def build(workers=2, seed=3):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    system.start()
    return sim, system


def baseline(system):
    return {
        "slots": system.domain.smas.slots_in_use(),
        "uprocs": len(system.domain.uprocs),
        "handlers": len(system.signals._handlers),
        "children": sum(1 for child in system.manager.kprocess.children
                        if child.alive),
        "fd_tables": sum(1 for fds in system.runtime._kernel_fds.values()
                         if fds),
    }


def test_1k_churn_cycles_return_to_baseline():
    sim, system = build()
    before = baseline(system)
    slot_indices = set()
    for cycle in range(1000):
        app = memcached_app(f"cycle{cycle}")
        system.add_app(app)
        slot_indices.add(system._apps[app.name].uproc.slot.index)
        system.remove_app(app.name)
    assert baseline(system) == before
    # Slots were recycled from the fixed pool, not burned through.
    assert len(slot_indices) <= MAX_UPROCESSES


def test_churn_cycles_with_traffic_between():
    """Create-destroy-create with requests served in between: teardown
    must also release threads claimed by the scheduler mid-protocol."""
    sim, system = build()
    before = baseline(system)
    for cycle in range(50):
        app = memcached_app(f"cycle{cycle}")
        system.add_app(app)
        for _ in range(4):
            system.submit(Request(app, sim.now, 1000, 0))
        sim.run(until=sim.now + 20 * US)
        system.remove_app(app.name)
    sim.run(until=sim.now + 100 * US)
    assert baseline(system) == before
    assert system.signals.stale_handlers() == []


def test_rapid_recreate_reuses_first_free_slot():
    sim, system = build()
    a = memcached_app("a")
    system.add_app(a)
    index = system._apps["a"].uproc.slot.index
    system.remove_app("a")
    b = memcached_app("b")
    system.add_app(b)
    assert system._apps["b"].uproc.slot.index == index
