"""Tests for the UProcess object: descriptor map, heap, lifecycle."""

import pytest

from repro.kernel.fdtable import FileDescription
from repro.uprocess.uproc import UProcessState


def test_fd_map_install_lookup_remove(two_uprocs):
    a, _ = two_uprocs
    description = FileDescription("/f", owner_label="app-a")
    ufd = a.install_fd(description)
    assert ufd >= 3  # 0..2 reserved
    assert a.lookup_fd(ufd) is description
    assert a.remove_fd(ufd) is description
    assert a.lookup_fd(ufd) is None


def test_remove_unknown_ufd_raises(two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(KeyError):
        a.remove_fd(77)


def test_ufds_not_shared_between_uprocs(two_uprocs):
    a, b = two_uprocs
    ufd = a.install_fd(FileDescription("/secret"))
    assert b.lookup_fd(ufd) is None  # §5.2.4: no brute-forcing


def test_heap_and_static_arena_disjoint(two_uprocs):
    a, _ = two_uprocs
    heap_addr = a.heap.alloc(4096)
    static_addr = a.static_arena.alloc(4096)
    region = a.slot.data_region
    assert region.start <= static_addr < heap_addr < region.end


def test_pkru_matches_slot(two_uprocs):
    from repro.hardware.mpk import AccessKind
    a, b = two_uprocs
    assert a.pkru().allows(a.pkey, AccessKind.WRITE)
    assert not a.pkru().allows(b.pkey, AccessKind.READ)


def test_terminate_clears_state(two_uprocs):
    from repro.uprocess.threads import UThread, UThreadState
    a, _ = two_uprocs
    thread = UThread(a)
    a.install_fd(FileDescription("/x"))
    a.terminate()
    assert a.state is UProcessState.TERMINATED
    assert not a.alive
    assert thread.state is UThreadState.DEAD
    assert a.fd_map == {}


def test_uids_unique(two_uprocs):
    a, b = two_uprocs
    assert a.uid != b.uid
