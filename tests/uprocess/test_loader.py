"""Tests for the program loader: inspection, PIE, placement, dlopen."""

import pytest

from repro.uprocess.loader import (
    CodeInspectionError,
    LoaderError,
    ProgramImage,
)
from repro.uprocess.uproc import UProcessState


def test_clean_image_loads(domain, two_uprocs):
    a, _ = two_uprocs
    # already loaded by manager; load another fresh image into the slot
    segments = domain.loader.dlopen(a, ProgramImage("lib-clean"))
    assert a.slot.text_region.start <= segments.text_addr \
        < a.slot.text_region.end


def test_wrpkru_in_main_image_rejected(domain, two_uprocs):
    a, _ = two_uprocs
    evil = ProgramImage("evil", instructions=["NOP", "WRPKRU"])
    with pytest.raises(CodeInspectionError) as excinfo:
        domain.loader.load(a, evil)
    assert excinfo.value.opcode == "WRPKRU"
    assert excinfo.value.offset == 1


def test_xrstor_also_rejected(domain, two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(CodeInspectionError):
        domain.loader.load(a, ProgramImage("e", instructions=["XRSTOR"]))


def test_lowercase_opcode_still_caught(domain, two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(CodeInspectionError):
        domain.loader.load(a, ProgramImage("e", instructions=["wrpkru"]))


def test_wrpkru_in_transitive_library_rejected(domain, two_uprocs):
    a, _ = two_uprocs
    inner = ProgramImage("inner", instructions=["WRPKRU"])
    outer = ProgramImage("outer", libraries=[
        ProgramImage("mid", libraries=[inner])])
    with pytest.raises(CodeInspectionError):
        domain.loader.load(a, outer)


def test_non_pie_rejected(domain, two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(LoaderError):
        domain.loader.load(a, ProgramImage("static", pie=False))


def test_libraries_placed_via_allocator(domain, two_uprocs):
    a, _ = two_uprocs
    before = a.static_arena.allocated_bytes()
    lib = ProgramImage("lib", data_size=64 << 10)
    domain.loader.load(a, ProgramImage("main", libraries=[lib]))
    assert a.static_arena.allocated_bytes() > before


def test_text_region_exhaustion(domain, two_uprocs):
    a, _ = two_uprocs
    huge = ProgramImage("huge", text_size=1 << 30)
    with pytest.raises(LoaderError):
        domain.loader.load(a, huge)


def test_load_marks_state(domain, manager):
    from repro.uprocess.loader import ProgramImage
    up = manager.create_uprocess(domain, ProgramImage("fresh"))
    assert up.state is UProcessState.RUNNING


def test_dlopen_inspects(domain, two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(CodeInspectionError):
        domain.loader.dlopen(a, ProgramImage("e", instructions=["WRPKRU"]))


def test_loaded_images_recorded(domain, two_uprocs):
    assert ("app-a", "app-a") in domain.loader.loaded_images


def test_entry_point_offset(domain, two_uprocs):
    a, _ = two_uprocs
    image = ProgramImage("offsety", entry_offset=0x40)
    segments = domain.loader.load(a, image)
    assert segments.entry_point == segments.text_addr + 0x40


def test_sequential_text_placement(domain, two_uprocs):
    a, _ = two_uprocs
    first = domain.loader.dlopen(a, ProgramImage("l1", text_size=0x1000))
    second = domain.loader.dlopen(a, ProgramImage("l2", text_size=0x1000))
    assert second.text_addr == first.text_addr + 0x1000
