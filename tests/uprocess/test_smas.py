"""Tests for the SMAS layout, key assignment, and the message pipe."""

import pytest

from repro.hardware.mpk import AccessKind, MpkFault, Permission
from repro.kernel.syscalls import SyscallLayer
from repro.uprocess.smas import (
    MAX_UPROCESSES,
    PIPE_PKEY,
    RUNTIME_PKEY,
    Smas,
    SmasError,
)


@pytest.fixture
def smas(costs):
    return Smas(SyscallLayer(costs), num_cores=4)


def test_thirteen_slots(smas):
    assert len(smas.slots) == MAX_UPROCESSES == 13


def test_slot_keys_are_1_through_13(smas):
    assert [slot.pkey for slot in smas.slots] == list(range(1, 14))


def test_special_keys(smas):
    assert smas.runtime_region.pkey == RUNTIME_PKEY == 14
    assert smas.pipe_region.pkey == PIPE_PKEY == 15
    assert smas.callgate_text.pkey == RUNTIME_PKEY


def test_regions_do_not_overlap(smas):
    regions = smas.aspace.regions()
    spans = sorted((r.start, r.end) for r in regions)
    for (a_start, a_end), (b_start, _) in zip(spans, spans[1:]):
        assert a_end <= b_start


def test_text_regions_exec_only(smas):
    for slot in smas.slots:
        assert slot.text_region.perms == Permission.exec_only()
    assert smas.callgate_text.perms == Permission.exec_only()
    assert smas.runtime_text.perms == Permission.exec_only()


def test_slot_allocation_and_exhaustion(smas):
    slots = [smas.allocate_slot() for _ in range(13)]
    assert len({s.index for s in slots}) == 13
    with pytest.raises(SmasError):
        smas.allocate_slot()


def test_release_slot_allows_reuse(smas):
    slot = smas.allocate_slot()
    smas.release_slot(slot)
    assert smas.allocate_slot() is slot


def test_release_unused_slot_rejected(smas):
    with pytest.raises(SmasError):
        smas.release_slot(smas.slots[0])


def test_app_pkru_grants_own_slot_rw(smas):
    pkru = Smas.app_pkru(3)
    assert pkru.allows(3, AccessKind.WRITE)
    assert not pkru.allows(4, AccessKind.READ)


def test_app_pkru_pipe_read_only(smas):
    pkru = Smas.app_pkru(3)
    assert pkru.allows(PIPE_PKEY, AccessKind.READ)
    assert not pkru.allows(PIPE_PKEY, AccessKind.WRITE)


def test_app_pkru_runtime_invisible(smas):
    pkru = Smas.app_pkru(3)
    assert not pkru.allows(RUNTIME_PKEY, AccessKind.READ)


def test_runtime_pkru_sees_everything(smas):
    pkru = Smas.runtime_pkru()
    for pkey in range(16):
        assert pkru.allows(pkey, AccessKind.WRITE)


def test_app_cannot_read_other_slot_via_map(smas):
    pkru = Smas.app_pkru(1)
    other = smas.slots[4].data_region
    with pytest.raises(MpkFault):
        smas.aspace.check_access(other.start, AccessKind.READ, pkru)


def test_app_can_access_own_slot_via_map(smas):
    pkru = Smas.app_pkru(1)
    own = smas.slots[0].data_region
    smas.aspace.check_access(own.start + 64, AccessKind.WRITE, pkru)


def test_any_app_can_fetch_callgate_text(smas):
    # §4.1: sharing the text region lets uProcesses invoke the call gate.
    for pkey in (1, 5, 13):
        smas.aspace.check_access(smas.callgate_text.start,
                                 AccessKind.EXECUTE, Smas.app_pkru(pkey))


def test_runtime_stacks_per_core(smas):
    stacks = {smas.runtime_stack(core) for core in range(4)}
    assert len(stacks) == 4
    for rsp in stacks:
        region = smas.aspace.find(rsp - 8)
        assert region is smas.runtime_region


# ----------------------------------------------------------------------
# Message pipe
# ----------------------------------------------------------------------
def test_pipe_writable_in_runtime_mode(smas):
    smas.pipe.set_task(Smas.runtime_pkru(), 0, "task")
    assert smas.pipe.cpuid_to_task[0] == "task"


def test_pipe_rejects_app_writes(smas):
    with pytest.raises(MpkFault):
        smas.pipe.set_task(Smas.app_pkru(2), 0, "evil")
    with pytest.raises(MpkFault):
        smas.pipe.register_function(Smas.app_pkru(2), "park", lambda: None)
    with pytest.raises(MpkFault):
        smas.pipe.set_runtime_rsp(Smas.app_pkru(2), 0, 0xBAD)


def test_slots_in_use_counter(smas):
    assert smas.slots_in_use() == 0
    smas.allocate_slot()
    assert smas.slots_in_use() == 1
