"""Tests for the call gate: the legitimate flow and its invariants."""

import pytest

from repro.hardware.machine import CoreMode
from repro.uprocess.callgate import CallGateViolation
from repro.uprocess.smas import Smas


def test_invoke_runs_registered_function(domain, installed, machine):
    thread_a, _ = installed
    domain.gate.register_privileged("ping", lambda: "pong")
    result = domain.gate.invoke(machine.cores[0], thread_a, "ping")
    assert result == "pong"


def test_invoke_restores_caller_pkru(domain, installed, machine):
    thread_a, _ = installed
    core = machine.cores[0]
    domain.gate.register_privileged("noop", lambda: None)
    domain.gate.invoke(core, thread_a, "noop")
    assert core.pkru.value == thread_a.uproc.pkru().value
    assert core.mode is CoreMode.USER


def test_privileged_mode_during_call(domain, installed, machine):
    thread_a, _ = installed
    core = machine.cores[0]
    observed = {}

    def spy():
        observed["pkru"] = core.pkru.rdpkru()
        observed["mode"] = core.mode

    domain.gate.register_privileged("spy", spy)
    domain.gate.invoke(core, thread_a, "spy")
    assert observed["pkru"] == Smas.runtime_pkru().value
    assert observed["mode"] is CoreMode.RUNTIME


def test_unknown_function_rejected_and_pkru_restored(domain, installed,
                                                     machine):
    thread_a, _ = installed
    core = machine.cores[0]
    with pytest.raises(CallGateViolation):
        domain.gate.invoke(core, thread_a, "no-such-op")
    assert core.pkru.value == thread_a.uproc.pkru().value
    assert core.mode is CoreMode.USER


def test_arguments_forwarded(domain, installed, machine):
    thread_a, _ = installed
    domain.gate.register_privileged("add", lambda a, b: a + b)
    assert domain.gate.invoke(machine.cores[0], thread_a, "add", 2, 3) == 5


def test_exit_follows_task_map_after_context_switch(domain, installed,
                                                    machine):
    """Figure 6: the privileged function may switch the core to another
    uProcess; the gate exit must restore the NEW task's permissions."""
    thread_a, thread_b = installed
    core = machine.cores[0]

    def reschedule():
        domain.switcher.switch(core, thread_b)

    domain.gate.register_privileged("resched", reschedule)
    domain.gate.invoke(core, thread_a, "resched")
    assert core.pkru.value == thread_b.uproc.pkru().value


def test_invocation_counter(domain, installed, machine):
    thread_a, _ = installed
    domain.gate.register_privileged("noop", lambda: None)
    before = domain.gate.invocations
    domain.gate.invoke(machine.cores[0], thread_a, "noop")
    assert domain.gate.invocations == before + 1


def test_return_address_on_runtime_stack_with_defense(domain, installed,
                                                      machine):
    thread_a, _ = installed
    core = machine.cores[0]
    location = domain.gate.return_address_location(core, thread_a)
    assert domain.smas.aspace.find(location) is domain.smas.runtime_region


def test_return_address_on_app_stack_without_defense(domain, installed,
                                                     machine):
    from repro.uprocess.callgate import CallGate
    thread_a, _ = installed
    gate = CallGate(domain.smas, stack_switch=False)
    location = gate.return_address_location(machine.cores[0], thread_a)
    region = domain.smas.aspace.find(location)
    assert region is thread_a.uproc.slot.data_region


def test_hijack_defeated_with_recheck(domain, installed, machine):
    thread_a, _ = installed
    core = machine.cores[0]
    final = domain.gate.hijack_stage3(core, forged_pkru=0)
    assert final == thread_a.uproc.pkru().value
    assert domain.gate.hijacks_defeated == 1


def test_hijack_succeeds_without_recheck(domain, installed, machine):
    from repro.uprocess.callgate import CallGate
    gate = CallGate(domain.smas, pkru_recheck=False)
    final = gate.hijack_stage3(machine.cores[0], forged_pkru=0)
    assert final == 0  # attacker kept full access: defense is load-bearing


def test_hijack_with_no_mapped_task_rejected(domain, machine, two_uprocs):
    with pytest.raises(CallGateViolation):
        domain.gate.hijack_stage3(machine.cores[3], forged_pkru=0)


def test_dead_uprocess_refused_at_the_gate(domain, installed, machine):
    """A thread whose uProcess was reaped (crash containment) must not
    re-enter privileged mode on behalf of freed state."""
    thread_a, _ = installed
    domain.gate.register_privileged("ping", lambda: "pong")
    thread_a.uproc.terminate()
    before = domain.gate.invocations
    with pytest.raises(CallGateViolation):
        domain.gate.invoke(machine.cores[0], thread_a, "ping")
    assert domain.gate.invocations == before  # refused before stage 1
