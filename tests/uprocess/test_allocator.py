"""Tests for the arena allocator, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uprocess.allocator import (
    OutOfMemoryError,
    RegionAllocator,
    round_to_class,
)

BASE = 0x10_0000
SIZE = 1 << 20


def make():
    return RegionAllocator(BASE, SIZE, name="test")


def test_round_to_class_small():
    assert round_to_class(1) == 16
    assert round_to_class(17) == 32
    assert round_to_class(4096) == 4096


def test_round_to_class_large_page_rounds():
    assert round_to_class(4097) == 8192
    assert round_to_class(10_000) == 12288


def test_round_to_class_rejects_nonpositive():
    with pytest.raises(ValueError):
        round_to_class(0)


def test_alloc_within_range():
    arena = make()
    addr = arena.alloc(100)
    assert BASE <= addr < BASE + SIZE
    assert arena.owns(addr)
    assert arena.block_size(addr) == round_to_class(100) == 112


def test_allocations_do_not_overlap():
    arena = make()
    blocks = [(arena.alloc(200), round_to_class(200)) for _ in range(100)]
    spans = sorted(blocks)
    for (a_start, a_size), (b_start, _) in zip(spans, spans[1:]):
        assert a_start + a_size <= b_start


def test_free_and_reuse():
    arena = make()
    addr = arena.alloc(1000)
    arena.free(addr)
    assert not arena.owns(addr)
    assert arena.alloc(1000) == addr  # first fit reuses


def test_double_free_rejected():
    arena = make()
    addr = arena.alloc(64)
    arena.free(addr)
    with pytest.raises(ValueError):
        arena.free(addr)


def test_free_unknown_rejected():
    with pytest.raises(ValueError):
        make().free(0xDEAD)


def test_coalescing_reassembles_arena():
    arena = make()
    addrs = [arena.alloc(4096) for _ in range(10)]
    for addr in addrs:
        arena.free(addr)
    assert arena.free_bytes() == SIZE
    assert len(arena._free) == 1  # fully coalesced


def test_out_of_memory():
    arena = RegionAllocator(0, 1024)
    arena.alloc(512)
    with pytest.raises(OutOfMemoryError):
        arena.alloc(1024)


def test_alignment_respected():
    arena = make()
    addr = arena.alloc(100, align=256)
    assert addr % 256 == 0


def test_bad_alignment_rejected():
    with pytest.raises(ValueError):
        make().alloc(16, align=3)


def test_accounting_conserved():
    arena = make()
    addrs = [arena.alloc(100) for _ in range(5)]
    assert arena.allocated_bytes() + arena.free_bytes() == SIZE
    arena.free(addrs[2])
    assert arena.allocated_bytes() + arena.free_bytes() == SIZE


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=8192)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=100)),
    ),
    min_size=1, max_size=200,
))
def test_random_workload_invariants(ops):
    arena = RegionAllocator(BASE, SIZE)
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(arena.alloc(value))
            except OutOfMemoryError:
                pass
        elif live:
            arena.free(live.pop(value % len(live)))
        arena.check_invariants()
    for addr in live:
        arena.free(addr)
    arena.check_invariants()
    assert arena.free_bytes() == SIZE
