"""Tests for the userspace context switch (Figure 6)."""

import pytest

from repro.uprocess.threads import UThreadState


def test_install_sets_pkru_and_map(domain, two_uprocs, machine):
    from repro.uprocess.threads import UThread
    a, _ = two_uprocs
    thread = UThread(a)
    core = machine.cores[0]
    domain.switcher.install(core, thread)
    assert core.pkru.value == a.pkru().value
    assert domain.smas.pipe.cpuid_to_task[core.id] is thread
    assert thread.state is UThreadState.RUNNING
    assert thread.core_id == core.id


def test_switch_updates_everything(domain, installed, machine):
    thread_a, thread_b = installed
    core = machine.cores[0]
    cost = domain.switcher.switch(core, thread_b)
    assert cost > 0
    assert core.pkru.value == thread_b.uproc.pkru().value
    assert domain.smas.pipe.cpuid_to_task[core.id] is thread_b
    assert thread_b.state is UThreadState.RUNNING
    assert thread_a.core_id is None
    assert thread_b.core_id == core.id


def test_park_switch_cost_near_table1(domain, installed, machine):
    _, thread_b = installed
    cost = domain.switcher.switch(machine.cores[0], thread_b, preempt=False)
    assert 150 <= cost <= 1000  # 0.161 us typical, rare jitter tail


def test_preempt_switch_costs_more(domain, installed, machine):
    thread_a, thread_b = installed
    core = machine.cores[0]
    park_costs = []
    preempt_costs = []
    current, other = thread_a, thread_b
    for _ in range(200):
        park_costs.append(domain.switcher.switch(core, other, preempt=False))
        current, other = other, current
    for _ in range(200):
        preempt_costs.append(domain.switcher.switch(core, other,
                                                    preempt=True))
        current, other = other, current
    avg_park = sum(park_costs) / len(park_costs)
    avg_preempt = sum(preempt_costs) / len(preempt_costs)
    assert avg_preempt > avg_park + 150  # Uintr path adds send+deliver+uiret


def test_switch_counters(domain, installed, machine):
    thread_a, thread_b = installed
    domain.switcher.switch(machine.cores[0], thread_b, preempt=False)
    domain.switcher.switch(machine.cores[0], thread_a, preempt=True)
    assert domain.switcher.park_switches == 1
    assert domain.switcher.preempt_switches == 1


def test_switch_to_dead_thread_rejected(domain, installed, machine):
    _, thread_b = installed
    thread_b.state = UThreadState.DEAD
    with pytest.raises(RuntimeError):
        domain.switcher.switch(machine.cores[0], thread_b)


def test_park_current_marks_parked(domain, installed, machine):
    thread_a, _ = installed
    domain.switcher.park_current(machine.cores[0])
    assert thread_a.state is UThreadState.PARKED


def test_switch_cost_faster_than_caladan(domain, installed, machine, costs):
    """The headline: userspace switch is an order of magnitude cheaper."""
    _, thread_b = installed
    cost = domain.switcher.switch(machine.cores[0], thread_b)
    caladan = costs.caladan_park_yield_ns + costs.caladan_park_switch_ns
    assert cost * 2 < caladan


def test_table1_distribution(domain, installed, machine):
    """The ping-pong experiment matches Table 1 within tolerance."""
    import numpy as np
    thread_a, thread_b = installed
    core = machine.cores[0]
    samples = []
    current, other = thread_a, thread_b
    for _ in range(5000):
        samples.append(domain.switcher.switch(core, other))
        current, other = other, current
    avg = float(np.mean(samples)) / 1000.0
    p999 = float(np.percentile(samples, 99.9)) / 1000.0
    assert avg == pytest.approx(0.161, abs=0.02)
    assert 0.3 <= p999 <= 1.2  # paper: 0.706 us
