"""Tests for userspace threads: stacks, TLS, lifecycle."""

import pytest

from repro.uprocess.threads import (
    DEFAULT_STACK_SIZE,
    ThreadContext,
    UThread,
    UThreadState,
)


def test_thread_gets_stack_and_tls(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a)
    assert a.static_arena.owns(thread.stack_base)
    assert a.static_arena.owns(thread.tls)
    assert thread in a.threads


def test_stack_grows_down_from_top(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a)
    assert thread.context.rsp == thread.stack_base + DEFAULT_STACK_SIZE


def test_stack_inside_own_data_region(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a)
    region = a.slot.data_region
    assert region.start <= thread.stack_base < region.end


def test_stacks_disjoint(two_uprocs):
    a, _ = two_uprocs
    threads = [UThread(a) for _ in range(10)]
    spans = sorted((t.stack_base, t.stack_base + t.stack_size)
                   for t in threads)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_destroy_releases_memory(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a)
    stack, tls = thread.stack_base, thread.tls
    thread.destroy()
    assert thread.state is UThreadState.DEAD
    assert not a.static_arena.owns(stack)
    assert not a.static_arena.owns(tls)


def test_destroy_twice_is_safe(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a)
    thread.destroy()
    thread.destroy()


def test_thread_on_terminated_uprocess_rejected(two_uprocs):
    a, _ = two_uprocs
    a.terminate()
    with pytest.raises(RuntimeError):
        UThread(a)


def test_custom_stack_size(two_uprocs):
    a, _ = two_uprocs
    thread = UThread(a, stack_size=64 << 10)
    assert thread.stack_size == 64 << 10


def test_context_defaults():
    context = ThreadContext()
    assert context.rsp == 0 and context.return_addr == 0


def test_tids_unique(two_uprocs):
    a, b = two_uprocs
    assert UThread(a).tid != UThread(b).tid
