"""Tests for command queues and fault shielding (§4.3)."""

from repro.uprocess.usignals import Command, CommandKind, CommandQueue


def test_fifo_order():
    queue = CommandQueue(0)
    for i in range(5):
        queue.push(Command(CommandKind.RUN_THREAD, i))
    assert [queue.pop().payload for _ in range(5)] == list(range(5))


def test_pop_empty_returns_none():
    assert CommandQueue(0).pop() is None


def test_depth_statistics():
    queue = CommandQueue(0)
    for i in range(3):
        queue.push(Command(CommandKind.PREEMPT))
    queue.pop()
    assert queue.pushed == 3
    assert queue.max_depth == 3
    assert len(queue) == 2


def test_drain_empties():
    queue = CommandQueue(0)
    queue.push(Command(CommandKind.PREEMPT))
    queue.push(Command(CommandKind.KILL_UPROCESS))
    drained = queue.drain()
    assert len(drained) == 2
    assert len(queue) == 0


def test_broadcast_kill_targets_running_cores(domain, two_uprocs):
    a, _ = two_uprocs
    count = domain.queues.broadcast_kill(a, [0, 2])
    assert count == 2
    assert len(domain.queues.of(0)) == 1
    assert len(domain.queues.of(1)) == 0
    assert len(domain.queues.of(2)) == 1


def test_fault_identifies_and_condemns_uproc(domain, installed, machine):
    thread_a, _ = installed
    condemned = domain.handle_fault(machine.cores[0].id)
    assert condemned is thread_a.uproc
    # commands queued, uProcess not yet terminated (lazy, §4.3)
    assert condemned.alive
    domain.process_commands(machine.cores[0].id)
    assert not condemned.alive


def test_fault_on_idle_core_is_noop(domain, two_uprocs, machine):
    assert domain.handle_fault(machine.cores[3].id) is None


def test_fault_frees_slot_for_reuse(domain, manager, installed, machine):
    from repro.uprocess.loader import ProgramImage
    thread_a, _ = installed
    uproc = thread_a.uproc
    slot_index = uproc.slot.index
    domain.handle_fault(machine.cores[0].id)
    domain.process_commands(machine.cores[0].id)
    replacement = manager.create_uprocess(domain, ProgramImage("new"))
    assert replacement.slot.index == slot_index


def test_fault_kills_only_faulty_uproc(domain, installed, machine):
    thread_a, thread_b = installed
    # B runs on core 1.
    domain.switcher.install(machine.cores[1], thread_b)
    domain.handle_fault(machine.cores[0].id)  # A faults
    domain.process_commands(machine.cores[0].id)
    assert not thread_a.uproc.alive
    assert thread_b.uproc.alive  # blast radius contained


def test_non_kill_commands_returned_to_scheduler(domain, machine):
    queue = domain.queues.of(0)
    queue.push(Command(CommandKind.RUN_THREAD, "t"))
    remaining = domain.process_commands(0)
    assert len(remaining) == 1
    assert remaining[0].payload == "t"
