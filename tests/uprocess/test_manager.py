"""Tests for the manager: creation, destruction, cloning (§5.1, §5.3)."""

import pytest

from repro.uprocess.loader import ProgramImage
from repro.uprocess.smas import MAX_UPROCESSES, SmasError
from repro.uprocess.threads import UThread
from repro.uprocess.uproc import UProcessState


def test_create_uprocess_full_flow(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    assert up.state is UProcessState.RUNNING
    assert up.slot.in_use
    assert up in domain.uprocs
    # a booting kProcess was forked from the manager and pinned
    assert up.boot_kprocess.parent is manager.kprocess
    assert up.boot_kprocess.bound_core is not None


def test_thirteen_uprocess_limit(manager, domain):
    for i in range(MAX_UPROCESSES):
        manager.create_uprocess(domain, ProgramImage(f"app{i}"))
    with pytest.raises(SmasError):
        manager.create_uprocess(domain, ProgramImage("overflow"))


def test_failed_load_releases_slot(manager, domain):
    from repro.uprocess.loader import CodeInspectionError
    evil = ProgramImage("evil", instructions=["WRPKRU"])
    with pytest.raises(CodeInspectionError):
        manager.create_uprocess(domain, evil)
    assert domain.smas.slots_in_use() == 0


def test_destroy_idle_uprocess_immediate(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    queued = manager.destroy_uprocess(domain, up)
    assert queued == 0
    assert not up.alive
    assert not up.slot.in_use


def test_destroy_running_uprocess_is_lazy(manager, domain, machine):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    domain.switcher.install(machine.cores[0], thread)
    queued = manager.destroy_uprocess(domain, up)
    assert queued == 1
    assert up.alive  # not yet: the core must enter privileged mode
    domain.process_commands(machine.cores[0].id)
    assert not up.alive


def test_destroy_foreign_uprocess_rejected(manager, domain):
    other_domain = manager.create_domain(domain.cores, name="other")
    up = manager.create_uprocess(other_domain, ProgramImage("x"))
    with pytest.raises(SmasError):
        manager.destroy_uprocess(domain, up)


def test_clone_lands_on_same_slot_in_new_domain(manager, domain):
    manager.create_uprocess(domain, ProgramImage("first"))
    parent = manager.create_uprocess(domain, ProgramImage("second"))
    assert parent.slot.index == 1
    child = manager.clone_uprocess(domain, parent, ProgramImage("second"))
    assert child.slot.index == parent.slot.index
    assert child.smas is not parent.smas  # new SMAS (§5.3)


def test_clone_creates_new_domain(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("p"))
    before = len(manager.domains)
    manager.clone_uprocess(domain, up, ProgramImage("p"))
    assert len(manager.domains) == before + 1


def test_clone_domain_slots_usable_afterwards(manager, domain):
    manager.create_uprocess(domain, ProgramImage("a"))
    parent = manager.create_uprocess(domain, ProgramImage("b"))
    manager.clone_uprocess(domain, parent, ProgramImage("b"))
    clone_domain = manager.domains[-1]
    # the temporarily-blocked lower slots were released
    fresh = manager.create_uprocess(clone_domain, ProgramImage("c"))
    assert fresh.slot.index == 0


def test_uprocesses_have_distinct_pkeys(manager, domain):
    ups = [manager.create_uprocess(domain, ProgramImage(f"u{i}"))
           for i in range(5)]
    assert len({u.pkey for u in ups}) == 5


def test_fault_handler_registered_at_creation(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    key = (up.boot_kprocess.pid, 11)  # SIGSEGV
    assert key in manager.signals._handlers


def test_kill_thread_off_core_reaped_immediately(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    assert manager.kill_thread(domain, thread) == 0
    from repro.uprocess.threads import UThreadState
    assert thread.state is UThreadState.DEAD
    assert up.alive  # only the thread died (§5.3)


def test_kill_thread_on_core_is_lazy(manager, domain, machine):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    domain.switcher.install(machine.cores[0], thread)
    assert manager.kill_thread(domain, thread) == 1
    from repro.uprocess.threads import UThreadState
    assert thread.state is not UThreadState.DEAD
    domain.process_commands(machine.cores[0].id)
    assert thread.state is UThreadState.DEAD
    assert up.alive


def test_kill_thread_goes_through_sigqueue(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    before = manager.syscalls.counts.get("sigqueue", 0)
    manager.kill_thread(domain, thread)
    assert manager.syscalls.counts["sigqueue"] == before + 1


def test_destroy_revokes_pkey_to_default(manager, domain):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    assert up.slot.data_region.pkey == up.pkey
    manager.destroy_uprocess(domain, up)
    # Revoked regions fall back to pkey 0 so a stale stub branching into
    # the freed slot faults instead of touching the next tenant's memory.
    assert up.slot.data_region.pkey == 0
    assert up.slot.text_region.pkey == 0


def test_create_destroy_create_reuses_slot_at_limit(manager, domain):
    """Regression: destroy must return the slot, pkey, and regions to the
    allocator so churn at MAX_UPROCESSES never wedges the domain."""
    ups = [manager.create_uprocess(domain, ProgramImage(f"app{i}"))
           for i in range(MAX_UPROCESSES)]
    victim = ups[4]
    slot_index, pkey = victim.slot.index, victim.pkey
    manager.destroy_uprocess(domain, victim)
    assert not victim.slot.in_use
    fresh = manager.create_uprocess(domain, ProgramImage("replacement"))
    assert fresh.slot.index == slot_index
    assert fresh.pkey == pkey
    assert fresh.slot.data_region.pkey == fresh.pkey
    assert fresh.slot.text_region.pkey == fresh.pkey
    # ...and the domain is full again.
    with pytest.raises(SmasError):
        manager.create_uprocess(domain, ProgramImage("overflow"))


def test_destroy_purges_queued_commands(manager, domain, machine):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    domain.switcher.install(machine.cores[0], thread)
    manager.kill_thread(domain, thread)  # queues a KILL for the uproc
    manager.destroy_uprocess(domain, up)  # lazy: queues destroy too
    domain.process_commands(machine.cores[0].id)
    assert not up.alive
    for queue in domain.queues.queues.values():
        for command in queue._queue:
            assert command.payload is not up
            assert getattr(command.payload, "uproc", None) is not up


def test_teardown_uprocess_reaps_without_core_round_trip(manager, domain,
                                                         machine):
    up = manager.create_uprocess(domain, ProgramImage("svc"))
    thread = UThread(up)
    domain.switcher.install(machine.cores[0], thread)
    manager.teardown_uprocess(domain, up)
    # Unlike destroy_uprocess, teardown is the crash path: it reclaims
    # immediately, without waiting for the core to enter privileged mode.
    assert not up.alive
    assert not up.slot.in_use
    assert up.slot.data_region.pkey == 0


def test_teardown_foreign_uprocess_rejected(manager, domain):
    other_domain = manager.create_domain(domain.cores, name="other")
    up = manager.create_uprocess(other_domain, ProgramImage("x"))
    with pytest.raises(SmasError):
        manager.teardown_uprocess(domain, up)
