"""Tests for VESSEL's bandwidth regulation (Figure 13b mechanism)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.regulation import VesselBandwidthRegulator
from repro.vessel.scheduler import VesselSystem
from repro.workloads.membench import membench_app


def build(target_gbps, sim_ms=10, workers=1):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1, membus_gbps=40.0)
    system = VesselSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    app = membench_app(machine.membus)
    system.add_app(app)
    system.start()
    regulator = VesselBandwidthRegulator(sim, system, machine.membus,
                                         "membench", target_gbps)
    regulator.start()
    sim.run(until=sim_ms * MS)
    consumed = machine.membus.consumed_bytes("membench") / (sim_ms * MS)
    return consumed, regulator, app


@pytest.mark.parametrize("target", [2.0, 4.0, 6.0])
def test_achieved_tracks_target(target):
    consumed, _, _ = build(target)
    assert consumed == pytest.approx(target, rel=0.25)


def test_unconstrained_when_target_above_solo():
    consumed, regulator, app = build(100.0)
    solo = app.batch_work.solo_gbps()
    assert consumed == pytest.approx(solo, rel=0.15)
    assert regulator.suspensions == 0


def test_suspensions_counted_when_throttling():
    _, regulator, _ = build(2.0)
    assert regulator.suspensions > 5
    assert regulator.windows > 5


def test_negative_target_rejected():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)
    system = VesselSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    with pytest.raises(ValueError):
        VesselBandwidthRegulator(sim, system, machine.membus, "x", -1.0)


def test_set_target_adjusts_midflight():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2, membus_gbps=40.0)
    system = VesselSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    app = membench_app(machine.membus)
    system.add_app(app)
    system.start()
    regulator = VesselBandwidthRegulator(sim, system, machine.membus,
                                         "membench", 2.0)
    regulator.start()
    sim.run(until=5 * MS)
    at_low = machine.membus.consumed_bytes("membench")
    regulator.set_target(6.0)
    sim.run(until=10 * MS)
    at_high = machine.membus.consumed_bytes("membench") - at_low
    assert at_high > 2.0 * at_low  # consumption roughly tripled
