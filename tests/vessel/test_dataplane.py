"""Tests for the §5.2.5 dataplane devices and park-on-IO serving."""


import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.dataplane import (
    NicRxQueue,
    StorageDevice,
    make_storage_request,
)
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import Request
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app
from repro.workloads.storage import StorageRequestSource, storage_app


# ----------------------------------------------------------------------
# NicRxQueue
# ----------------------------------------------------------------------
def test_nic_adds_latency(sim):
    app = memcached_app()
    delivered = []
    nic = NicRxQueue(sim, delivered.append, latency_ns=500)
    request = Request(app, 0, 1000)
    assert nic.client_submit(request)
    sim.run()
    assert delivered[0] is request
    assert request.arrival_ns == 500  # restamped at ring arrival


def test_nic_drops_on_overflow(sim):
    app = memcached_app()
    nic = NicRxQueue(sim, lambda r: None, capacity=2)
    for _ in range(3):
        nic.client_submit(Request(app, 0, 1))
    assert nic.dropped == 1
    assert nic.in_flight == 2
    sim.run()
    assert nic.received == 2


def test_nic_capacity_validated(sim):
    with pytest.raises(ValueError):
        NicRxQueue(sim, lambda r: None, capacity=0)


# ----------------------------------------------------------------------
# StorageDevice
# ----------------------------------------------------------------------
def test_storage_completes_after_latency(sim):
    device = StorageDevice(sim, lambda: 10_000)
    done = []
    device.submit(lambda: done.append(sim.now))
    sim.run()
    assert done == [10_000]
    assert device.completed == 1


def test_storage_queue_depth_backlog(sim):
    device = StorageDevice(sim, lambda: 1000, queue_depth=2)
    done = []
    for _ in range(5):
        device.submit(lambda: done.append(sim.now))
    assert device.inflight == 2
    assert device.backlog_depth == 3
    assert device.rejected == 3
    sim.run()
    assert len(done) == 5
    assert device.backlog_depth == 0


def test_storage_depth_validated(sim):
    with pytest.raises(ValueError):
        StorageDevice(sim, lambda: 1, queue_depth=0)


def test_storage_fence_swallows_inflight_completions(sim):
    device = StorageDevice(sim, lambda: 1000)
    owner, survivor = object(), object()
    done = []
    device.submit(lambda: done.append("victim"), owner=owner)
    device.submit(lambda: done.append("survivor"), owner=survivor)
    device.fence(owner)
    sim.run()
    # The victim's IO still occupied the device (inflight accounting is
    # untouched) but its callback never fired into freed state.
    assert done == ["survivor"]
    assert device.completed == 2
    assert device.fenced_completions == 1


def test_storage_fence_drops_backlogged_submissions(sim):
    device = StorageDevice(sim, lambda: 1000, queue_depth=1)
    owner, survivor = object(), object()
    done = []
    device.submit(lambda: done.append("a"), owner=survivor)   # in flight
    device.submit(lambda: done.append("b"), owner=owner)      # backlog
    device.submit(lambda: done.append("c"), owner=survivor)   # backlog
    assert device.fence(owner) == 1
    sim.run()
    assert done == ["a", "c"]
    assert device.backlog_depth == 0


def test_storage_untagged_ios_unaffected_by_fence(sim):
    device = StorageDevice(sim, lambda: 1000)
    done = []
    device.submit(lambda: done.append(sim.now))
    device.fence(object())
    sim.run()
    assert len(done) == 1


def test_make_storage_request():
    app = storage_app()
    request = make_storage_request(app, 0, cpu1_ns=1000, io_ns=9000,
                                   cpu2_ns=500)
    assert request.io_wait_ns == 9000
    assert request.post_io_service_ns == 500
    assert not request.io_done


# ----------------------------------------------------------------------
# Park-on-IO end to end
# ----------------------------------------------------------------------
def build_storage_system(rate=0.4, workers=2, sim_ms=12, miss=0.5):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(9)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    app = storage_app()
    batch = linpack_app()
    system.add_app(app)
    system.add_app(batch)
    system.start()
    source = StorageRequestSource(sim, app, system.submit, rate,
                                  rngs.stream("io"), miss_fraction=miss)
    sim.run(until=sim_ms * MS)
    return sim, system, app, batch, source


def test_io_requests_complete_with_io_latency_included():
    sim, system, app, _, source = build_storage_system()
    assert app.completed.value > 0
    assert source.io_requests > 0
    # P90 must exceed the IO wait for a 50% miss mix; P10 must not.
    assert app.latency.percentile_us(90) > 10.0
    assert app.latency.percentile_us(10) < 5.0


def test_cores_not_burned_during_io_waits():
    """The §4.4 point: parking on IO frees the core for the B-app."""
    _, system, app, batch, source = build_storage_system(rate=0.4, miss=1.0)
    report = system.report()
    # All requests wait ~10 us on IO; if threads spun during IO the app
    # bucket would include that time.  CPU per request is 2 us, so the
    # app's core share stays near rate * 2 us.
    app_cores = report.buckets.get("app:rocksdb", 0) / report.elapsed_ns
    assert app_cores < 1.2 * 0.4 * 2.0 + 0.1
    # The batch app harvested the IO-wait time.
    assert batch.useful_ns > 0.5 * report.elapsed_ns


def test_io_latency_accounts_queueing_once():
    sim, system, app, _, _ = build_storage_system(rate=0.1, miss=1.0)
    # At very low load: latency ~= cpu1 + io + cpu2 (+ small sched)
    assert app.latency.percentile_us(50) == pytest.approx(
        (1200 + 10_000 + 800) / 1000, rel=0.35)


def test_storage_source_miss_fraction_validated(sim, rngs):
    with pytest.raises(ValueError):
        StorageRequestSource(sim, storage_app(), lambda r: None, 1.0,
                             rngs.stream("x"), miss_fraction=1.5)
