"""Tests for multi-domain VESSEL (§4.1's >13-app path)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.uprocess.smas import MAX_UPROCESSES
from repro.vessel.multidomain import MultiDomainVessel
from repro.workloads.base import OpenLoopSource
from repro.workloads.memcached import memcached_app
from repro.workloads.synthetic import ConstantService


def build(num_domains=2, workers=4):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(17)
    multi = MultiDomainVessel(sim, machine, rngs, num_domains,
                              worker_cores=machine.cores[1:])
    return sim, machine, multi, rngs


def test_cores_partitioned_disjointly():
    _, machine, multi, _ = build(num_domains=2, workers=5)
    sets = [frozenset(c.id for c in s.worker_cores) for s in multi.systems]
    assert len(sets[0] & sets[1]) == 0
    assert sum(len(s) for s in sets) == 5
    # uneven split: 3 + 2
    assert sorted(len(s) for s in sets) == [2, 3]


def test_separate_smas_per_domain():
    _, _, multi, _ = build()
    assert multi.systems[0].domain.smas is not multi.systems[1].domain.smas


def test_capacity_is_13_per_domain():
    _, _, multi, _ = build(num_domains=2)
    assert multi.capacity_apps == 2 * MAX_UPROCESSES


def test_more_than_13_apps_admitted():
    sim, _, multi, rngs = build(num_domains=2, workers=4)
    apps = [memcached_app(f"app{i}") for i in range(MAX_UPROCESSES + 3)]
    for app in apps:
        multi.add_app(app)
    # Spread across both domains, neither overfull.
    for system in multi.systems:
        assert system.domain.smas.slots_in_use() <= MAX_UPROCESSES
    assert sum(s.domain.smas.slots_in_use()
               for s in multi.systems) == len(apps)


def test_single_domain_overflows_at_14():
    sim, machine, multi, _ = build(num_domains=1)
    for i in range(MAX_UPROCESSES):
        multi.add_app(memcached_app(f"app{i}"))
    with pytest.raises(RuntimeError):
        multi.add_app(memcached_app("overflow"))


def test_requests_routed_to_hosting_domain():
    sim, _, multi, rngs = build()
    a = memcached_app("a")
    b = memcached_app("b")
    sys_a = multi.add_app(a, domain_index=0)
    sys_b = multi.add_app(b, domain_index=1)
    multi.start()
    OpenLoopSource(sim, a, multi.submit, 0.2, ConstantService(1000),
                   rngs.stream("a"))
    OpenLoopSource(sim, b, multi.submit, 0.2, ConstantService(1000),
                   rngs.stream("b"))
    sim.run(until=5 * MS)
    assert a.completed.value > 0
    assert b.completed.value > 0
    # The work landed on the right domains' cores.
    rep_a = sys_a.report()
    rep_b = sys_b.report()
    assert rep_a.buckets.get("app:a", 0) > 0
    assert rep_a.buckets.get("app:b", 0) == 0
    assert rep_b.buckets.get("app:b", 0) > 0


def test_aggregate_report():
    sim, _, multi, rngs = build()
    a = memcached_app("a")
    multi.add_app(a, domain_index=0)
    multi.add_app(memcached_app("b"), domain_index=1)
    multi.start()
    OpenLoopSource(sim, a, multi.submit, 0.3, ConstantService(1000),
                   rngs.stream("a"))
    multi.begin_measurement()
    sim.run(until=5 * MS)
    report = multi.report()
    assert report.num_worker_cores == 4
    assert report.completed["a"] == a.completed.value
    assert sum(report.buckets.values()) == \
        report.elapsed_ns * report.num_worker_cores


def test_validation():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)
    with pytest.raises(ValueError):
        MultiDomainVessel(sim, machine, RngStreams(0), 0)
    with pytest.raises(ValueError):
        MultiDomainVessel(sim, machine, RngStreams(0), 5,
                          worker_cores=machine.cores[1:])
