"""Integration tests for the VESSEL scheduler system."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app, UsrServiceSampler
from repro.workloads.synthetic import ConstantService


def build(num_workers=4, apps=("memcached", "linpack"), rate=1.0,
          sim_ms=10, seed=1, service=None):
    sim = Simulator()
    machine = Machine(sim, CostModel(), num_workers + 1)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    mc = lp = None
    if "memcached" in apps:
        mc = memcached_app()
        system.add_app(mc)
    if "linpack" in apps:
        lp = linpack_app()
        system.add_app(lp)
    system.start()
    if mc is not None:
        sampler = service or UsrServiceSampler(rngs.stream("svc"))
        OpenLoopSource(sim, mc, system.submit, rate, sampler,
                       rngs.stream("arrivals"))
    sim.run(until=sim_ms * MS)
    return sim, machine, system, mc, lp


def test_all_offered_requests_complete_at_low_load():
    _, _, system, mc, _ = build(rate=0.5)
    assert mc.completed.value > 0
    # open queue should be short at 12.5% load
    assert len(mc.queue) < 5
    assert mc.completed.value >= mc.offered.value - 5


def test_latency_close_to_service_time_at_low_load():
    _, _, system, mc, _ = build(rate=0.3)
    assert mc.latency.mean_us() < 3.0
    assert mc.latency.percentile_us(99.9) < 10.0


def test_batch_app_soaks_idle_cores():
    _, _, system, _, lp = build(rate=0.5, sim_ms=10)
    report = system.report()
    # ~0.5 cores go to memcached; most of the other 3.5 go to linpack
    assert report.useful_ns["linpack"] > 2.5 * report.elapsed_ns


def test_no_batch_app_leaves_cores_idle():
    _, _, system, mc, _ = build(apps=("memcached",), rate=0.5)
    report = system.report()
    assert report.buckets.get("idle", 0) > 0


def test_accounting_conserved():
    _, machine, system, _, _ = build(rate=2.0, sim_ms=10)
    report = system.report()
    total = sum(report.buckets.values())
    assert total == report.elapsed_ns * report.num_worker_cores


def test_preemptions_happen_when_be_occupies_cores():
    _, _, system, _, _ = build(rate=2.0, sim_ms=10)
    assert system.preemptions > 0
    assert system.switcher.preempt_switches > 0


def test_pkru_always_matches_running_task():
    sim, machine, system, mc, lp = build(rate=2.0, sim_ms=5)
    pipe = system.domain.smas.pipe
    for core in system.worker_cores:
        task = pipe.cpuid_to_task.get(core.id)
        if task is not None and core.category.startswith("app"):
            assert core.pkru.value == task.uproc.pkru().value


def test_waste_fraction_is_small():
    _, _, system, _, _ = build(rate=2.0, sim_ms=15)
    report = system.report()
    assert report.waste_fraction() < 0.12  # paper: ~6.6% decline


def test_dense_apps_share_one_core_fairly():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)
    rngs = RngStreams(3)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    apps = []
    for i in range(4):
        app = memcached_app(f"mc{i}")
        system.add_app(app)
        apps.append(app)
    system.start()
    for i, app in enumerate(apps):
        OpenLoopSource(sim, app, system.submit, 0.15,
                       ConstantService(1000), rngs.stream(f"arr{i}"))
    sim.run(until=20 * MS)
    counts = [app.completed.value for app in apps]
    assert min(counts) > 0.7 * max(counts)  # no app starved
    for app in apps:
        assert app.latency.percentile_us(99) < 60


def test_rotation_quantum_prevents_hogging():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)
    rngs = RngStreams(4)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    hog = memcached_app("hog")
    meek = memcached_app("meek")
    system.add_app(hog)
    system.add_app(meek)
    system.start()
    OpenLoopSource(sim, hog, system.submit, 0.9, ConstantService(1000),
                   rngs.stream("hog"))
    OpenLoopSource(sim, meek, system.submit, 0.05, ConstantService(1000),
                   rngs.stream("meek"))
    sim.run(until=20 * MS)
    assert meek.completed.value > 0
    assert meek.latency.percentile_us(99) < 100
    assert system.rotations > 0


def test_start_twice_rejected():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)
    system = VesselSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    system.add_app(linpack_app())
    system.start()
    with pytest.raises(RuntimeError):
        system.start()


def test_duplicate_app_name_rejected():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)
    system = VesselSystem(sim, machine, RngStreams(0),
                          worker_cores=machine.cores[1:])
    system.add_app(memcached_app("x"))
    with pytest.raises(ValueError):
        system.add_app(memcached_app("x"))


def test_uintr_counters_advance():
    sim, machine, system, _, _ = build(rate=2.0, sim_ms=5)
    assert machine.uintr.sent > 0
    assert machine.uintr.delivered > 0


def test_suspend_resume_batch_app():
    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)
    rngs = RngStreams(5)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    lp = linpack_app()
    system.add_app(lp)
    system.start()
    sim.run(until=2 * MS)
    useful_before = lp.useful_ns
    system.suspend_batch_app("linpack")
    sim.run(until=4 * MS)
    suspended_gain = lp.useful_ns - useful_before
    system.resume_batch_app("linpack")
    sim.run(until=6 * MS)
    resumed_gain = lp.useful_ns - useful_before - suspended_gain
    assert suspended_gain < 0.05 * (2 * MS) * 2  # nearly nothing
    assert resumed_gain > 1.5 * MS  # both cores working again
