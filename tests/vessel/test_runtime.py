"""Tests for the VESSEL runtime: syscall proxying and access control."""

import pytest

from repro.hardware.mpk import Permission
from repro.vessel.runtime import SyscallDenied, VesselRuntime


@pytest.fixture
def runtime(domain):
    return VesselRuntime(domain)


def test_privileged_vector_populated(runtime, domain):
    for name in ("park", "open", "close", "read", "mmap", "dlopen",
                 "pthread_create"):
        assert name in domain.smas.pipe.func_vector


def test_open_read_close_roundtrip(runtime, two_uprocs):
    a, _ = two_uprocs
    ufd = runtime.sys_open(a, "/data/users.db")
    description = runtime.sys_read(a, ufd)
    assert description.path == "/data/users.db"
    assert description.owner_label == "app-a"
    runtime.sys_close(a, ufd)
    with pytest.raises(SyscallDenied):
        runtime.sys_read(a, ufd)


def test_descriptor_bruteforce_blocked(runtime, two_uprocs):
    """The §5.2.4 security scenario: uProcess B probing A's descriptors."""
    a, b = two_uprocs
    ufd = runtime.sys_open(a, "/private/keys")
    for probe in range(ufd + 4):
        with pytest.raises(SyscallDenied):
            runtime.sys_read(b, probe)
    assert runtime.denied_syscalls >= ufd + 4


def test_descriptor_survives_migration(runtime, two_uprocs):
    """The §5.2.4 correctness scenario: A's descriptors stay valid no
    matter which kProcess A is currently scheduled inside, because the
    runtime owns them."""
    a, _ = two_uprocs
    ufd = runtime.sys_open(a, "/log")
    # Simulate A migrating between backing kProcesses: the runtime map
    # is keyed by the uProcess, so the descriptor still resolves.
    a.boot_kprocess = None
    assert runtime.sys_read(a, ufd).path == "/log"


def test_close_foreign_ufd_denied(runtime, two_uprocs):
    a, b = two_uprocs
    ufd = runtime.sys_open(a, "/x")
    with pytest.raises(SyscallDenied):
        runtime.sys_close(b, ufd)
    assert runtime.sys_read(a, ufd) is not None


def test_mmap_exec_prohibited(runtime, two_uprocs):
    a, _ = two_uprocs
    with pytest.raises(SyscallDenied):
        runtime.sys_mmap(a, 4096, Permission.rx())


def test_mmap_rw_allocates_from_heap(runtime, two_uprocs):
    a, _ = two_uprocs
    addr = runtime.sys_mmap(a, 8192)
    assert a.heap.owns(addr)


def test_dlopen_goes_through_inspection(runtime, two_uprocs):
    from repro.uprocess.loader import CodeInspectionError, ProgramImage
    a, _ = two_uprocs
    with pytest.raises(CodeInspectionError):
        runtime.sys_dlopen(a, ProgramImage("evil", instructions=["WRPKRU"]))
    segments = runtime.sys_dlopen(a, ProgramImage("fine"))
    assert segments.text_addr > 0


def test_pthread_create_allocates_thread(runtime, two_uprocs):
    a, _ = two_uprocs
    thread = runtime.pthread_create(a, "worker")
    assert thread.uproc is a
    assert thread in a.threads


def test_pthread_create_on_dead_uprocess_denied(runtime, two_uprocs):
    a, _ = two_uprocs
    a.terminate()
    with pytest.raises(SyscallDenied):
        runtime.pthread_create(a)


def test_syscalls_counted(runtime, two_uprocs):
    a, _ = two_uprocs
    before = runtime.proxied_syscalls
    runtime.sys_open(a, "/x")
    assert runtime.proxied_syscalls == before + 1


def test_denials_charged_as_deny_ops(runtime, two_uprocs, sim):
    from repro.obs.ledger import OpLedger
    runtime.ledger = OpLedger(sim=sim)
    a, b = two_uprocs
    ufd = runtime.sys_open(a, "/private")
    with pytest.raises(SyscallDenied):
        runtime.sys_read(b, ufd)
    with pytest.raises(SyscallDenied):
        runtime.sys_close(b, ufd)
    with pytest.raises(SyscallDenied):
        runtime.sys_mmap(a, 4096, Permission.rx())
    b.terminate()
    with pytest.raises(SyscallDenied):
        runtime.pthread_create(b)
    ops = runtime.ledger.op_counts(domain="vessel")
    assert ops["deny:read"] == 1
    assert ops["deny:close"] == 1
    assert ops["deny:mmap"] == 1
    assert ops["deny:pthread_create"] == 1


def test_dlopen_rejection_counted_as_denial(runtime, two_uprocs, sim):
    from repro.obs.ledger import OpLedger
    from repro.uprocess.loader import CodeInspectionError, ProgramImage
    runtime.ledger = OpLedger(sim=sim)
    a, _ = two_uprocs
    with pytest.raises(CodeInspectionError):
        runtime.sys_dlopen(a, ProgramImage("evil", instructions=["WRPKRU"]))
    assert runtime.ledger.op_counts(domain="vessel")["deny:dlopen"] == 1


def test_sys_close_releases_backing_kernel_fd(runtime, two_uprocs):
    a, _ = two_uprocs
    ufd = runtime.sys_open(a, "/data")
    kfd = runtime._kernel_fds[a][ufd]
    assert runtime.kprocess.fdtable.lookup(kfd) is not None
    runtime.sys_close(a, ufd)
    # Closing the uFD must also close the proxied kernel descriptor —
    # otherwise the Manager's fd table grows without bound.
    assert runtime.kprocess.fdtable.lookup(kfd) is None
    assert ufd not in runtime._kernel_fds.get(a, {})


def test_reap_closes_leftover_kernel_fds(runtime, domain, two_uprocs):
    a, _ = two_uprocs
    ufds = [runtime.sys_open(a, f"/f{i}") for i in range(3)]
    kfds = [runtime._kernel_fds[a][ufd] for ufd in ufds]
    domain.reap(a)
    assert not a.alive
    assert a not in runtime._kernel_fds
    for kfd in kfds:
        assert runtime.kprocess.fdtable.lookup(kfd) is None


def test_invoke_through_call_gate(runtime, domain, installed, machine):
    """End to end: app thread invokes the proxied open() via the gate."""
    thread_a, _ = installed
    ufd = domain.gate.invoke(machine.cores[0], thread_a, "open",
                             thread_a.uproc, "/gate/file")
    assert thread_a.uproc.lookup_fd(ufd).path == "/gate/file"
    # and the PKRU is back to the app's
    assert machine.cores[0].pkru.value == thread_a.uproc.pkru().value
