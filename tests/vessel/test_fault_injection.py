"""Fault injection and app termination under load.

The §4.3/§5.1 story end to end: kill or crash an application while the
full scheduler is running and verify the blast radius is exactly one
uProcess — the machine keeps scheduling, the other tenants keep their
throughput, and the slot is reusable.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app
from repro.workloads.synthetic import ExponentialService


def build(n_lapps=2, workers=4, rate=0.6, seed=3):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    apps = [memcached_app(f"mc{i}") for i in range(n_lapps)]
    for app in apps:
        system.add_app(app)
    batch = linpack_app()
    system.add_app(batch)
    system.start()
    for i, app in enumerate(apps):
        OpenLoopSource(sim, app, system.submit, rate,
                       ExponentialService(1000, rngs.stream(f"s{i}")),
                       rngs.stream(f"a{i}"))
    return sim, machine, system, apps, batch


def test_remove_app_mid_run_keeps_system_alive():
    sim, machine, system, apps, batch = build()
    sim.run(until=5 * MS)
    removed = system.remove_app("mc0")
    assert not removed.queue
    before_mc1 = apps[1].completed.value
    sim.run(until=12 * MS)
    # The survivor keeps making progress; the dead app does not.
    assert apps[1].completed.value > before_mc1
    assert apps[0].completed.value <= before_mc1 + len(apps[0].queue) + 1
    assert not apps[0].queue


def test_remove_app_releases_slot_for_new_tenant():
    sim, machine, system, apps, _ = build()
    sim.run(until=3 * MS)
    in_use_before = system.domain.smas.slots_in_use()
    system.remove_app("mc0")
    assert system.domain.smas.slots_in_use() == in_use_before - 1
    newcomer = memcached_app("newcomer")
    system.add_app(newcomer)  # reuses the freed slot
    sim.run(until=5 * MS)
    assert any(u.name == "newcomer" for u in system.domain.uprocs)


def test_remove_unknown_app_rejected():
    _, _, system, _, _ = build()
    with pytest.raises(KeyError):
        system.remove_app("ghost")


def test_inject_fault_kills_exactly_one_uproc():
    sim, machine, system, apps, batch = build(rate=1.2)
    victim_core = None
    deadline = 5 * MS
    while victim_core is None and deadline < 20 * MS:
        sim.run(until=deadline)
        for cs in system._cores.values():
            if cs.kind == "L" and cs.thread is not None \
                    and cs.thread.payload is apps[0]:
                victim_core = cs.core.id
                break
        deadline += MS // 5
    assert victim_core is not None, "mc0 never observed on-core"
    condemned = system.inject_fault(victim_core)
    assert condemned is apps[0]
    uprocs = {u.name: u for u in system.domain.uprocs}
    # A contained crash fully reaps the victim, which drops it from the
    # domain roster; the survivors stay.
    assert "mc0" not in uprocs
    assert uprocs["mc1"].alive
    assert uprocs["linpack"].alive
    # System continues scheduling the survivors.
    before = apps[1].completed.value
    sim.run(until=12 * MS)
    assert apps[1].completed.value > before
    assert batch.useful_ns > 0


def test_inject_fault_on_idle_core_is_noop():
    sim, machine, system, apps, _ = build(rate=0.0)
    sim.run(until=1 * MS)
    idle = next(cs.core.id for cs in system._cores.values()
                if cs.kind in (None, "B"))
    # Fault on a core running the batch app kills the batch app; fault on
    # a truly idle core returns None.  Either way no latency app dies.
    system.inject_fault(idle)
    uprocs = {u.name: u for u in system.domain.uprocs}
    assert uprocs["mc0"].alive and uprocs["mc1"].alive


def test_accounting_still_conserved_after_removal():
    sim, machine, system, apps, _ = build()
    sim.at(4 * MS, lambda: system.remove_app("mc0"))
    sim.run(until=10 * MS)
    report = system.report()
    assert sum(report.buckets.values()) == \
        report.elapsed_ns * report.num_worker_cores


def test_faulted_threads_never_scheduled_again():
    sim, machine, system, apps, _ = build()
    sim.run(until=4 * MS)
    system.remove_app("mc0")
    dead_threads = [t for t in system.domain.smas.pipe.cpuid_to_task.values()
                    if t is not None and t.uproc.name == "mc0"]
    sim.run(until=10 * MS)
    from repro.uprocess.threads import UThreadState
    for cs in system._cores.values():
        if cs.thread is not None:
            assert cs.thread.uproc.alive
            assert cs.thread.state is not UThreadState.DEAD
