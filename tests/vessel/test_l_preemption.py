"""§4.4 head-of-line blocking: long requests must not wreck short ones.

Memcached (~1 µs requests) shares ONE core with Silo (20-280 µs
requests).  Without mid-request preemption a single Silo transaction
blocks every queued memcached request for up to 280 µs; VESSEL's
scheduler preempts the long request after its quantum (a 0.36 µs
Uintr-priced switch), so memcached's tail stays bounded.
"""


from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.memcached import memcached_app, UsrServiceSampler
from repro.workloads.silo import silo_app, silo_service_sampler


def build(l_preempt_quantum_ns, sim_ms=40, seed=5):
    sim = Simulator()
    machine = Machine(sim, CostModel(), 2)  # one worker core
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:],
                          l_preempt_quantum_ns=l_preempt_quantum_ns)
    mc = memcached_app()
    db = silo_app()
    system.add_app(mc)
    system.add_app(db)
    system.start()
    OpenLoopSource(sim, mc, system.submit, 0.25,
                   UsrServiceSampler(rngs.stream("mc-svc")),
                   rngs.stream("mc-arr"))
    OpenLoopSource(sim, db, system.submit, 0.012,
                   silo_service_sampler(rngs.stream("db-svc")),
                   rngs.stream("db-arr"))
    sim.run(until=sim_ms * MS)
    return system, mc, db


def test_preemption_bounds_memcached_tail():
    system, mc, db = build(l_preempt_quantum_ns=20_000)
    # Without preemption a 280 us Silo request would show up directly in
    # memcached's P999; with it the tail is bounded near the quantum.
    assert mc.latency.percentile_us(99.9) < 80
    assert system.preemptions > 0
    # Silo still completes (preempted requests resume).
    assert db.completed.value > 0


def test_without_preemption_tail_is_unbounded():
    _, mc, _ = build(l_preempt_quantum_ns=10**12)
    assert mc.latency.percentile_us(99.9) > 100


def test_preemption_preserves_silo_work():
    """Suspend/resume conserves the long requests' service time."""
    system, mc, db = build(l_preempt_quantum_ns=20_000)
    # Silo latency includes its own service plus preemption slices, but
    # every request eventually finishes: no unbounded backlog.
    assert len(db.queue) < 12
    assert db.latency.percentile_us(50) > 20  # >= its median service


def test_short_requests_never_preempted():
    system, mc, db = build(l_preempt_quantum_ns=20_000)
    # A ~1 us memcached request can never hit the 20 us quantum, so the
    # preemption count is bounded by silo's (resumable) long requests.
    assert system.preemptions < 4 * (db.completed.value + len(db.queue) + 1) \
        + mc.completed.value * 0.01 + 50
