"""Tests for the wall-clock benchmark harness (repro.perf.bench)."""

import json
import os

from repro.perf import bench


def test_engine_churn_kernel_is_deterministic():
    events_a, unit = bench.KERNELS["engine-churn"](seed=7)
    events_b, _ = bench.KERNELS["engine-churn"](seed=7)
    assert unit == "events"
    assert events_a == events_b > 0


def test_check_regressions_flags_only_beyond_tolerance():
    reference = {"kernels": {"a": {"normalized": 1.0},
                             "b": {"normalized": 1.0}}}
    current = {"kernels": {"a": {"normalized": 1.2},    # within 25 %
                           "b": {"normalized": 1.3},    # beyond
                           "c": {"normalized": 9.9}}}   # no reference
    failures = bench.check_regressions(current, reference, tolerance=0.25)
    assert len(failures) == 1
    assert failures[0].startswith("b:")


def test_latest_record_prefers_dated_and_respects_exclude(tmp_path):
    baseline = tmp_path / bench.BASELINE_NAME
    dated_old = tmp_path / "BENCH_2026-01-01.json"
    dated_new = tmp_path / "BENCH_2026-02-01.json"
    for path in (baseline, dated_old, dated_new):
        path.write_text("{}")
    assert bench.latest_record(str(tmp_path)) == str(dated_new)
    # A bench run must not self-compare against the file it just wrote.
    assert bench.latest_record(str(tmp_path), exclude=str(dated_new)) \
        == str(dated_old)
    assert bench.latest_record(str(tmp_path), exclude=str(dated_old)) \
        == str(dated_new)


def test_latest_record_falls_back_to_baseline(tmp_path):
    assert bench.latest_record(str(tmp_path)) is None
    (tmp_path / bench.BASELINE_NAME).write_text("{}")
    assert bench.latest_record(str(tmp_path)) \
        == str(tmp_path / bench.BASELINE_NAME)


def test_main_smoke_writes_record(tmp_path, monkeypatch):
    """End-to-end: a --smoke run writes a well-formed BENCH json."""
    out = tmp_path / "BENCH_test.json"
    # Shrink the kernels so the test stays fast.
    monkeypatch.setitem(bench.KERNELS, "engine-churn",
                        lambda seed: (123, "events"))
    monkeypatch.setattr(bench, "SMOKE_KERNELS", ("engine-churn",))
    code = bench.main(["--smoke", "--output", str(out), "--seed", "1"])
    assert code == 0
    record = json.loads(out.read_text())
    assert record["seed"] == 1
    assert record["kernels"]["engine-churn"]["events"] == 123
    # The stubbed kernel returns instantly; normalized rounds to ~0.
    assert record["kernels"]["engine-churn"]["normalized"] >= 0
    assert "suite" not in record  # --smoke skips the suite kernel


def test_results_dir_points_into_repo():
    assert os.path.basename(bench.RESULTS_DIR) == "results"
    assert os.path.basename(os.path.dirname(bench.RESULTS_DIR)) \
        == "benchmarks"
