"""Tests for the multiprocessing fan-out (repro.perf.parallel).

The contract under test is *byte-identical determinism*: any --jobs
value must produce exactly the bytes (and report values) of the serial
run, because every simulation is hermetic and results merge in task
order.
"""

import io

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    run_colocation,
    run_colocation_batch,
)
from repro.perf.parallel import available_jobs, parallel_map


def _square(x):
    return x * x


def test_available_jobs_is_positive():
    assert available_jobs() >= 1


def test_parallel_map_preserves_order_in_process():
    assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_preserves_order_with_pool():
    assert parallel_map(_square, list(range(10)), jobs=2) \
        == [x * x for x in range(10)]


def test_parallel_map_empty():
    assert parallel_map(_square, [], jobs=4) == []


# ----------------------------------------------------------------------
# run_colocation_batch: parallel == serial, bit for bit
# ----------------------------------------------------------------------
_SMALL = ExperimentConfig(seed=42, sim_ms=8, warmup_ms=2)
_TASKS = [
    ("vessel", _SMALL,
     dict(l_specs=[("memcached", "memcached", 1.0)], b_specs=("linpack",))),
    ("caladan", _SMALL,
     dict(l_specs=[("memcached", "memcached", 1.0)], b_specs=("linpack",))),
]


def _report_key(report):
    return (report.system, report.elapsed_ns, report.completed,
            report.buckets, report.latency, report.useful_ns,
            report.events_fired)


def test_batch_matches_serial_loop():
    serial = [run_colocation(name, cfg, **kwargs)
              for name, cfg, kwargs in _TASKS]
    batched = run_colocation_batch(_TASKS, jobs=2)
    assert [_report_key(r) for r in batched] \
        == [_report_key(r) for r in serial]


def test_batch_jobs_value_does_not_change_reports():
    one = run_colocation_batch(_TASKS, jobs=1)
    two = run_colocation_batch(_TASKS, jobs=2)
    assert [_report_key(r) for r in one] == [_report_key(r) for r in two]


# ----------------------------------------------------------------------
# run_experiments: --jobs N stdout is byte-identical to --jobs 1
# ----------------------------------------------------------------------
@pytest.mark.parametrize("selected", [["tab1", "micro"], ["fig09"]])
def test_run_experiments_jobs_byte_identical(selected):
    """Both fan-out shapes: several experiments (process-per-experiment)
    and a single experiment (inner sweep fan-out via cfg.jobs)."""
    from repro.__main__ import run_experiments

    cfg = ExperimentConfig(seed=42, sim_ms=8, warmup_ms=2)
    serial = io.StringIO()
    run_experiments(selected, cfg, jobs=1, stream=serial)
    parallel = io.StringIO()
    run_experiments(selected, cfg, jobs=3, stream=parallel)
    assert parallel.getvalue() == serial.getvalue()
    assert serial.getvalue()  # sanity: the experiments printed something
