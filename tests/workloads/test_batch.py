"""Tests for the batch workloads: linpack, membench, objcopy."""

import random

import pytest

from repro.hardware.cache import CacheSim
from repro.hardware.machine import Machine
from repro.hardware.membus import MemoryBus
from repro.workloads.linpack import linpack_app
from repro.workloads.membench import membench_app
from repro.workloads.objcopy import ObjCopyApp


# ----------------------------------------------------------------------
# Linpack
# ----------------------------------------------------------------------
def test_linpack_chunk_accrues_on_completion(sim, costs):
    machine = Machine(sim, costs, 1)
    app = linpack_app(chunk_ns=50_000)
    app.batch_work.start(machine.cores[0])
    sim.run()
    assert app.useful_ns == 50_000


def test_linpack_preempt_credits_partial(sim, costs):
    machine = Machine(sim, costs, 1)
    app = linpack_app(chunk_ns=100_000)
    run = app.batch_work.start(machine.cores[0])
    sim.run(until=30_000)
    run.preempt()
    assert app.useful_ns == 30_000
    assert not machine.cores[0].busy


def test_linpack_preempt_twice_safe(sim, costs):
    machine = Machine(sim, costs, 1)
    app = linpack_app()
    run = app.batch_work.start(machine.cores[0])
    sim.run(until=10)
    run.preempt()
    run.preempt()
    assert app.useful_ns == 10


def test_linpack_invalid_chunk():
    with pytest.raises(ValueError):
        linpack_app(chunk_ns=0)


# ----------------------------------------------------------------------
# membench
# ----------------------------------------------------------------------
def test_membench_iteration_completes(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus, phase_bytes=120_000,
                       demand_gbps=12.0, compute_ns=5_000)
    done = []
    app.batch_work.start(machine.cores[0], on_done=lambda: done.append(
        sim.now))
    sim.run()
    # memory: 120000/12 = 10 us; compute 5 us
    assert done[0] == pytest.approx(15_000, rel=0.02)
    assert app.useful_ns == pytest.approx(15_000, rel=0.02)
    assert app.batch_work.iterations == 1


def test_membench_core_busy_during_stall(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus)
    app.batch_work.start(machine.cores[0])
    sim.run(until=5_000)
    assert machine.cores[0].busy
    machine.cores[0].settle()
    assert machine.cores[0].acct.buckets["app:membench"] == 5_000


def test_membench_preempt_resume_conserves_work(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus, phase_bytes=120_000,
                       demand_gbps=12.0, compute_ns=5_000)
    work = app.batch_work
    run = work.start(machine.cores[0])
    sim.run(until=4_000)
    run.preempt()
    credited_partial = app.useful_ns
    assert credited_partial == pytest.approx(4_000, rel=0.1)
    # Resume: the remainder completes; total equals one full iteration.
    done = []
    work.start(machine.cores[0], on_done=lambda: done.append(sim.now))
    sim.run()
    assert done
    assert app.useful_ns == pytest.approx(work.iteration_worth_ns(), rel=0.02)


def test_membench_preempt_during_compute(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    app = membench_app(machine.membus, phase_bytes=12_000,
                       demand_gbps=12.0, compute_ns=20_000)
    run = app.batch_work.start(machine.cores[0])
    sim.run(until=6_000)  # 1 us memory + 5 us into compute
    run.preempt()
    assert app.useful_ns == pytest.approx(6_000, rel=0.05)
    assert len(app.batch_work._interrupted) == 1


def test_membench_solo_gbps():
    sim_ = __import__("repro.sim.engine", fromlist=["Simulator"]).Simulator()
    bus = MemoryBus(sim_, 40.0)
    app = membench_app(bus, phase_bytes=120_000, demand_gbps=12.0,
                       compute_ns=10_000)
    # memory 10 us at 12 GB/s, compute 10 us -> average 6 GB/s
    assert app.batch_work.solo_gbps() == pytest.approx(6.0)


def test_membench_throttled_by_bus_cap(sim, costs):
    machine = Machine(sim, costs, 1, membus_gbps=40.0)
    machine.membus.set_tag_cap("membench", 6.0)
    app = membench_app(machine.membus, phase_bytes=120_000,
                       demand_gbps=12.0, compute_ns=0)
    done = []
    app.batch_work.start(machine.cores[0], on_done=lambda: done.append(
        sim.now))
    sim.run()
    assert done[0] == pytest.approx(20_000, rel=0.02)  # half rate -> 2x time


def test_membench_invalid_params(sim, costs):
    machine = Machine(sim, costs, 1)
    with pytest.raises(ValueError):
        membench_app(machine.membus, phase_bytes=0)


# ----------------------------------------------------------------------
# objcopy
# ----------------------------------------------------------------------
def test_objcopy_op_costs_scale_with_misses():
    cache = CacheSim(64 * 1024, ways=8, line_bytes=64)
    app = ObjCopyApp("a", ws_base=0, ws_size=32 * 1024, object_bytes=1024)
    rng = random.Random(0)
    first_cost, first_misses = app.run_op(cache, rng)
    assert first_misses > 0
    assert first_cost == app.cpu_per_op_ns + first_misses * \
        app.miss_penalty_ns
    # after warming, ops get cheaper
    for _ in range(200):
        app.run_op(cache, rng)
    warm_cost, warm_misses = app.run_op(cache, rng)
    assert warm_cost <= first_cost


def test_objcopy_tracks_totals():
    cache = CacheSim(64 * 1024, ways=8, line_bytes=64)
    app = ObjCopyApp("a", 0, 16 * 1024)
    rng = random.Random(1)
    for _ in range(10):
        app.run_op(cache, rng)
    assert app.ops == 10
    assert app.total_ns >= 10 * app.cpu_per_op_ns
    assert app.mean_op_ns() >= app.cpu_per_op_ns


def test_objcopy_ws_validation():
    with pytest.raises(ValueError):
        ObjCopyApp("a", 0, 1024, object_bytes=1024)
