"""Tests for apps, requests, and the open-loop sources."""

import pytest

from repro.sim.units import MS
from repro.workloads.base import (
    App,
    AppKind,
    BurstySource,
    OpenLoopSource,
    Request,
)
from repro.workloads.synthetic import ConstantService


def make_app(kind=AppKind.LATENCY):
    return App("test", kind, mean_service_ns=1000)


def test_enqueue_and_pop_fifo():
    app = make_app()
    r1 = Request(app, 0, 100)
    r2 = Request(app, 5, 100)
    app.enqueue(r1)
    app.enqueue(r2)
    assert app.pop_request() is r1
    assert app.pop_request() is r2
    assert app.pop_request() is None


def test_oldest_wait_tracks_head():
    app = make_app()
    app.enqueue(Request(app, 100, 50))
    assert app.oldest_wait_ns(250) == 150
    assert make_app().oldest_wait_ns(250) == 0


def test_complete_records_latency():
    app = make_app()
    request = Request(app, 100, 50)
    app.complete(request, 400)
    assert app.completed.value == 1
    assert app.latency.samples == [300]


def test_reset_measurements_preserves_queue():
    app = make_app()
    app.enqueue(Request(app, 0, 10))
    app.complete(Request(app, 0, 10), 100)
    app.reset_measurements()
    assert app.completed.value == 0
    assert app.latency.count == 0
    assert len(app.queue) == 1  # in-flight state kept


def test_open_loop_rate_approximately_respected(sim, rngs):
    app = make_app()
    submitted = []
    OpenLoopSource(sim, app, submitted.append, rate_mops=2.0,
                   service_sampler=ConstantService(500),
                   rng=rngs.stream("arr"))
    sim.run(until=10 * MS)
    # 2 Mops for 10 ms -> ~20000 requests
    assert len(submitted) == pytest.approx(20000, rel=0.1)


def test_open_loop_zero_rate_generates_nothing(sim, rngs):
    app = make_app()
    submitted = []
    OpenLoopSource(sim, app, submitted.append, 0.0,
                   ConstantService(500), rngs.stream("arr"))
    sim.run(until=1 * MS)
    assert submitted == []


def test_open_loop_stop_ns(sim, rngs):
    app = make_app()
    submitted = []
    OpenLoopSource(sim, app, submitted.append, 1.0,
                   ConstantService(500), rngs.stream("arr"),
                   stop_ns=1 * MS)
    sim.run(until=5 * MS)
    assert all(r.arrival_ns <= 1 * MS for r in submitted)


def test_open_loop_negative_rate_rejected(sim, rngs):
    with pytest.raises(ValueError):
        OpenLoopSource(sim, make_app(), lambda r: None, -1.0,
                       ConstantService(500), rngs.stream("arr"))


def test_connection_ids_cycle(sim, rngs):
    app = make_app()
    submitted = []
    OpenLoopSource(sim, app, submitted.append, 2.0,
                   ConstantService(500), rngs.stream("arr"), connections=4)
    sim.run(until=1 * MS)
    assert {r.conn_id for r in submitted} == {0, 1, 2, 3}


def test_bursty_long_run_average_matches(sim, rngs):
    app = make_app()
    submitted = []
    BurstySource(sim, app, submitted.append, rate_mops=1.0,
                 service_sampler=ConstantService(500),
                 rng=rngs.stream("arr"), burst_factor=4.0)
    sim.run(until=80 * MS)
    assert len(submitted) == pytest.approx(80_000, rel=0.25)


def test_bursty_is_actually_bursty(sim, rngs):
    app = make_app()
    submitted = []
    BurstySource(sim, app, submitted.append, rate_mops=1.0,
                 service_sampler=ConstantService(500),
                 rng=rngs.stream("arr"), burst_factor=6.0)
    sim.run(until=40 * MS)
    # Coefficient of variation of per-window counts should exceed Poisson.
    window = MS // 2
    counts = {}
    for request in submitted:
        counts[request.arrival_ns // window] = counts.get(
            request.arrival_ns // window, 0) + 1
    values = list(counts.values())
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    assert var > 2.0 * mean  # Poisson would have var ~= mean


def test_bursty_burst_factor_validated(sim, rngs):
    with pytest.raises(ValueError):
        BurstySource(sim, make_app(), lambda r: None, 1.0,
                     ConstantService(500), rngs.stream("arr"),
                     burst_factor=0.5)


def test_request_latency_helper():
    request = Request(make_app(), arrival_ns=100, service_ns=10)
    assert request.latency_ns(350) == 250
