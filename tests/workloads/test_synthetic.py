"""Tests for service-time distributions."""

import math
import random

import pytest

from repro.workloads.synthetic import (
    BimodalService,
    ConstantService,
    ExponentialService,
    LognormalService,
)


def test_constant_exact():
    sampler = ConstantService(750)
    assert all(sampler() == 750 for _ in range(10))
    assert sampler.mean_ns == 750


def test_constant_rejects_nonpositive():
    with pytest.raises(ValueError):
        ConstantService(0)


def test_exponential_mean():
    sampler = ExponentialService(2000, random.Random(0))
    samples = [sampler() for _ in range(50_000)]
    assert sum(samples) / len(samples) == pytest.approx(2000, rel=0.05)


def test_exponential_never_below_one():
    sampler = ExponentialService(5, random.Random(1))
    assert min(sampler() for _ in range(10_000)) >= 1


def test_lognormal_median_and_mean():
    sampler = LognormalService(median_ns=20_000, sigma=0.854,
                               rng=random.Random(2))
    samples = sorted(sampler() for _ in range(50_000))
    median = samples[len(samples) // 2]
    assert median == pytest.approx(20_000, rel=0.05)
    analytic_mean = 20_000 * math.exp(0.854 ** 2 / 2)
    assert sum(samples) / len(samples) == pytest.approx(analytic_mean,
                                                        rel=0.1)


def test_lognormal_p999_matches_silo_spec():
    from repro.workloads.silo import silo_service_sampler
    sampler = silo_service_sampler(random.Random(3))
    samples = sorted(sampler() for _ in range(200_000))
    p999 = samples[int(len(samples) * 0.999)]
    assert p999 == pytest.approx(280_000, rel=0.12)  # paper: 280 us


def test_bimodal_mixture():
    sampler = BimodalService(1000, 10_000, 0.1, random.Random(4))
    samples = [sampler() for _ in range(20_000)]
    assert set(samples) == {1000, 10_000}
    slow_fraction = samples.count(10_000) / len(samples)
    assert slow_fraction == pytest.approx(0.1, abs=0.02)
    assert sampler.mean_ns == pytest.approx(1900)


def test_bimodal_fraction_validated():
    with pytest.raises(ValueError):
        BimodalService(1, 2, 1.5, random.Random(0))


def test_memcached_usr_mean_about_1us():
    from repro.workloads.memcached import UsrServiceSampler
    sampler = UsrServiceSampler(random.Random(5))
    samples = [sampler() for _ in range(50_000)]
    assert sum(samples) / len(samples) == pytest.approx(1000, rel=0.08)
