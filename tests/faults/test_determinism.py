"""Same seed + same plan must reproduce the run bit-for-bit.

This is the property that makes fault injection usable: a failure found
under chaos can be replayed exactly by re-running the plan, and the
ledger export doubles as the regression fingerprint.
"""

from repro.sim.units import MS
from repro.faults import FaultPlan
from repro.experiments.common import ExperimentConfig
from repro.experiments.fault_chaos import run_chaos


def _plan(seed):
    return (FaultPlan(seed=seed)
            .drop_uintr(0.3, at_ns=2 * MS)
            .delay_uintr(4_000, probability=0.2, at_ns=2 * MS)
            .crash("silo", at_ns=3 * MS)
            .stall_scheduler(at_ns=4 * MS))


def _run(seed=11):
    cfg = ExperimentConfig(num_workers=4, sim_ms=8, warmup_ms=2, seed=seed)
    report, system, injector, ledger = run_chaos(cfg, "vessel",
                                                 plan=_plan(seed))
    return report, system, injector, ledger


def test_same_seed_same_plan_is_byte_identical():
    report_a, system_a, injector_a, ledger_a = _run()
    report_b, system_b, injector_b, ledger_b = _run()

    # Ledger export: identical down to the byte.
    assert ledger_a.breakdown_table() == ledger_b.breakdown_table()
    # Injection decisions replayed exactly.
    assert injector_a.injected == injector_b.injected
    # Latency stats — and the raw sample streams behind them.
    assert report_a.latency == report_b.latency
    for app_a, app_b in zip(system_a.apps, system_b.apps):
        assert app_a.latency.samples == app_b.latency.samples
    # Scheduler and fallback activity.
    assert system_a.preemptions == system_b.preemptions
    assert system_a.fallback_retries == system_b.fallback_retries
    assert system_a.fallback_ipis == system_b.fallback_ipis
    assert report_a.fault_ops == report_b.fault_ops
    assert report_a.fallback_ops == report_b.fallback_ops


def test_different_seed_diverges():
    report_a, _, injector_a, _ = _run(seed=11)
    report_b, _, injector_b, _ = _run(seed=12)
    # Sanity check that the property above is not vacuous.
    assert (injector_a.injected != injector_b.injected
            or report_a.latency != report_b.latency)
