"""The acceptance matrix: each fault class contained with the machinery
on, and visibly breaking the run with it off (the ablation), proving the
containment mechanisms are load-bearing.
"""

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.uprocess.threads import UThreadState
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app
from repro.workloads.synthetic import ExponentialService


def build(workers=4, rate=0.6, seed=7, containment=True):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:],
                          containment=containment)
    apps = [memcached_app(f"mc{i}") for i in range(2)]
    for app in apps:
        system.add_app(app)
    batch = linpack_app()
    system.add_app(batch)
    system.start()
    for i, app in enumerate(apps):
        OpenLoopSource(sim, app, system.submit, rate,
                       ExponentialService(1000, rngs.stream(f"s{i}")),
                       rngs.stream(f"a{i}"))
    return sim, machine, system, apps, batch


def inject(system, plan):
    injector = FaultInjector(plan)
    injector.attach(system)
    return injector


# ----------------------------------------------------------------------
# Fault class (a): dropped Uintr deliveries
# ----------------------------------------------------------------------
def test_dropped_uintr_contained_by_watchdog():
    sim, machine, system, apps, _ = build()
    injector = inject(system, FaultPlan(seed=1).drop_uintr(1.0))
    sim.run(until=6 * MS)
    assert machine.uintr.dropped > 0
    # Escalation chain exercised: retry first, then the kernel IPI.
    assert system.fallback_retries > 0
    assert system.fallback_ipis > 0
    assert machine.ipi.sent == system.fallback_ipis
    # Both latency apps keep completing despite 100% notification loss.
    before = [app.completed.value for app in apps]
    assert all(b > 0 for b in before)
    sim.run(until=8 * MS)
    assert all(app.completed.value > b for app, b in zip(apps, before))
    assert injector.uncontained() == []


def test_dropped_uintr_breaks_without_containment():
    sim, machine, system, apps, _ = build(containment=False)
    inject(system, FaultPlan(seed=1).drop_uintr(1.0))
    sim.run(until=6 * MS)
    assert machine.uintr.dropped > 0
    assert system.fallback_ipis == 0
    # Every worker core ends up reserved for a preemption whose
    # notification never arrives: the switch limbo the watchdog exists
    # to resolve.  No latency request is ever served.
    limbo = [cs for cs in system._cores.values()
             if cs.kind == "switch" and not cs.core.busy
             and cs.batch_run is None]
    assert limbo
    assert all(app.completed.value == 0 for app in apps)


# ----------------------------------------------------------------------
# Fault class (b): MPK fault / crash inside a uThread
# ----------------------------------------------------------------------
def test_uthread_crash_contained_and_resources_reclaimed():
    sim, machine, system, apps, _ = build()
    uproc = system._apps["mc0"].uproc
    ufd = system.runtime.sys_open(uproc, "/data/db")
    kfd = system.runtime._kernel_fds[uproc][ufd]
    injector = inject(system, FaultPlan(seed=2).crash("mc0", at_ns=2 * MS))
    sim.run(until=3 * MS)
    assert injector.injected[FaultKind.CRASH_UTHREAD] == 1
    assert system.contained_crashes == 1
    # Everything the uProcess held is reclaimed: threads and fd map
    # (terminate), SMAS slot, pkey (revoked to 0), proxied kernel
    # descriptors, queued commands.
    assert "mc0" not in system._apps
    assert not uproc.alive
    assert not uproc.slot.in_use
    assert uproc.slot.data_region.pkey == 0
    assert not uproc.fd_map
    assert system.runtime.kprocess.fdtable.lookup(kfd) is None
    assert uproc not in system.runtime._kernel_fds
    for queue in system.domain.queues.queues.values():
        for command in queue._queue:
            assert command.payload is not uproc
            assert getattr(command.payload, "uproc", None) is not uproc
    # Co-located tenants are undisturbed.
    before = apps[1].completed.value
    sim.run(until=6 * MS)
    assert apps[1].completed.value > before
    assert injector.uncontained() == []


def test_uthread_crash_breaks_without_containment():
    sim, machine, system, apps, _ = build(containment=False)
    injector = inject(system, FaultPlan(seed=2).crash("mc0", at_ns=2 * MS))
    sim.run(until=4 * MS)
    assert injector.injected[FaultKind.CRASH_UTHREAD] == 1
    # The kernel's default SIGSEGV action killed the kProcess: the core
    # is lost and the slot leaks.
    assert any(core.wedged for core in machine.cores)
    assert system._apps["mc0"].uproc.slot.in_use
    assert system.contained_crashes == 0
    assert system.signals.killed >= 1
    assert injector.uncontained() != []


# ----------------------------------------------------------------------
# Fault class (c): non-cooperative (rogue) best-effort thread
# ----------------------------------------------------------------------
def test_rogue_thread_evicted_by_kernel_ipi():
    sim, machine, system, apps, _ = build()
    injector = inject(system,
                      FaultPlan(seed=3).rogue_thread("linpack", at_ns=1 * MS))
    sim.run(until=5 * MS)
    assert injector.injected[FaultKind.ROGUE_THREAD] == 1
    rogues = [t for t in system._apps["linpack"].threads if t.rogue]
    assert rogues
    # The rogue ignored its preemption commands, the watchdog escalated
    # to the kernel IPI, and the thread was evicted and destroyed.
    assert system.rogue_kills == 1
    assert all(t.state is UThreadState.DEAD for t in rogues)
    assert all(t.core_id is None for t in rogues)
    before = [app.completed.value for app in apps]
    sim.run(until=7 * MS)
    assert all(app.completed.value > b for app, b in zip(apps, before))
    assert injector.uncontained() == []


def test_rogue_thread_squats_core_without_containment():
    sim, machine, system, apps, _ = build(containment=False)
    injector = inject(system,
                      FaultPlan(seed=3).rogue_thread("linpack", at_ns=1 * MS))
    sim.run(until=5 * MS)
    assert injector.injected[FaultKind.ROGUE_THREAD] == 1
    rogues = [t for t in system._apps["linpack"].threads if t.rogue]
    assert rogues
    rogue = rogues[0]
    # No fallback path: the rogue holds its core for the rest of the run.
    assert system.rogue_kills == 0
    assert rogue.state is UThreadState.RUNNING
    assert rogue.core_id is not None
    assert system._cores[rogue.core_id].thread is rogue


# ----------------------------------------------------------------------
# Fault class (d): stalled scheduler core
# ----------------------------------------------------------------------
def test_scheduler_stall_restarted_by_heartbeat():
    sim, machine, system, apps, _ = build(rate=1.2)
    stall_at = 2 * MS + 7_000
    injector = inject(system, FaultPlan(seed=4).stall_scheduler(stall_at))
    sim.run(until=stall_at + 40_000)
    assert system._sched_stalled  # mid-outage, before the next heartbeat
    sim.run(until=stall_at + 2 * system.heartbeat_interval_ns)
    assert not system._sched_stalled
    assert system.sched_restarts >= 1
    before = [app.completed.value for app in apps]
    sim.run(until=6 * MS)
    assert all(app.completed.value > b for app, b in zip(apps, before))
    # The backlog built during the outage drains again.
    assert all(len(app.queue) < 100 for app in apps)
    assert injector.uncontained() == []


def test_scheduler_stall_starves_without_containment():
    sim, machine, system, apps, _ = build(rate=1.2, containment=False)
    injector = inject(system,
                      FaultPlan(seed=4).stall_scheduler(2 * MS + 7_000))
    sim.run(until=6 * MS)
    assert system._sched_stalled
    assert system.sched_restarts == 0
    # Arrivals keep landing but nothing rebalances: at this load a
    # single stuck server cannot keep up and the backlog diverges.
    assert any(len(app.queue) > 100 for app in apps)
    assert "scheduler core still stalled" in injector.uncontained()
