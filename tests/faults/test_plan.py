"""FaultPlan construction and identity."""

import pytest

from repro.faults import FaultKind, FaultPlan


def test_builders_are_fluent_and_ordered():
    plan = (FaultPlan(seed=7)
            .drop_uintr(0.1, at_ns=100)
            .delay_uintr(500, probability=0.5, at_ns=200)
            .crash("mc0", at_ns=300)
            .rogue_thread("linpack", at_ns=400)
            .stall_scheduler(at_ns=500))
    kinds = [spec.kind for spec in plan.specs]
    assert kinds == [FaultKind.DROP_UINTR, FaultKind.DELAY_UINTR,
                     FaultKind.CRASH_UTHREAD, FaultKind.ROGUE_THREAD,
                     FaultKind.STALL_SCHEDULER]
    assert plan.specs[2].app == "mc0"


def test_fingerprint_is_stable_and_discriminating():
    def make(seed, p):
        return FaultPlan(seed=seed).drop_uintr(p).crash("a", at_ns=10)

    assert make(1, 0.1).fingerprint() == make(1, 0.1).fingerprint()
    assert make(1, 0.1).fingerprint() != make(2, 0.1).fingerprint()
    assert make(1, 0.1).fingerprint() != make(1, 0.2).fingerprint()


def test_validation():
    with pytest.raises(ValueError):
        FaultPlan().drop_uintr(1.5)
    with pytest.raises(ValueError):
        FaultPlan().delay_uintr(0)
