"""Tests for the syscall layer."""

import pytest

from repro.hardware.mpk import AddressSpaceMap, Permission
from repro.kernel.kprocess import KProcess
from repro.kernel.syscalls import SyscallError, SyscallLayer


@pytest.fixture
def syscalls(costs):
    return SyscallLayer(costs)


@pytest.fixture
def proc():
    return KProcess("app")


def test_mmap_creates_region(syscalls, proc):
    region = syscalls.mmap(proc.aspace, 0x1000, 0x1000, Permission.rw(), "r")
    assert proc.aspace.find(0x1000) is region
    assert syscalls.counts["mmap"] == 1


def test_mmap_zero_size_rejected(syscalls, proc):
    with pytest.raises(SyscallError):
        syscalls.mmap(proc.aspace, 0x1000, 0, Permission.rw())


def test_munmap_removes(syscalls, proc):
    region = syscalls.mmap(proc.aspace, 0x1000, 0x1000, Permission.rw())
    syscalls.munmap(proc.aspace, region)
    assert proc.aspace.find(0x1000) is None


def test_mprotect_changes_perms(syscalls, proc):
    region = syscalls.mmap(proc.aspace, 0x1000, 0x1000, Permission.rw())
    syscalls.mprotect(proc.aspace, region, Permission.READ)
    assert region.perms == Permission.READ


def test_pkey_alloc_sequence(syscalls, proc):
    keys = [syscalls.pkey_alloc(proc.aspace) for _ in range(15)]
    assert keys == list(range(1, 16))


def test_pkey_exhaustion(syscalls, proc):
    for _ in range(15):
        syscalls.pkey_alloc(proc.aspace)
    with pytest.raises(SyscallError):
        syscalls.pkey_alloc(proc.aspace)


def test_pkey_free_allows_realloc(syscalls, proc):
    key = syscalls.pkey_alloc(proc.aspace)
    syscalls.pkey_free(proc.aspace, key)
    assert syscalls.pkey_alloc(proc.aspace) == key


def test_pkey_free_unallocated_rejected(syscalls, proc):
    with pytest.raises(SyscallError):
        syscalls.pkey_free(proc.aspace, 7)


def test_pkey_mprotect_requires_allocated_key(syscalls, proc):
    region = syscalls.mmap(proc.aspace, 0x1000, 0x1000, Permission.rw())
    with pytest.raises(SyscallError):
        syscalls.pkey_mprotect(proc.aspace, region, 5)
    key = syscalls.pkey_alloc(proc.aspace)
    syscalls.pkey_mprotect(proc.aspace, region, key)
    assert region.pkey == key


def test_pkeys_tracked_per_aspace(syscalls):
    a, b = AddressSpaceMap("a"), AddressSpaceMap("b")
    assert syscalls.pkey_alloc(a) == 1
    assert syscalls.pkey_alloc(b) == 1  # independent namespaces


def test_fork_copies_address_space(syscalls, proc):
    syscalls.mmap(proc.aspace, 0x1000, 0x1000, Permission.rw(), "data")
    child = syscalls.fork(proc)
    assert child.pid != proc.pid
    assert child.parent is proc
    region = child.aspace.find(0x1000)
    assert region is not None and region is not proc.aspace.find(0x1000)


def test_fork_shares_descriptions(syscalls, proc):
    fd = syscalls.open(proc, "/etc/x")
    child = syscalls.fork(proc)
    assert child.fdtable.lookup(fd) is proc.fdtable.lookup(fd)
    assert proc.fdtable.lookup(fd).refcount == 2


def test_open_close_read(syscalls, proc):
    fd = syscalls.open(proc, "/data", owner_label="me")
    assert syscalls.read_fd(proc, fd).path == "/data"
    syscalls.close(proc, fd)
    with pytest.raises(SyscallError):
        syscalls.read_fd(proc, fd)


def test_close_bad_fd(syscalls, proc):
    with pytest.raises(SyscallError):
        syscalls.close(proc, 42)


def test_sched_setaffinity(syscalls, proc):
    syscalls.sched_setaffinity(proc, 3)
    assert proc.bound_core == 3


def test_sigqueue_to_dead_process(syscalls, proc):
    proc.kill()
    with pytest.raises(SyscallError):
        syscalls.sigqueue(proc, 10)


def test_sigqueue_carries_tid(syscalls, proc):
    assert syscalls.sigqueue(proc, 10, tid=77) == (proc.pid, 10, 77)


def test_costs_accumulate(syscalls, proc):
    before = syscalls.total_ns
    syscalls.open(proc, "/x")
    assert syscalls.total_ns > before


def test_ioctl_counts_by_request(syscalls, proc):
    syscalls.ioctl(proc, "KSCHED_PREEMPT")
    assert syscalls.counts["ioctl:KSCHED_PREEMPT"] == 1


def test_uintr_register_handler(syscalls, proc):
    handler = object()
    syscalls.uintr_register_handler(proc, handler)
    assert proc.signal_handlers["uintr"] is handler
