"""Tests for POSIX-signal delivery."""

import pytest

from repro.kernel.kprocess import KProcess
from repro.kernel.signals import (
    KernelSignals,
    Signal,
    SIGKILL,
    SIGSEGV,
    SIGUSR1,
)


@pytest.fixture
def signals(sim, costs):
    return KernelSignals(sim, costs)


def test_handler_receives_signal_after_delay(sim, costs, signals):
    proc = KProcess("p")
    seen = []
    signals.register(proc, SIGUSR1,
                     lambda p, s: seen.append((p.name, s.signo, sim.now)))
    signals.post(proc, Signal(SIGUSR1))
    sim.run()
    assert seen == [("p", SIGUSR1, costs.signal_deliver_ns)]


def test_unhandled_fatal_signal_kills(sim, signals):
    proc = KProcess("p")
    signals.post(proc, Signal(SIGSEGV))
    sim.run()
    assert not proc.alive
    assert signals.killed == 1


def test_handled_segv_does_not_kill(sim, signals):
    proc = KProcess("p")
    signals.register(proc, SIGSEGV, lambda p, s: None)
    signals.post(proc, Signal(SIGSEGV))
    sim.run()
    assert proc.alive


def test_unhandled_nonfatal_signal_ignored(sim, signals):
    proc = KProcess("p")
    signals.post(proc, Signal(SIGUSR1))
    sim.run()
    assert proc.alive


def test_sigkill_cannot_be_caught(signals):
    proc = KProcess("p")
    with pytest.raises(ValueError):
        signals.register(proc, SIGKILL, lambda p, s: None)


def test_sigkill_always_kills(sim, signals):
    proc = KProcess("p")
    signals.post(proc, Signal(SIGKILL))
    sim.run()
    assert not proc.alive


def test_signal_to_dead_process_dropped(sim, signals):
    proc = KProcess("p")
    proc.kill()
    signals.post(proc, Signal(SIGUSR1))
    sim.run()
    assert signals.delivered == 0


def test_signal_value_passed(sim, signals):
    proc = KProcess("p")
    seen = []
    signals.register(proc, SIGUSR1, lambda p, s: seen.append(s.value))
    signals.post(proc, Signal(SIGUSR1, value=1234))
    sim.run()
    assert seen == [1234]
