"""Tests for kernel processes and threads."""

import pytest

from repro.kernel.kprocess import KProcess, ThreadState


def test_pids_unique():
    a, b = KProcess("a"), KProcess("b")
    assert a.pid != b.pid


def test_nice_range_enforced():
    with pytest.raises(ValueError):
        KProcess("x", nice=20)
    with pytest.raises(ValueError):
        KProcess("x", nice=-21)
    KProcess("ok", nice=19)
    KProcess("ok2", nice=-20)


def test_spawn_thread_inherits_nice():
    proc = KProcess("p", nice=5)
    thread = proc.spawn_thread()
    assert thread.nice == 5
    assert thread in proc.threads
    assert thread.state is ThreadState.RUNNABLE


def test_kill_marks_threads_dead():
    proc = KProcess("p")
    threads = [proc.spawn_thread() for _ in range(3)]
    proc.kill()
    assert not proc.alive
    assert all(t.state is ThreadState.DEAD for t in threads)


def test_spawn_on_dead_process_rejected():
    proc = KProcess("p")
    proc.kill()
    with pytest.raises(RuntimeError):
        proc.spawn_thread()


def test_tids_unique_across_processes():
    a = KProcess("a").spawn_thread()
    b = KProcess("b").spawn_thread()
    assert a.tid != b.tid
