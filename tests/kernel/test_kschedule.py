"""Tests for the Figure 3 kernel reallocation pipeline."""

import random

import pytest

from repro.hardware.machine import Machine
from repro.kernel.kschedule import KernelReallocPipeline


def test_pipeline_total_is_5_3_us(costs):
    assert KernelReallocPipeline(costs).total_ns() == 5300


def test_pipeline_occupies_core_for_total(sim, costs):
    machine = Machine(sim, costs, 1)
    pipeline = KernelReallocPipeline(costs)
    done = []
    pipeline.run(machine.cores[0], lambda: done.append(sim.now))
    sim.run()
    assert done == [5300]


def test_pipeline_accounting_split(sim, costs):
    machine = Machine(sim, costs, 1)
    core = machine.cores[0]
    pipeline = KernelReallocPipeline(costs)
    pipeline.run(core, lambda: None)
    sim.run()
    core.settle()
    # One phase (userspace save) is runtime; the rest kernel.
    assert core.acct.buckets["runtime"] == costs.caladan_user_save_ns
    assert core.acct.buckets["kernel"] == 5300 - costs.caladan_user_save_ns


def test_phase_order_matches_figure3(costs):
    names = [p.name for p in KernelReallocPipeline(costs).phases()]
    assert names == [
        "scheduler ioctl",
        "IPI delivery",
        "kernel trap + SIGUSR",
        "userspace state save",
        "kernel context switch",
        "restore to new app",
    ]


def test_jitter_extends_last_phase_only_sometimes(sim, costs):
    rng = random.Random(0)
    machine = Machine(sim, costs, 1)
    pipeline = KernelReallocPipeline(costs)
    durations = []

    def once():
        start = sim.now
        pipeline.run(machine.cores[0], lambda: durations.append(
            sim.now - start))

    for _ in range(300):
        once()
        sim.run()
    assert min(durations) == 5300
    assert max(durations) >= 5300  # occasionally jittered
    assert pipeline.executions == 300


def test_busy_core_rejected(sim, costs):
    machine = Machine(sim, costs, 1)
    machine.cores[0].run("app", 1000)
    pipeline = KernelReallocPipeline(costs)
    with pytest.raises(Exception):
        pipeline.run(machine.cores[0], lambda: None)
