"""Tests for descriptor tables."""

import pytest

from repro.kernel.fdtable import FdTable, FileDescription


def test_lowest_free_fd_allocated():
    table = FdTable()
    assert table.install(FileDescription("/a")) == 0
    assert table.install(FileDescription("/b")) == 1
    table.close(0)
    assert table.install(FileDescription("/c")) == 0


def test_lookup_returns_description():
    table = FdTable()
    fd = table.install(FileDescription("/x"))
    assert table.lookup(fd).path == "/x"
    assert table.lookup(99) is None


def test_close_removes_and_decrements():
    table = FdTable()
    description = FileDescription("/x")
    fd = table.install(description)
    table.close(fd)
    assert description.refcount == 0
    assert table.lookup(fd) is None


def test_close_bad_fd_raises():
    with pytest.raises(KeyError):
        FdTable().close(3)


def test_dup_shares_description():
    table = FdTable()
    fd = table.install(FileDescription("/x"))
    dup = table.dup(fd)
    assert table.lookup(dup) is table.lookup(fd)
    assert table.lookup(fd).refcount == 2


def test_dup_bad_fd_raises():
    with pytest.raises(KeyError):
        FdTable().dup(0)


def test_len_and_open_fds():
    table = FdTable()
    table.install(FileDescription("/a"))
    table.install(FileDescription("/b"))
    assert len(table) == 2
    assert set(table.open_fds()) == {0, 1}
