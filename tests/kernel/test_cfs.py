"""Tests for the CFS model: weights, fairness, wakeup behaviour."""

import pytest

from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.kernel.cfs import (
    CfsParams,
    CfsScheduler,
    CfsTask,
    Chunk,
    nice_to_weight,
    NICE_0_WEIGHT,
)
from repro.kernel.kprocess import KProcess, ThreadState


class BatchTask(CfsTask):
    """Always-runnable compute task accumulating executed time."""

    def __init__(self, chunk_ns=100_000):
        self.chunk_ns = chunk_ns
        self.executed = 0

    def next_chunk(self):
        def done():
            self.executed += self.chunk_ns
        return Chunk(self.chunk_ns, "app", done)


class FiniteTask(CfsTask):
    """Runs a fixed list of chunk durations, then sleeps."""

    def __init__(self, durations):
        self.durations = list(durations)
        self.completed = []

    def next_chunk(self):
        if not self.durations:
            return None
        duration = self.durations.pop(0)
        return Chunk(duration, "app", lambda: self.completed.append(duration))


def make_cfs(sim, costs, num_cores=1):
    machine = Machine(sim, costs, num_cores)
    return machine, CfsScheduler(sim, machine.cores, costs)


# ----------------------------------------------------------------------
# weight table
# ----------------------------------------------------------------------
def test_nice0_weight():
    assert nice_to_weight(0) == NICE_0_WEIGHT == 1024


def test_weight_table_monotone_decreasing():
    weights = [nice_to_weight(n) for n in range(-20, 20)]
    assert weights == sorted(weights, reverse=True)


def test_known_kernel_values():
    assert nice_to_weight(-20) == 88761
    assert nice_to_weight(19) == 15
    assert nice_to_weight(-19) == 71755


def test_weight_out_of_range():
    with pytest.raises(ValueError):
        nice_to_weight(20)


# ----------------------------------------------------------------------
# scheduling behaviour
# ----------------------------------------------------------------------
def test_single_task_runs(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    proc = KProcess("p")
    thread = proc.spawn_thread()
    task = FiniteTask([1000, 2000])
    cfs.register(thread, task)
    cfs.wake(thread)
    sim.run(until=10 * MS)
    assert task.completed == [1000, 2000]
    assert thread.state is ThreadState.SLEEPING


def test_equal_nice_fair_share(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    tasks = []
    for name in ("a", "b"):
        proc = KProcess(name, nice=0)
        thread = proc.spawn_thread()
        task = BatchTask()
        cfs.register(thread, task)
        cfs.wake(thread)
        tasks.append(task)
    sim.run(until=400 * MS)
    ratio = tasks[0].executed / max(1, tasks[1].executed)
    assert 0.8 <= ratio <= 1.25


def test_weighted_share_tracks_weights(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    executed = {}
    for name, nice in (("fast", 0), ("slow", 5)):
        proc = KProcess(name, nice=nice)
        thread = proc.spawn_thread()
        task = BatchTask()
        cfs.register(thread, task)
        cfs.wake(thread)
        executed[name] = task
    sim.run(until=400 * MS)
    ratio = executed["fast"].executed / max(1, executed["slow"].executed)
    expected = nice_to_weight(0) / nice_to_weight(5)
    assert ratio == pytest.approx(expected, rel=0.25)


def test_wake_is_idempotent_for_runnable(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    proc = KProcess("p")
    thread = proc.spawn_thread()
    cfs.register(thread, BatchTask())
    cfs.wake(thread)
    cfs.wake(thread)  # no-op
    sim.run(until=1 * MS)
    assert cfs.runnable_count() == 1


def test_waking_dead_thread_rejected(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    proc = KProcess("p")
    thread = proc.spawn_thread()
    cfs.register(thread, BatchTask())
    proc.kill()
    with pytest.raises(RuntimeError):
        cfs.wake(thread)


def test_sleeping_thread_wakes_on_demand(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    proc = KProcess("p")
    thread = proc.spawn_thread()
    task = FiniteTask([1000])
    cfs.register(thread, task)
    cfs.wake(thread)
    sim.run(until=1 * MS)
    assert thread.state is ThreadState.SLEEPING
    task.durations.append(500)
    cfs.wake(thread)
    sim.run(until=2 * MS)
    assert task.completed == [1000, 500]


def test_threads_spread_across_idle_cores(sim, costs):
    machine, cfs = make_cfs(sim, costs, num_cores=2)
    tasks = []
    for i in range(2):
        proc = KProcess(f"p{i}")
        thread = proc.spawn_thread()
        task = BatchTask()
        cfs.register(thread, task)
        cfs.wake(thread)
        tasks.append(task)
    sim.run(until=50 * MS)
    # With two cores both tasks should run at full speed.
    for task in tasks:
        assert task.executed >= 40 * MS


def test_high_priority_wakeup_preempts_low_after_min_granularity(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    batch_proc = KProcess("batch", nice=19)
    batch_thread = batch_proc.spawn_thread()
    cfs.register(batch_thread, BatchTask(chunk_ns=50 * MS))
    cfs.wake(batch_thread)

    hp_proc = KProcess("hp", nice=-19)
    hp_thread = hp_proc.spawn_thread()
    hp_task = FiniteTask([1000])
    cfs.register(hp_thread, hp_task)

    sim.run(until=10 * MS)  # batch is mid-chunk, past min_granularity
    cfs.wake(hp_thread)
    sim.run(until=12 * MS)
    assert hp_task.completed == [1000]
    assert cfs.wakeup_preemptions >= 1


def test_wakeup_preemption_blocked_within_min_granularity(sim, costs):
    params = CfsParams()
    machine = Machine(sim, costs, 1)
    cfs = CfsScheduler(sim, machine.cores, costs, params)
    batch_proc = KProcess("batch", nice=19)
    batch_thread = batch_proc.spawn_thread()
    cfs.register(batch_thread, BatchTask(chunk_ns=50 * MS))
    cfs.wake(batch_thread)

    hp_proc = KProcess("hp", nice=-19)
    hp_thread = hp_proc.spawn_thread()
    hp_task = FiniteTask([1000])
    cfs.register(hp_thread, hp_task)

    # Wake almost immediately: curr is protected for min_granularity.
    sim.run(until=100_000)  # 0.1 ms << 3 ms min granularity
    cfs.wake(hp_thread)
    sim.run(until=200_000)
    assert hp_task.completed == []  # still waiting


def test_context_switches_cost_kernel_time(sim, costs):
    machine, cfs = make_cfs(sim, costs)
    for name in ("a", "b"):
        proc = KProcess(name)
        thread = proc.spawn_thread()
        cfs.register(thread, BatchTask())
        cfs.wake(thread)
    sim.run(until=100 * MS)
    machine.cores[0].settle()
    assert machine.cores[0].acct.buckets.get("kernel", 0) > 0
    assert cfs.context_switches > 0
