"""Simulated hardware substrate.

Everything the paper's mechanisms touch on a real Sapphire Rapids machine
has a model here:

``timing``
    The calibrated nanosecond cost model (provenance: the paper's own
    measurements — Table 1, Figure 3, §2.2, §2.3).
``mpk``
    Memory protection keys: per-region pkeys, the PKRU register,
    WRPKRU/RDPKRU, combined page-permission + key checks.
``uintr``
    Userspace interrupts: UPID/UITT, ``senduipi``, delivery to a running
    receiver, deferral while the receiver is in the kernel or descheduled.
``ipi``
    Kernel inter-processor interrupts (the slow path Caladan uses).
``membus``
    A max-min-fair shared memory-bandwidth model (Figure 13).
``cache``
    A set-associative LRU cache fed by sampled access streams (Figure 11).
``machine``
    Cores (with PKRU and mode tracking) and the machine topology.
"""

from repro.hardware.timing import CostModel
from repro.hardware.machine import Core, CoreMode, Machine
from repro.hardware.mpk import (
    AccessKind,
    MpkFault,
    PageFault,
    Permission,
    PkruRegister,
    Region,
    AddressSpaceMap,
    PKEY_COUNT,
)
from repro.hardware.uintr import Upid, UittEntry, UintrController
from repro.hardware.ipi import IpiController
from repro.hardware.membus import MemoryBus, Transfer
from repro.hardware.cache import CacheSim, CacheStats

__all__ = [
    "CostModel",
    "Core",
    "CoreMode",
    "Machine",
    "AccessKind",
    "MpkFault",
    "PageFault",
    "Permission",
    "PkruRegister",
    "Region",
    "AddressSpaceMap",
    "PKEY_COUNT",
    "Upid",
    "UittEntry",
    "UintrController",
    "IpiController",
    "MemoryBus",
    "Transfer",
    "CacheSim",
    "CacheStats",
]
