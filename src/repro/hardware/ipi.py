"""Kernel inter-processor interrupts.

This is the slow signalling path the baselines depend on: the sender must
already be (or trap) in kernel mode, delivery interrupts the victim core
into its kernel entry point, and the handler runs in kernel context.  The
end-to-end latency is ~15x the Uintr path (§2.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.hardware.timing import CostModel
from repro.obs.ledger import NULL_LEDGER, OpLedger

IpiHandler = Callable[[int], None]


class IpiController:
    """Routes IPIs between cores with the kernel-path delivery latency."""

    def __init__(self, sim: Simulator, costs: CostModel,
                 ledger: Optional[OpLedger] = None) -> None:
        self.sim = sim
        self.costs = costs
        self.ledger = ledger or NULL_LEDGER
        self._handlers: Dict[int, IpiHandler] = {}
        self.sent: int = 0

    def register_handler(self, core_id: int, handler: IpiHandler) -> None:
        """Install the kernel interrupt handler for ``core_id``."""
        self._handlers[core_id] = handler

    def send(self, target_core_id: int, vector: int = 0,
             op: str = "ipi_deliver", domain: str = "hw") -> None:
        """Deliver an IPI to ``target_core_id`` after the kernel-path delay.

        ``op``/``domain`` let callers re-label the ledger row — e.g. the
        VESSEL preemption watchdog charges its kernel-IPI fallback under
        the "fallback" domain so degradation is visible in breakdowns.
        """
        handler = self._handlers.get(target_core_id)
        if handler is None:
            raise KeyError(f"core {target_core_id} has no IPI handler")
        self.sent += 1
        if self.ledger.enabled:
            self.ledger.charge(op, self.costs.ipi_deliver_ns,
                               core=target_core_id, domain=domain)
        self.sim.post(self.costs.ipi_deliver_ns, handler, vector)
