"""Userspace interrupts (Intel Uintr, §2.2).

The model mirrors the architectural objects:

* each receiver holds a :class:`Upid` (User Posted Interrupt Descriptor)
  with a posted-interrupt request bitmap and a notification flag;
* each sender holds a UITT (User Interrupt Target Table) of
  :class:`UittEntry` rows mapping an index to a (UPID, vector) pair;
* ``senduipi <index>`` posts the vector into the target UPID and, if the
  receiver is currently running in user mode, delivers it after the
  hardware delivery latency — the receiver's registered handler runs and
  finishes with ``uiret``;
* if the receiver is in the kernel or context-switched out, delivery is
  *deferred* until it next returns to user mode (§2.2), which the core
  model signals via :meth:`UintrController.on_user_resume`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.hardware.timing import CostModel
from repro.obs.ledger import NULL_LEDGER, OpLedger

VECTOR_COUNT = 64

#: sentinel an inject hook returns to lose a notification (the vector
#: stays posted in the UPID; only the doorbell is dropped)
UINTR_DROP = -1

#: handler(vector) -> None; runs on the receiver core in user mode
UintrHandler = Callable[[int], None]

#: inject(sender_id, receiver_id, vector) -> None (normal delivery),
#: UINTR_DROP (drop the notification), or extra delay in ns (>= 0)
UintrInjectHook = Callable[[int, int, int], Optional[int]]


@dataclass
class Upid:
    """User Posted Interrupt Descriptor for one receiver context."""

    receiver_id: int
    #: posted-but-undelivered vectors (the PIR bitmap)
    pending: int = 0
    #: suppress notification (receiver not running in user mode)
    suppressed: bool = True
    handler: Optional[UintrHandler] = None

    def post(self, vector: int) -> None:
        if not 0 <= vector < VECTOR_COUNT:
            raise ValueError(f"vector out of range: {vector}")
        self.pending |= 1 << vector

    def drain(self) -> List[int]:
        # Bit-scan instead of probing all 64 vector positions: almost
        # every delivery drains exactly one pending vector.  Order is
        # ascending, same as the probe loop.
        pending = self.pending
        self.pending = 0
        vectors = []
        while pending:
            low = pending & -pending
            vectors.append(low.bit_length() - 1)
            pending ^= low
        return vectors


@dataclass
class UittEntry:
    """One row of a sender's User Interrupt Target Table."""

    upid: Upid
    vector: int


class UintrController:
    """Send/receive machinery shared by all cores of a machine.

    Receivers register with :meth:`register_handler` (the
    ``uintr_register_handler()`` syscall analogue, charged separately by
    the kernel layer); senders build UITT entries with
    :meth:`register_sender` and fire with :meth:`senduipi`.
    """

    def __init__(self, sim: Simulator, costs: CostModel,
                 ledger: Optional[OpLedger] = None) -> None:
        self.sim = sim
        self.costs = costs
        self.ledger = ledger or NULL_LEDGER
        self._upids: Dict[int, Upid] = {}
        self._uitts: Dict[int, List[UittEntry]] = {}
        self.sent: int = 0
        self.delivered: int = 0
        self.deferred: int = 0
        self.dropped: int = 0
        self.delayed: int = 0
        #: optional fault-injection hook consulted on every senduipi
        #: (see :data:`UintrInjectHook`); ``None`` means no injection
        self.inject: Optional[UintrInjectHook] = None
        # Charge handles for the per-interrupt hot path; rebuilt lazily
        # because Machine.attach_ledger reassigns self.ledger after
        # construction.
        self._send_handle = None
        self._deliver_handle = None
        self._handles_ledger = None

    def _charge_handles(self):
        if self._handles_ledger is not self.ledger:
            self._send_handle = self.ledger.handle("hw", "uintr_send")
            self._deliver_handle = self.ledger.handle("hw", "uintr_deliver")
            self._handles_ledger = self.ledger
        return self._send_handle, self._deliver_handle

    # ---------------------------------------------------------------
    # Receiver side
    # ---------------------------------------------------------------
    def register_handler(self, receiver_id: int, handler: UintrHandler) -> Upid:
        upid = self._upids.get(receiver_id)
        if upid is None:
            upid = Upid(receiver_id=receiver_id)
            self._upids[receiver_id] = upid
        upid.handler = handler
        return upid

    def upid_of(self, receiver_id: int) -> Upid:
        upid = self._upids.get(receiver_id)
        if upid is None:
            raise KeyError(f"receiver {receiver_id} has no registered UPID")
        return upid

    def on_user_resume(self, receiver_id: int) -> None:
        """Receiver returned to user mode: deliver any deferred vectors."""
        upid = self._upids.get(receiver_id)
        if upid is None:
            return
        upid.suppressed = False
        if upid.pending:
            self.sim.post(self.costs.uintr_deliver_ns, self._deliver, upid)

    def on_user_suspend(self, receiver_id: int) -> None:
        """Receiver left user mode: notifications are suppressed."""
        upid = self._upids.get(receiver_id)
        if upid is not None:
            upid.suppressed = True

    def pending_vectors(self, receiver_id: int) -> List[int]:
        """Posted-but-undelivered vectors of ``receiver_id`` (PIR peek)."""
        upid = self._upids.get(receiver_id)
        if upid is None:
            return []
        return [v for v in range(VECTOR_COUNT) if upid.pending & (1 << v)]

    # ---------------------------------------------------------------
    # Sender side
    # ---------------------------------------------------------------
    def register_sender(self, sender_id: int, receiver_id: int, vector: int) -> int:
        """Create a UITT entry for ``sender_id``; returns its index."""
        upid = self.upid_of(receiver_id)
        table = self._uitts.setdefault(sender_id, [])
        table.append(UittEntry(upid=upid, vector=vector))
        return len(table) - 1

    def senduipi(self, sender_id: int, index: int) -> None:
        """Post an interrupt through UITT entry ``index``.

        If the receiver is running in user mode, the handler fires after
        the hardware delivery latency; otherwise the vector stays posted
        in the UPID until :meth:`on_user_resume`.
        """
        table = self._uitts.get(sender_id)
        if table is None or not 0 <= index < len(table):
            raise IndexError(f"sender {sender_id} has no UITT entry {index}")
        entry = table[index]
        entry.upid.post(entry.vector)
        self.sent += 1
        if self.ledger.enabled:
            send, _ = self._charge_handles()
            send.charge(self.costs.uintr_send_ns, sender_id)
        if entry.upid.suppressed:
            self.deferred += 1
            return
        extra_ns = 0
        if self.inject is not None:
            disposition = self.inject(sender_id, entry.upid.receiver_id,
                                      entry.vector)
            if disposition == UINTR_DROP:
                # The notification is lost in flight; the vector stays
                # posted in the PIR, so a later senduipi (or user resume)
                # still finds and delivers it.
                self.dropped += 1
                if self.ledger.enabled:
                    self.ledger.charge("fault:uintr_drop", 0,
                                       core=entry.upid.receiver_id,
                                       domain="fault")
                return
            if disposition is not None and disposition > 0:
                self.delayed += 1
                extra_ns = disposition
                if self.ledger.enabled:
                    self.ledger.charge("fault:uintr_delay", extra_ns,
                                       core=entry.upid.receiver_id,
                                       domain="fault")
        self.sim.post(
            self.costs.uintr_send_ns + self.costs.uintr_deliver_ns + extra_ns,
            self._deliver,
            entry.upid,
        )

    # ---------------------------------------------------------------
    def _deliver(self, upid: Upid) -> None:
        if upid.suppressed or not upid.pending:
            # The receiver left user mode (or was already drained) between
            # posting and delivery; the vector stays pending.
            return
        handler = upid.handler
        vectors = upid.drain()
        if handler is None:
            raise RuntimeError(
                f"uintr delivered to receiver {upid.receiver_id} "
                "with no registered handler"
            )
        for vector in vectors:
            self.delivered += 1
            if self.ledger.enabled:
                _, deliver = self._charge_handles()
                deliver.charge(self.costs.uintr_deliver_ns, upid.receiver_id)
            handler(vector)
