"""Cores and machine topology.

A :class:`Core` is the execution resource every scheduler in this repo
multiplexes.  It runs one *segment* of work at a time (a request, a slice
of batch work, a stretch of runtime spinning, a kernel pipeline phase...),
attributes elapsed time to accounting categories (``app`` / ``runtime`` /
``kernel`` / ``idle``), and supports preemption: cancelling the in-flight
segment returns how much work was left, which the scheduler re-queues.

Cores also carry the architectural state the functional layer needs: the
PKRU register (MPK) and the user/kernel/runtime mode used by the Uintr
controller's suppress/resume logic.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.stats import BusyAccounter
from repro.hardware.mpk import PkruRegister
from repro.hardware.timing import CostModel
from repro.obs.ledger import NULL_LEDGER, OpLedger


class CoreMode(enum.Enum):
    """Privilege mode of a core, as the uProcess design sees it."""

    USER = "user"          #: running application code
    RUNTIME = "runtime"    #: inside the userspace privileged mode (call gate)
    KERNEL = "kernel"      #: trapped into the Linux kernel
    IDLE = "idle"          #: UMWAIT / halted


class Core:
    """One hardware thread."""

    def __init__(self, sim: Simulator, core_id: int) -> None:
        self.sim = sim
        self.id = core_id
        self.pkru = PkruRegister(PkruRegister.ALL_DENIED_EXCEPT_0)
        self.mode = CoreMode.IDLE
        self.acct = BusyAccounter()
        self._category = "idle"
        self._since = sim.now
        self._segment_event: Optional[Event] = None
        self._segment_end = 0
        self._on_done: Optional[Callable[[], None]] = None
        #: opaque scheduler-owned state (current thread, app, ...)
        self.context: Any = None
        #: optional execution tracer (repro.sim.trace.Tracer)
        self.tracer = None
        #: True once the core is lost to an uncontained fault
        self.wedged = False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _switch_category(self, category: str) -> None:
        # Fires on every segment start/stop of every core; the bucket
        # update is inlined (acct.charge's negative check is redundant
        # here because ``elapsed > 0`` already guards it).
        now = self.sim.now
        elapsed = now - self._since
        if elapsed > 0:
            buckets = self.acct.buckets
            previous = self._category
            buckets[previous] = buckets.get(previous, 0) + elapsed
            if self.tracer is not None:
                self.tracer.record(self.id, self._since, now, previous)
        self._category = category
        self._since = now

    def settle(self) -> None:
        """Flush accrued time in the current category into the accounter."""
        self._switch_category(self._category)

    @property
    def category(self) -> str:
        return self._category

    # ------------------------------------------------------------------
    # Segment execution
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._segment_event is not None

    def run(self, category: str, duration_ns: int,
            on_done: Optional[Callable[[], None]] = None) -> None:
        """Execute ``duration_ns`` of work attributed to ``category``.

        ``on_done`` fires when the segment completes (not if preempted).
        Starting a segment while one is in flight is a scheduler bug.
        """
        if self.wedged:
            raise SimulationError(f"core {self.id} is wedged")
        if self._segment_event is not None:
            raise SimulationError(f"core {self.id} is already busy")
        if duration_ns < 0:
            raise SimulationError(f"negative duration {duration_ns}")
        self._switch_category(category)
        self._on_done = on_done
        self._segment_end = self.sim.now + duration_ns
        self._segment_event = self.sim.after(duration_ns, self._complete)

    def preempt(self) -> int:
        """Cancel the in-flight segment; returns remaining nanoseconds."""
        if self._segment_event is None:
            raise SimulationError(f"core {self.id} has no segment to preempt")
        self._segment_event.cancel()
        self._segment_event = None
        self._on_done = None
        remaining = self._segment_end - self.sim.now
        self._switch_category("idle")
        return max(0, remaining)

    def set_idle(self) -> None:
        """Mark the core idle (UMWAIT); it must not have a running segment."""
        if self._segment_event is not None:
            raise SimulationError(f"core {self.id} is busy; preempt() first")
        self._switch_category("idle")
        self.mode = CoreMode.IDLE

    def wedge(self) -> None:
        """Lose the core to an uncontained fault.

        Any in-flight segment is abandoned, all further time accrues to
        the "wedged" category, and :meth:`run` refuses new segments.
        Used by fault-injection ablations to make the cost of *missing*
        containment visible in the accounting buckets.
        """
        if self._segment_event is not None:
            self._segment_event.cancel()
            self._segment_event = None
            self._on_done = None
        self.wedged = True
        self._switch_category("wedged")
        self.mode = CoreMode.KERNEL

    def _complete(self) -> None:
        self._segment_event = None
        self._switch_category("idle")
        callback, self._on_done = self._on_done, None
        if callback is not None:
            callback()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Core {self.id} {self._category} mode={self.mode.value}>"


class Machine:
    """Cores plus the shared controllers every scheduler uses."""

    def __init__(self, sim: Simulator, costs: CostModel, num_cores: int,
                 membus_gbps: float = 40.0,
                 ledger: Optional[OpLedger] = None,
                 flight=None) -> None:
        from repro.hardware.ipi import IpiController
        from repro.hardware.membus import MemoryBus
        from repro.hardware.uintr import UintrController
        from repro.obs.flight import NULL_FLIGHT

        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive: {num_cores}")
        self.sim = sim
        self.costs = costs
        self.ledger = ledger or NULL_LEDGER
        #: per-request lifecycle recorder; systems built on this machine
        #: pick it up at construction time (NULL_FLIGHT records nothing)
        self.flight = flight or NULL_FLIGHT
        self.cores: List[Core] = [Core(sim, i) for i in range(num_cores)]
        self.uintr = UintrController(sim, costs, ledger=self.ledger)
        self.ipi = IpiController(sim, costs, ledger=self.ledger)
        self.membus = MemoryBus(sim, membus_gbps)
        self._propagate_ledger()

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def attach_tracer(self, tracer) -> None:
        """Record every core's activity spans into ``tracer``."""
        for core in self.cores:
            core.tracer = tracer

    def attach_ledger(self, ledger: OpLedger) -> None:
        """Route the hardware controllers' op charging through ``ledger``.

        Call before building a scheduler system on this machine so the
        system's own layers pick the ledger up at construction time.
        """
        self.ledger = ledger
        self._propagate_ledger()

    def _propagate_ledger(self) -> None:
        self.uintr.ledger = self.ledger
        self.ipi.ledger = self.ledger
        for core in self.cores:
            core.pkru.attach_ledger(self.ledger, core.id)

    def settle_all(self) -> None:
        for core in self.cores:
            core.settle()

    def total_accounting(self) -> BusyAccounter:
        """Aggregate per-core accounting into one accounter."""
        self.settle_all()
        total = BusyAccounter()
        for core in self.cores:
            for category, elapsed in core.acct.buckets.items():
                total.charge(category, elapsed)
        return total
