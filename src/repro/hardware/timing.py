"""The calibrated cost model.

Every nanosecond charged anywhere in the simulation comes from one instance
of :class:`CostModel`, so ablations can vary a single constant and every
scheduler sees the change.  Constants are calibrated from the paper itself
(and the references it cites); each field carries its provenance.

Two composite paths deserve explanation because the headline results flow
from them:

* **VESSEL park-switch** (Table 1: 0.161 µs average, 0.706 µs P999).  The
  path is: save user context -> call gate entry (stack switch + WRPKRU to
  the runtime key) -> runtime queue ops -> restore target context -> call
  gate exit (WRPKRU to the target's key + recheck).  The constants below
  sum to ~160 ns; the tail comes from :meth:`jitter_ns` which models rare
  machine-level interference (SMIs, TLB shootdowns by unmanaged processes).

* **Caladan core reallocation** (Figure 3: 5.3 µs total).  The kernel
  pipeline is ioctl -> IPI -> kernel trap -> SIGUSR-driven user save ->
  kernel context switch (page tables + bookkeeping) -> restore.  The six
  phase constants below sum to 5.3 µs and are reported individually by the
  Figure 3 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict
import random


@dataclass
class CostModel:
    """Nanosecond costs of every modeled hardware/kernel operation."""

    # ------------------------------------------------------------------
    # MPK (§2.3: WRPKRU takes 11-260 cycles; ~2 GHz -> ~5-130 ns)
    # ------------------------------------------------------------------
    wrpkru_ns: int = 20
    rdpkru_ns: int = 10
    #: pkey_mprotect / pkey_alloc syscalls (kernel-mediated, used only at
    #: uProcess setup time, not on the switch path).
    pkey_syscall_ns: int = 700

    # ------------------------------------------------------------------
    # Call gate (§4.2, Listing 1)
    # ------------------------------------------------------------------
    #: stack switch + function-pointer-vector dispatch + WRPKRU(RUNTIME_KEY)
    callgate_enter_ns: int = 45
    #: WRPKRU(app key) + RDPKRU recheck loop + stack restore
    callgate_exit_ns: int = 40

    # ------------------------------------------------------------------
    # Context save/restore in userspace (registers + FP state subset)
    # ------------------------------------------------------------------
    uctx_save_ns: int = 25
    uctx_restore_ns: int = 25
    #: runtime bookkeeping per switch (queue pop/push, map update)
    runtime_queue_ns: int = 25

    # ------------------------------------------------------------------
    # Uintr (§2.2: up to 15x lower latency than IPI-based signals)
    # ------------------------------------------------------------------
    #: senduipi cost on the sender core
    uintr_send_ns: int = 50
    #: hardware delivery to a receiver running in user mode
    uintr_deliver_ns: int = 120
    #: uiret on handler exit
    uiret_ns: int = 40

    # ------------------------------------------------------------------
    # Kernel paths (used by Caladan / Arachne / CFS baselines)
    # ------------------------------------------------------------------
    #: one user->kernel->user crossing (mitigations disabled, §6.1)
    syscall_ns: int = 150
    #: IPI send + delivery + kernel interrupt entry on the victim
    ipi_deliver_ns: int = 1800
    #: posting + delivering a POSIX signal to a userspace handler
    signal_deliver_ns: int = 900
    #: kernel context switch: runqueue ops + page-table switch + TLB effects
    kernel_ctx_switch_ns: int = 1400

    # ------------------------------------------------------------------
    # Figure 3: Caladan core-reallocation pipeline phases (sum = 5300 ns)
    # ------------------------------------------------------------------
    caladan_ioctl_ns: int = 800
    caladan_ipi_ns: int = 1000
    caladan_trap_sigusr_ns: int = 700
    caladan_user_save_ns: int = 800
    caladan_kernel_switch_ns: int = 1200
    caladan_restore_ns: int = 800

    #: Caladan's cheaper, park-based (cooperative) switch: the core yields
    #: through the runtime (caladan_park_yield_ns) and the iokernel
    #: rebinds it to the next app (caladan_park_switch_ns); the sum is the
    #: one-way switch Table 1 reports at 2.103 µs average.
    caladan_park_yield_ns: int = 150
    caladan_park_switch_ns: int = 1950
    #: how quickly the IOKernel's poll loop notices a congested app
    caladan_iokernel_react_ns: int = 1000

    # ------------------------------------------------------------------
    # Arachne (core-estimator baseline)
    # ------------------------------------------------------------------
    arachne_estimator_interval_ns: int = 50_000_000
    #: kernel-mediated core grant/revoke (measured ~29 µs in Arachne)
    arachne_core_grant_ns: int = 29_000
    #: per-request kernel block/wake path in Arachne's runtime
    arachne_wake_ns: int = 2_000

    #: per-request kernel network stack cost (softirq + epoll + syscalls)
    #: paid by apps that do not kernel-bypass (the CFS baseline)
    kernel_net_ns: int = 2_500

    # ------------------------------------------------------------------
    # Scheduler cadence (§4.5, Figure 7)
    # ------------------------------------------------------------------
    #: VESSEL's scheduler scan interval over the per-core FIFO queues
    vessel_scan_interval_ns: int = 1000
    #: Caladan's IOKernel core-allocation interval ("every 10 µs", §2.1)
    caladan_core_alloc_interval_ns: int = 10_000
    #: Caladan: an idle core steals for >= 2 µs before parking (Fig. 7a)
    caladan_steal_before_park_ns: int = 2000
    #: cost of one work-steal attempt inside an application
    steal_attempt_ns: int = 100
    #: UMWAIT wake latency (light-weight power state, §4.5 footnote)
    umwait_wake_ns: int = 100
    #: control-plane capacity: per-managed-core work of one VESSEL
    #: scheduler pass; the scan interval stretches once the pass no longer
    #: fits in vessel_scan_interval_ns (knee at ~42 cores, Figure 12)
    vessel_sched_per_core_ns: int = 23
    #: same for Caladan's IOKernel, which also forwards packets and is
    #: an order of magnitude heavier per core (knee at ~34 cores)
    caladan_iokernel_per_core_ns: int = 295
    #: how quickly the busy-polling scheduler notices a new arrival
    sched_react_ns: int = 300

    # ------------------------------------------------------------------
    # CFS (kernel scheduler baseline)
    # ------------------------------------------------------------------
    cfs_sched_latency_ns: int = 24_000_000
    cfs_min_granularity_ns: int = 3_000_000
    #: wakeup-to-run latency through the kernel (enqueue + IPI + switch)
    cfs_wakeup_ns: int = 5_000

    # ------------------------------------------------------------------
    # Jitter model: rare machine-level interference producing the P999
    # tails of Table 1 (0.706 µs for VESSEL, 5.461 µs for Caladan).
    # ------------------------------------------------------------------
    jitter_probability: float = 0.002
    jitter_min_ns: int = 350
    jitter_max_ns: int = 750
    #: the kernel paths see larger interference (softirqs, timer ticks)
    kernel_jitter_probability: float = 0.002
    kernel_jitter_min_ns: int = 2500
    kernel_jitter_max_ns: int = 4200

    def jitter_ns(self, rng: random.Random) -> int:
        """Occasional extra latency from unmodeled machine interference."""
        if rng.random() < self.jitter_probability:
            return rng.randint(self.jitter_min_ns, self.jitter_max_ns)
        return 0

    def kernel_jitter_ns(self, rng: random.Random) -> int:
        """Occasional extra latency on kernel-mediated paths."""
        if rng.random() < self.kernel_jitter_probability:
            return rng.randint(self.kernel_jitter_min_ns,
                               self.kernel_jitter_max_ns)
        return 0

    def vessel_switch_noise_ns(self, rng: random.Random) -> int:
        """Per-switch spread of the userspace path (cache/TLB state)."""
        return int(abs(rng.gauss(0.0, 3.0)))

    def caladan_switch_noise_ns(self, rng: random.Random) -> int:
        """Per-switch spread of the kernel-mediated cooperative path."""
        noise = int(abs(rng.gauss(0.0, 25.0)))
        if rng.random() < 0.02:  # occasional softirq on the way
            noise += rng.randint(150, 450)
        return noise

    # ------------------------------------------------------------------
    # Composite paths
    # ------------------------------------------------------------------
    def vessel_park_switch_ns(self) -> int:
        """Cooperative uProcess switch (Fig. 6 via park): pure user code."""
        return (
            self.uctx_save_ns
            + self.callgate_enter_ns
            + self.runtime_queue_ns
            + self.uctx_restore_ns
            + self.callgate_exit_ns
        )

    def vessel_preempt_switch_ns(self) -> int:
        """Preemptive uProcess switch: Uintr delivery + handler + switch."""
        return (
            self.uintr_send_ns
            + self.uintr_deliver_ns
            + self.vessel_park_switch_ns()
            + self.uiret_ns
        )

    def caladan_realloc_ns(self) -> int:
        """Caladan's kernel-mediated core reallocation (Figure 3)."""
        return (
            self.caladan_ioctl_ns
            + self.caladan_ipi_ns
            + self.caladan_trap_sigusr_ns
            + self.caladan_user_save_ns
            + self.caladan_kernel_switch_ns
            + self.caladan_restore_ns
        )

    def caladan_realloc_phases(self) -> Dict[str, int]:
        """Named phase breakdown for the Figure 3 timeline."""
        return {
            "scheduler ioctl": self.caladan_ioctl_ns,
            "IPI delivery": self.caladan_ipi_ns,
            "kernel trap + SIGUSR": self.caladan_trap_sigusr_ns,
            "userspace state save": self.caladan_user_save_ns,
            "kernel context switch": self.caladan_kernel_switch_ns,
            "restore to new app": self.caladan_restore_ns,
        }

    def copy(self, **overrides: int) -> "CostModel":
        """A copy with selected constants overridden (for ablations)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return CostModel(**values)
