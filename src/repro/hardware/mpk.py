"""Memory protection keys (Intel MPK, §2.3).

The model works at region granularity rather than per-page-table-entry:
an :class:`AddressSpaceMap` holds non-overlapping :class:`Region` entries,
each tagged with page permissions and a protection key (0..15).  A memory
access is checked against *both* the page permission bits and the PKRU
value of the accessing core, exactly as the hardware does ("MPK is
supplementary to the existing page permission bits and both permissions
will be checked", §4.1).

PKRU semantics follow the SDM: 16 pairs of (AD, WD) bits.  AD=1 disables
all data access for the key; WD=1 disables writes.  Instruction fetches
are *not* subject to PKRU — this is the hardware property §4.1 relies on
to make executable-only text segments callable by every uProcess while
their data stays sealed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

PKEY_COUNT = 16


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"


class Permission(enum.Flag):
    """Page-permission bits of a region (the PTE side of the check)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()

    @classmethod
    def rw(cls) -> "Permission":
        return cls.READ | cls.WRITE

    @classmethod
    def rx(cls) -> "Permission":
        return cls.READ | cls.EXECUTE

    @classmethod
    def exec_only(cls) -> "Permission":
        """Executable but neither readable nor writable (§4.1 text region)."""
        return cls.EXECUTE


class MpkFault(Exception):
    """An access denied by the PKRU value (protection-key fault)."""

    def __init__(self, addr: int, kind: AccessKind, pkey: int):
        super().__init__(f"pkey fault: {kind.value} at {addr:#x} (pkey {pkey})")
        self.addr = addr
        self.kind = kind
        self.pkey = pkey


class PageFault(Exception):
    """An access denied by page permissions, or to an unmapped address."""

    def __init__(self, addr: int, kind: AccessKind, reason: str):
        super().__init__(f"page fault: {kind.value} at {addr:#x} ({reason})")
        self.addr = addr
        self.kind = kind
        self.reason = reason


class PkruRegister:
    """The per-core PKRU register: (AD, WD) bit pairs for 16 keys."""

    __slots__ = ("value", "_ledger", "_core_id")

    #: all keys access-disabled except key 0 (the kernel leaves key 0 open
    #: so unmanaged memory keeps working, §4.1 footnote)
    ALL_DENIED_EXCEPT_0 = int("".join(["01"] * 15 + ["00"]), 2)

    def __init__(self, value: int = 0) -> None:
        if not 0 <= value < (1 << 32):
            raise ValueError(f"PKRU value out of range: {value:#x}")
        self.value = value
        self._ledger = None
        self._core_id = None

    def attach_ledger(self, ledger, core_id: int) -> None:
        """Count wrpkru/rdpkru executions on this (core) register.

        The instructions' nanoseconds are charged by the paths that
        execute them (the call-gate constants subsume the WRPKRU cost),
        so the register itself only records operation counts.
        """
        self._ledger = ledger if ledger is not None and ledger.enabled \
            else None
        self._core_id = core_id

    # -- raw instruction analogues ------------------------------------
    def wrpkru(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise ValueError(f"PKRU value out of range: {value:#x}")
        self.value = value
        if self._ledger is not None:
            self._ledger.count_op("wrpkru", core=self._core_id, domain="hw")

    def rdpkru(self) -> int:
        if self._ledger is not None:
            self._ledger.count_op("rdpkru", core=self._core_id, domain="hw")
        return self.value

    # -- structured helpers --------------------------------------------
    def allows(self, pkey: int, kind: AccessKind) -> bool:
        """Whether this PKRU permits ``kind`` on memory tagged ``pkey``.

        Instruction fetches are never blocked by PKRU (hardware behaviour).
        """
        if not 0 <= pkey < PKEY_COUNT:
            raise ValueError(f"pkey out of range: {pkey}")
        if kind is AccessKind.EXECUTE:
            return True
        shift = 2 * pkey
        access_disable = (self.value >> shift) & 1
        write_disable = (self.value >> (shift + 1)) & 1
        if access_disable:
            return False
        if kind is AccessKind.WRITE and write_disable:
            return False
        return True

    @classmethod
    def build(cls, readable: Dict[int, bool]) -> "PkruRegister":
        """Build a PKRU from ``{pkey: writable}``; unlisted keys are denied.

        Key 0 is always left fully open (see ALL_DENIED_EXCEPT_0).
        """
        value = 0
        for pkey in range(1, PKEY_COUNT):
            shift = 2 * pkey
            if pkey in readable:
                if not readable[pkey]:
                    value |= 1 << (shift + 1)  # WD
            else:
                value |= 1 << shift  # AD
        return cls(value)

    def copy(self) -> "PkruRegister":
        return PkruRegister(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PkruRegister) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PkruRegister({self.value:#010x})"


@dataclass
class Region:
    """A contiguous mapped range with page permissions and a pkey."""

    start: int
    size: int
    perms: Permission
    pkey: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} has size {self.size}")
        if not 0 <= self.pkey < PKEY_COUNT:
            raise ValueError(f"region {self.name!r} pkey {self.pkey} invalid")

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.start < other.end and other.start < self.end


class AddressSpaceMap:
    """Non-overlapping regions + the access check combining PTE and PKRU."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._regions: List[Region] = []

    # ------------------------------------------------------------------
    def map(self, region: Region) -> Region:
        """Insert a region; overlapping an existing mapping is an error."""
        for existing in self._regions:
            if existing.overlaps(region):
                raise ValueError(
                    f"region {region.name!r} [{region.start:#x},{region.end:#x}) "
                    f"overlaps {existing.name!r} "
                    f"[{existing.start:#x},{existing.end:#x})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        return region

    def unmap(self, region: Region) -> None:
        self._regions.remove(region)

    def find(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, or None (binary search)."""
        lo, hi = 0, len(self._regions)
        while lo < hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if addr < region.start:
                hi = mid
            elif addr >= region.end:
                lo = mid + 1
            else:
                return region
        return None

    def regions(self) -> List[Region]:
        return list(self._regions)

    def set_pkey(self, region: Region, pkey: int) -> None:
        """The pkey_mprotect() analogue: re-tag a mapped region."""
        if region not in self._regions:
            raise ValueError(f"region {region.name!r} is not mapped")
        if not 0 <= pkey < PKEY_COUNT:
            raise ValueError(f"pkey out of range: {pkey}")
        region.pkey = pkey

    def set_perms(self, region: Region, perms: Permission) -> None:
        """The mprotect() analogue: change page permissions."""
        if region not in self._regions:
            raise ValueError(f"region {region.name!r} is not mapped")
        region.perms = perms

    # ------------------------------------------------------------------
    def check_access(self, addr: int, kind: AccessKind, pkru: PkruRegister) -> Region:
        """Check one access; returns the region or raises a fault.

        Page permissions are checked first (an unmapped or non-X fetch is a
        page fault regardless of PKRU), then the protection key.
        """
        region = self.find(addr)
        if region is None:
            raise PageFault(addr, kind, "unmapped")
        needed = {
            AccessKind.READ: Permission.READ,
            AccessKind.WRITE: Permission.WRITE,
            AccessKind.EXECUTE: Permission.EXECUTE,
        }[kind]
        if not region.perms & needed:
            raise PageFault(addr, kind, f"page perms {region.perms}")
        if not pkru.allows(region.pkey, kind):
            raise MpkFault(addr, kind, region.pkey)
        return region
