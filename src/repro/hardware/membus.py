"""A shared memory-bandwidth model (max-min fair processor sharing).

Memory-intensive work (membench's memory phases, cache-miss traffic) is
modeled as :class:`Transfer` objects that drain through a :class:`MemoryBus`
of fixed capacity.  Each transfer has an intrinsic *demand rate* (what one
core could consume alone); concurrent transfers share the bus by max-min
fairness (water-filling), and per-tag rate caps let the regulation
baselines (Intel MBA, cgroups) and VESSEL's scheduler throttle a tenant.

Whenever the active set or a cap changes, progress is settled at the old
rates and completion events are rescheduled at the new ones — the standard
processor-sharing discrete-event pattern.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.engine import Event, Simulator


class Transfer:
    """An in-flight bulk memory stream."""

    __slots__ = (
        "tag", "total_bytes", "remaining", "demand_rate", "on_done",
        "rate", "last_update", "_done_event", "started_at",
    )

    def __init__(self, tag: str, total_bytes: float, demand_rate: float,
                 on_done: Optional[Callable[[], None]]) -> None:
        self.tag = tag
        self.total_bytes = float(total_bytes)
        self.remaining = float(total_bytes)
        self.demand_rate = float(demand_rate)
        self.on_done = on_done
        self.rate = 0.0
        self.last_update = 0
        self._done_event: Optional[Event] = None
        self.started_at = 0


class MemoryBus:
    """Fixed-capacity bus with max-min fair sharing and per-tag caps.

    Rates are bytes per nanosecond.  ``capacity_gbps`` is gigabytes per
    second for config readability (1 GB/s == 1 byte/ns).
    """

    def __init__(self, sim: Simulator, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise ValueError(f"capacity must be positive: {capacity_gbps}")
        self.sim = sim
        self.capacity = float(capacity_gbps)  # bytes/ns
        self._active: List[Transfer] = []
        self._caps: Dict[str, float] = {}
        self.bytes_by_tag: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def set_tag_cap(self, tag: str, rate_gbps: Optional[float]) -> None:
        """Cap (or uncap, with None) the aggregate rate of a tag."""
        if rate_gbps is None:
            self._caps.pop(tag, None)
        else:
            if rate_gbps < 0:
                raise ValueError(f"negative cap {rate_gbps}")
            self._caps[tag] = float(rate_gbps)
        self._reschedule()

    def start_transfer(self, tag: str, total_bytes: float,
                       demand_rate_gbps: float,
                       on_done: Optional[Callable[[], None]] = None) -> Transfer:
        """Begin a stream of ``total_bytes`` with demand ``demand_rate_gbps``."""
        if total_bytes <= 0:
            raise ValueError(f"transfer size must be positive: {total_bytes}")
        if demand_rate_gbps <= 0:
            raise ValueError(f"demand rate must be positive: {demand_rate_gbps}")
        transfer = Transfer(tag, total_bytes, demand_rate_gbps, on_done)
        transfer.last_update = self.sim.now
        transfer.started_at = self.sim.now
        self._active.append(transfer)
        self._reschedule()
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> float:
        """Abort a stream; returns the bytes that remained untransferred."""
        if transfer not in self._active:
            return 0.0
        self._settle()
        if transfer._done_event is not None:
            transfer._done_event.cancel()
        self._active.remove(transfer)
        remaining = transfer.remaining
        self._reschedule()
        return remaining

    def active_count(self) -> int:
        return len(self._active)

    def consumed_bytes(self, tag: str) -> float:
        """Total bytes ``tag`` has moved so far (progress settled first)."""
        self._settle()
        return self.bytes_by_tag.get(tag, 0.0)

    def utilization(self) -> float:
        """Current allocated-rate utilization in [0, 1]."""
        if not self._active:
            return 0.0
        return min(1.0, sum(t.rate for t in self._active) / self.capacity)

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Advance every active transfer's progress to ``now``."""
        now = self.sim.now
        for transfer in self._active:
            elapsed = now - transfer.last_update
            if elapsed > 0 and transfer.rate > 0:
                moved = min(transfer.remaining, transfer.rate * elapsed)
                transfer.remaining -= moved
                self.bytes_by_tag[transfer.tag] = (
                    self.bytes_by_tag.get(transfer.tag, 0.0) + moved
                )
            transfer.last_update = now

    def _allocate(self) -> None:
        """Max-min fair allocation honouring demands and per-tag caps.

        Tag caps are enforced by first water-filling capacity across tags
        (capped tags get at most their cap), then across transfers inside
        each tag.
        """
        by_tag: Dict[str, List[Transfer]] = {}
        for transfer in self._active:
            by_tag.setdefault(transfer.tag, []).append(transfer)

        # Tag-level demand = sum of member demands, clipped by the cap.
        tag_demand = {
            tag: min(sum(t.demand_rate for t in members),
                     self._caps.get(tag, float("inf")))
            for tag, members in by_tag.items()
        }
        tag_share = _water_fill(tag_demand, self.capacity)

        for tag, members in by_tag.items():
            member_demand = {id(t): t.demand_rate for t in members}
            member_share = _water_fill(member_demand, tag_share[tag])
            for transfer in members:
                transfer.rate = member_share[id(transfer)]

    def _reschedule(self) -> None:
        self._settle()
        self._allocate()
        now = self.sim.now
        finished: List[Transfer] = []
        for transfer in self._active:
            if transfer._done_event is not None:
                transfer._done_event.cancel()
                transfer._done_event = None
            if transfer.remaining <= 1e-9:
                finished.append(transfer)
            elif transfer.rate > 0:
                eta = int(transfer.remaining / transfer.rate) + 1
                transfer._done_event = self.sim.at(
                    now + eta, self._finish, transfer
                )
            # rate == 0 (fully throttled): no completion until rates change
        for transfer in finished:
            self._complete(transfer)

    def _finish(self, transfer: Transfer) -> None:
        transfer._done_event = None
        self._settle()
        if transfer.remaining > 1e-9:
            # Rounding left a sliver; resettle shortly.
            self._reschedule()
            return
        self._complete(transfer)

    def _complete(self, transfer: Transfer) -> None:
        if transfer in self._active:
            self._active.remove(transfer)
        self._reschedule_if_active()
        if transfer.on_done is not None:
            transfer.on_done()

    def _reschedule_if_active(self) -> None:
        if self._active:
            self._reschedule()


def _water_fill(demands: Dict, capacity: float) -> Dict:
    """Classic max-min fair water-filling.

    Returns ``{key: share}`` with ``share <= demand`` and
    ``sum(shares) <= capacity``; unmet capacity is redistributed to
    still-unsatisfied demanders equally until all are satisfied or the
    capacity is exhausted.
    """
    shares = {key: 0.0 for key in demands}
    unsatisfied = {key: demand for key, demand in demands.items() if demand > 0}
    remaining = capacity
    while unsatisfied and remaining > 1e-12:
        level = remaining / len(unsatisfied)
        satisfied = [k for k, d in unsatisfied.items() if d <= level]
        if not satisfied:
            for key in unsatisfied:
                shares[key] += level
            remaining = 0.0
            break
        for key in satisfied:
            shares[key] += unsatisfied[key]
            remaining -= unsatisfied.pop(key)
    return shares


class BandwidthMeter:
    """Windowed bandwidth measurement over a bus tag.

    VESSEL's scheduler and the regulation baselines sample consumption in
    fixed windows; this helper snapshots :meth:`MemoryBus.consumed_bytes`
    and converts deltas to GB/s.
    """

    def __init__(self, bus: MemoryBus, tag: str) -> None:
        self.bus = bus
        self.tag = tag
        self._last_bytes = bus.consumed_bytes(tag)
        self._last_time = bus.sim.now

    def sample_gbps(self) -> float:
        """GB/s consumed by the tag since the previous sample."""
        now = self.bus.sim.now
        total = self.bus.consumed_bytes(self.tag)
        elapsed = now - self._last_time
        delta = total - self._last_bytes
        self._last_bytes = total
        self._last_time = now
        if elapsed <= 0:
            return 0.0
        return delta / elapsed  # bytes/ns == GB/s
