"""A set-associative LRU cache fed by explicit address streams.

Figure 11 of the paper shows that two applications timesharing a core are
far more cache-friendly under VESSEL than under Caladan: with a shared
address space (SMAS) the allocator places the two apps' working sets in
*disjoint* address ranges, so they occupy disjoint cache sets; with
separate kProcesses both apps' heaps start at the same virtual addresses
and collide in the virtually-indexed parts of the hierarchy, thrashing
each other on every context switch.

The cache here is a plain set-associative LRU simulator; experiments drive
it with sampled access streams generated from each app's working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Hit/miss counts, optionally broken down by stream tag."""

    hits: int = 0
    misses: int = 0
    by_tag: Dict[str, List[int]] = field(default_factory=dict)

    def record(self, tag: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        entry = self.by_tag.setdefault(tag, [0, 0])
        entry[0 if hit else 1] += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self, tag: str = "") -> float:
        """Overall miss rate, or a single tag's when ``tag`` is given."""
        if tag:
            hits, misses = self.by_tag.get(tag, [0, 0])
        else:
            hits, misses = self.hits, self.misses
        total = hits + misses
        if total == 0:
            return 0.0
        return misses / total


class CacheSim:
    """Set-associative LRU cache over byte addresses."""

    def __init__(self, size_bytes: int, ways: int = 8, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError(
                f"size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        # Each set is an MRU-ordered list of line tags.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int, tag: str = "") -> bool:
        """Touch ``addr``; returns True on hit.

        One call models a full cache-line touch; callers iterate lines for
        bulk accesses.
        """
        line = addr // self.line_bytes
        index = line % self.num_sets
        line_tag = line // self.num_sets
        ways = self._sets[index]
        try:
            pos = ways.index(line_tag)
        except ValueError:
            pos = -1
        if pos >= 0:
            # MRU update.
            if pos != 0:
                ways.insert(0, ways.pop(pos))
            self.stats.record(tag, True)
            return True
        ways.insert(0, line_tag)
        if len(ways) > self.ways:
            ways.pop()
        self.stats.record(tag, False)
        return False

    def access_range(self, start: int, length: int, tag: str = "") -> int:
        """Touch every line in ``[start, start+length)``; returns misses."""
        if length <= 0:
            raise ValueError(f"length must be positive: {length}")
        misses = 0
        first = start // self.line_bytes
        last = (start + length - 1) // self.line_bytes
        for line in range(first, last + 1):
            if not self.access(line * self.line_bytes, tag):
                misses += 1
        return misses

    def flush(self) -> None:
        """Invalidate everything (models a full flush / address-space swap)."""
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
