"""Continuous tenant churn: uProcesses created and destroyed under load.

Multi-tenant clusters never reach steady state — tenants arrive, run
for a while, and leave, so the SMAS slot table, pkey assignments, boot
kProcesses, and kernel descriptors are allocated and reclaimed
continuously.  :class:`ChurnDriver` generates that turnover against a
*running* system: each churn lane boots a memcached tenant with its own
open-loop source, retires it after an exponentially distributed
lifetime, then (after a respawn gap) boots the next tenant into
whatever slot teardown freed.

Determinism: the driver owns dedicated RNG streams
(``overload/churn`` for lifetimes/gaps, per-tenant ``overload/svc/*``
and ``overload/arrivals/*`` for load), so enabling churn never perturbs
the long-lived apps' arrival or service draws — and slot allocation is
first-free, so reruns reuse identical slot indices in identical order.

When the domain is momentarily full (all SMAS slots in use), a spawn
defers and retries rather than crashing — capacity pressure is part of
what the scenario exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, US
from repro.uprocess.smas import MAX_UPROCESSES
from repro.workloads.base import OpenLoopSource
from repro.workloads.memcached import UsrServiceSampler, memcached_app

#: retry delay when the domain has no free slot for a spawn
_FULL_RETRY_NS = 20 * US


@dataclass(frozen=True)
class ChurnConfig:
    """Turnover knobs (frozen, picklable for batch sweeps)."""

    #: concurrent churn lanes (each lane = one live tenant at a time)
    tenants: int = 3
    #: mean tenant lifetime (exponential)
    lifetime_us: float = 600.0
    #: mean gap between a retirement and the lane's next spawn
    respawn_gap_us: float = 150.0
    #: offered load per churning tenant
    rate_mops: float = 0.25
    #: when the first lane starts spawning
    start_ms: float = 0.0


class ChurnDriver:
    """Spawns and retires tenants against a running system."""

    def __init__(self, sim: Simulator, system, rngs: RngStreams,
                 cfg: ChurnConfig) -> None:
        self.sim = sim
        self.system = system
        self.rngs = rngs
        self.cfg = cfg
        self.rng = rngs.stream("overload/churn")
        self.created = 0
        self.destroyed = 0
        self.deferred_full = 0
        self._seq = 0
        self._active: Dict[str, OpenLoopSource] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Stagger the lanes' first spawns across one respawn gap."""
        base_ns = int(self.cfg.start_ms * MS)
        stagger = max(1, int(self.cfg.respawn_gap_us * 1_000))
        for lane in range(self.cfg.tenants):
            self.sim.at(base_ns + lane * stagger // self.cfg.tenants,
                        self._spawn)

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        if self.system.domain.smas.slots_in_use() >= MAX_UPROCESSES:
            self.deferred_full += 1
            self.sim.after(_FULL_RETRY_NS, self._spawn)
            return
        name = f"tenant{self._seq}"
        self._seq += 1
        app = memcached_app(name)
        self.system.add_app(app)
        sampler = UsrServiceSampler(self.rngs.stream(f"overload/svc/{name}"))
        source = OpenLoopSource(
            self.sim, app, self.system.submit, self.cfg.rate_mops, sampler,
            self.rngs.stream(f"overload/arrivals/{name}"),
            start_ns=self.sim.now)
        self._active[name] = source
        self.created += 1
        lifetime = max(1, int(self.rng.expovariate(
            1.0 / (self.cfg.lifetime_us * 1_000))))
        self.sim.after(lifetime, self._retire, name)

    def _retire(self, name: str) -> None:
        source = self._active.pop(name, None)
        if source is None:
            return  # already torn down (e.g. a fault killed the tenant)
        source.stop()
        if name in self.system._apps:
            self.system.remove_app(name)
        self.destroyed += 1
        gap = max(1, int(self.rng.expovariate(
            1.0 / (self.cfg.respawn_gap_us * 1_000))))
        self.sim.after(gap, self._spawn)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return len(self._active)

    def snapshot(self) -> Dict:
        """Turnover + kernel-residue accounting for the report.

        The residue numbers are the point of the scenario: after
        thousands of create/destroy cycles they must equal what a
        freshly booted system of the same live population would show.
        """
        system = self.system
        manager = getattr(system, "manager", None)
        children = manager.kprocess.children if manager is not None else []
        return {
            "created": self.created,
            "destroyed": self.destroyed,
            "active": self.active,
            "deferred_full": self.deferred_full,
            "slots_in_use": system.domain.smas.slots_in_use(),
            "domain_roster": len(system.domain.uprocs),
            "signal_handlers": len(system.signals._handlers),
            "live_children": sum(1 for c in children if c.alive),
            "dead_children": sum(1 for c in children if not c.alive),
            "kernel_fd_tables": sum(
                1 for fds in system.runtime._kernel_fds.values() if fds),
        }
