"""Per-app admission control / load shedding.

When offered load exceeds capacity, an unprotected FIFO system queues
without bound: latency grows linearly with the backlog and every client
retry adds to it (the classic retry-storm collapse).  Admission control
converts that unbounded queueing into bounded queueing plus explicit
rejections, which clients can back off from.

Two watermarks, checked per latency app:

* **queue depth** — pending requests already exceed what the app's
  servers can drain within its latency budget;
* **oldest arrival** — the head-of-line request has waited longer than
  ``max_oldest_wait_ns``, so anything admitted behind it is already
  doomed to miss its deadline (admitting it only wastes service time).

Sheds happen at two stages.  The *NIC-ingress* check (wired through
:class:`~repro.net.fabric.NetFabric`) rejects before the packet occupies
an RX-ring slot; the *submit-boundary* check catches direct-submit runs
and whatever slipped through the ring while state changed.  Both count
deterministic ``shed:queue_depth`` / ``shed:oldest_wait`` ledger ops and
per-app counters, and — when the request came over the fabric — send a
rejection response back so the client observes the shed and applies its
(seeded, exponential) backoff instead of timing out blind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.flight import NULL_FLIGHT
from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.sim.engine import Simulator
from repro.sim.units import US
from repro.workloads.base import App, Request

#: stage labels for the shed accounting
STAGES = ("ingress", "submit")
#: watermark labels (ledger ops are ``shed:<reason>``)
REASONS = ("queue_depth", "oldest_wait")


@dataclass(frozen=True)
class AdmissionConfig:
    """Watermarks for per-app load shedding (0 disables a check).

    Picklable so batch sweeps can fan admission-controlled runs out
    over worker processes.
    """

    #: shed when an app's pending queue reaches this depth
    max_queue_depth: int = 192
    #: shed when the head-of-line request has waited this long
    max_oldest_wait_ns: int = 400 * US


class AdmissionControl:
    """Wraps a system's ``submit`` and sheds above the watermarks."""

    def __init__(self, sim: Simulator, cfg: AdmissionConfig,
                 ledger: Optional[OpLedger] = None) -> None:
        self.sim = sim
        self.cfg = cfg
        self.ledger = ledger or NULL_LEDGER
        self.system = None
        self._inner_submit = None
        self.flight = NULL_FLIGHT
        #: per-app admitted-request count (submit boundary)
        self.admitted: Dict[str, int] = {}
        #: per-app shed counts keyed by watermark reason
        self.shed: Dict[str, Dict[str, int]] = {}
        #: shed counts keyed by stage (ingress vs submit)
        self.shed_by_stage: Dict[str, int] = {s: 0 for s in STAGES}

    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Interpose on ``system.submit``.

        Must run before anything captures a reference to the original
        bound method (sources and the net fabric both do), so call it
        immediately after the system is constructed.
        """
        if self._inner_submit is not None:
            raise RuntimeError("admission control already attached")
        self.system = system
        self._inner_submit = system.submit
        system.submit = self.submit
        system.admission = self
        self.flight = system.flight

    # ------------------------------------------------------------------
    def reason_to_shed(self, app: App, now: int) -> Optional[str]:
        """The watermark ``app`` currently violates, or None to admit."""
        if not app.is_latency:
            return None
        cfg = self.cfg
        if cfg.max_queue_depth > 0 \
                and len(app.queue) >= cfg.max_queue_depth:
            return "queue_depth"
        if cfg.max_oldest_wait_ns > 0 and app.queue \
                and now - app.queue[0].arrival_ns >= cfg.max_oldest_wait_ns:
            return "oldest_wait"
        return None

    def submit(self, request: Request) -> None:
        """The guarded intake installed over ``system.submit``."""
        app = request.app
        reason = self.reason_to_shed(app, self.sim.now)
        if reason is not None:
            self.count_shed(app.name, reason, stage="submit")
            self._reject(request)
            return
        if app.is_latency:
            self.admitted[app.name] = self.admitted.get(app.name, 0) + 1
            if self.flight.enabled:
                self.flight.mark(request, "admit")
        self._inner_submit(request)

    def count_shed(self, app_name: str, reason: str, stage: str) -> None:
        per_app = self.shed.setdefault(
            app_name, {r: 0 for r in REASONS})
        per_app[reason] += 1
        self.shed_by_stage[stage] += 1
        if self.ledger.enabled:
            self.ledger.count_op(f"shed:{reason}", domain="net")

    def _reject(self, request: Request) -> None:
        # Over the fabric the rejection travels back as a tiny response;
        # a direct-submit request simply never enters the system (the
        # open-loop source does not react either way).
        if request.net_token is not None:
            fabric = getattr(self.system, "net_fabric", None)
            if fabric is not None:
                fabric.shed_response(request)
        elif self.flight.enabled:
            # Direct-submit rejections have no response leg to ride: the
            # flight terminates at the shed decision itself.
            self.flight.mark(request, "shed")
            self.flight.finalize(request, "shed")

    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        """Drop warmup-phase shed/admit statistics."""
        self.admitted.clear()
        for per_app in self.shed.values():
            for reason in per_app:
                per_app[reason] = 0
        for stage in self.shed_by_stage:
            self.shed_by_stage[stage] = 0

    def total_shed(self, app_name: Optional[str] = None) -> int:
        if app_name is not None:
            return sum(self.shed.get(app_name, {}).values())
        return sum(sum(per.values()) for per in self.shed.values())

    def snapshot(self) -> Dict:
        """Deterministic, JSON-friendly accounting for the report."""
        return {
            "admitted": dict(sorted(self.admitted.items())),
            "shed": {name: dict(per)
                     for name, per in sorted(self.shed.items())},
            "by_stage": dict(self.shed_by_stage),
        }
