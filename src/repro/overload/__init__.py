"""Overload tolerance: admission control, SLO autoscaling, load shaping.

The paper's claim is that VESSEL shines *under pressure*; this package
supplies the pressure and the survival machinery.  Three cooperating
pieces, each usable alone:

* :mod:`repro.overload.admission` — per-app load shedding at the
  NIC-ingress and ``system.submit`` boundaries (queue-depth and
  oldest-arrival watermarks, ``shed:*`` ledger ops, rejections flow
  back to clients through ``repro.net``);
* :mod:`repro.overload.autoscaler` — an SLO-driven core autoscaler
  expressed as a :class:`~repro.sched.policy.SchedPolicy` subclass, so
  it composes with the policy zoo and reuses the decision API;
* :mod:`repro.overload.trace` / :mod:`repro.overload.churn` — diurnal
  flash-crowd load shaping and continuous tenant create/destroy churn,
  both deterministic under the run's seed.

The scenario suite lives in ``repro.experiments`` (``churn``,
``flashcrowd``, ``oversub``, ``overload``).
"""

from repro.overload.admission import AdmissionConfig, AdmissionControl
from repro.overload.autoscaler import SloAutoscalePolicy
from repro.overload.churn import ChurnConfig, ChurnDriver
from repro.overload.trace import (
    LoadPhase,
    LoadShaper,
    LoadTrace,
    flash_crowd_trace,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionControl",
    "SloAutoscalePolicy",
    "ChurnConfig",
    "ChurnDriver",
    "LoadPhase",
    "LoadShaper",
    "LoadTrace",
    "flash_crowd_trace",
]
