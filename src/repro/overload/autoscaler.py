"""SLO-driven core autoscaling as a scheduling policy.

Caladan's core allocator re-evaluates per-application core grants every
5 us from queueing-delay signals; this policy transplants the idea onto
the VESSEL mechanism as a :class:`SchedPolicy` subclass — it composes
with the zoo, costs nothing it doesn't use, and every harvest/return is
an ordinary policy decision executed (and validated) by the mechanism.

Control law, evaluated once per ``control_period_ns``:

* each latency app keeps a sliding window of completed-request
  latencies (fed by ``on_request_done``);
* when the *worst* per-app p99 exceeds ``slo_p99_ns``, one best-effort
  core is **harvested**: the BE cap drops by one and, if a BE thread is
  running above the cap, it is preempted in favour of a parked server
  thread of the most backlogged latency app (or force-idled when none
  is parked, leaving the core hot for the next arrival burst);
* when the worst p99 has stayed below ``low_watermark * slo_p99_ns``
  for ``hysteresis_periods`` consecutive periods, one core is
  **returned** to the best-effort pool.

The asymmetry (harvest instantly, return reluctantly) is the standard
control-theory guard against oscillation when load sits near a
threshold.  All state is deterministic: windows are bounded deques,
ties break in core/app iteration order, and no randomness is used.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional

from repro.sched.policy import (
    Decision, Idle, Preempt, Run, SchedPolicy, register_policy)

#: default SLO budget on per-app p99 latency
DEFAULT_SLO_P99_US = 200.0
#: how often the control law runs (piggybacked on the scheduler tick)
DEFAULT_CONTROL_PERIOD_NS = 100_000


@register_policy
class SloAutoscalePolicy(SchedPolicy):
    """Harvest/return best-effort cores to keep latency p99 in budget."""

    name = "autoscale"

    def __init__(self,
                 slo_p99_us: float = DEFAULT_SLO_P99_US,
                 control_period_ns: int = DEFAULT_CONTROL_PERIOD_NS,
                 window: int = 512,
                 min_samples: int = 32,
                 low_watermark: float = 0.5,
                 hysteresis_periods: int = 3,
                 min_be_cores: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.slo_p99_ns = int(slo_p99_us * 1_000)
        self.control_period_ns = control_period_ns
        self.window = window
        self.min_samples = min_samples
        self.low_watermark = low_watermark
        self.hysteresis_periods = hysteresis_periods
        self.min_be_cores = min_be_cores
        #: BE-core cap; None until the first tick (bind() runs before
        #: the mechanism builds its core table, so the total core count
        #: is not knowable yet)
        self.be_allowed: Optional[int] = None
        self._total_cores = 0
        self._windows: Dict[str, Deque[int]] = {}
        self._last_control_ns = 0
        self._calm_streak = 0
        self.harvests = 0
        self.returns = 0

    # -- bookkeeping ----------------------------------------------------
    def on_app_added(self, app_state) -> None:
        if app_state.app.is_latency:
            self._windows[app_state.app.name] = deque(maxlen=self.window)

    def on_app_removed(self, app_state) -> None:
        self._windows.pop(app_state.app.name, None)

    def on_request_done(self, core_state, request) -> None:
        window = self._windows.get(request.app.name)
        if window is not None:
            window.append(request.latency_ns(self.ctx.now))

    def worst_p99_ns(self) -> Optional[int]:
        """Largest per-app p99 across apps with enough samples."""
        worst = None
        for window in self._windows.values():
            if len(window) < self.min_samples:
                continue
            ordered = sorted(window)
            p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            if worst is None or p99 > worst:
                worst = p99
        return worst

    def _be_running(self) -> int:
        return sum(1 for cs in self.ctx.core_states() if cs.kind == "B")

    # -- capped best-effort admission -----------------------------------
    def on_core_idle(self, core_state) -> Decision:
        head = core_state.fifo.peek()
        if head is not None:
            return Run(head, core_state.core.id)
        if self.be_allowed is not None \
                and self._be_running() >= self.be_allowed:
            # Harvested core: hold it in UMWAIT for latency work even
            # though best-effort threads are runnable.
            return Idle(core_state.core.id)
        be_thread = self.ctx.next_be_thread()
        if be_thread is not None:
            return Run(be_thread, core_state.core.id)
        return Idle(core_state.core.id)

    # -- control law ----------------------------------------------------
    def on_tick(self) -> Iterator[Decision]:
        if self.be_allowed is None:
            self._total_cores = sum(1 for _ in self.ctx.core_states())
            self.be_allowed = self._total_cores
        now = self.ctx.now
        if now - self._last_control_ns >= self.control_period_ns:
            self._last_control_ns = now
            yield from self._control()
        yield from super().on_tick()

    def _control(self) -> Iterator[Decision]:
        worst = self.worst_p99_ns()
        if worst is None:
            return
        ledger = getattr(self.ctx, "ledger", None)
        if worst > self.slo_p99_ns:
            self._calm_streak = 0
            if self.be_allowed > self.min_be_cores:
                self.be_allowed -= 1
                self.harvests += 1
                if ledger is not None and ledger.enabled:
                    ledger.count_op("autoscale:harvest", domain="policy")
                yield from self._evict_excess_be()
        elif worst < self.low_watermark * self.slo_p99_ns:
            self._calm_streak += 1
            if self._calm_streak >= self.hysteresis_periods \
                    and self.be_allowed < self._total_cores:
                self.be_allowed += 1
                self.returns += 1
                if ledger is not None and ledger.enabled:
                    ledger.count_op("autoscale:return", domain="policy")
                self._calm_streak = 0
        else:
            self._calm_streak = 0

    def _evict_excess_be(self) -> Iterator[Decision]:
        """Preempt BE cores above the cap, handing each to the most
        backlogged latency app (forced idle when none has a parked
        server — the core stays hot for the next placement round)."""
        excess = self._be_running() - self.be_allowed
        if excess <= 0:
            return
        for core_state in self.ctx.core_states():
            if excess <= 0:
                break
            if core_state.kind != "B":
                continue
            incoming = None
            backlog = 0
            for app_state in self.ctx.app_states():
                if not app_state.app.is_latency or not app_state.parked:
                    continue
                if len(app_state.app.queue) >= backlog:
                    incoming = app_state.parked[0]
                    backlog = len(app_state.app.queue)
            ledger = getattr(self.ctx, "ledger", None)
            if ledger is not None and ledger.enabled:
                ledger.count_op("autoscale:cap_preempt",
                                core=core_state.core.id, domain="policy")
            yield Preempt(core_state.core.id, core_state.thread, incoming)
            excess -= 1

    # -- reporting ------------------------------------------------------
    def scaling_snapshot(self) -> Dict:
        """JSON-friendly controller state for the run report."""
        return {
            "be_allowed": self.be_allowed,
            "total_cores": self._total_cores,
            "harvests": self.harvests,
            "returns": self.returns,
            "worst_p99_ns": self.worst_p99_ns(),
        }
