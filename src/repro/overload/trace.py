"""Trace-driven load shaping (diurnal curves, flash crowds).

A :class:`LoadTrace` is a piecewise-constant multiplier over the run:
at each phase boundary every attached generator's offered rate becomes
``base_rate * multiplier``.  Both direct :class:`OpenLoopSource`s and
the net fabric's client-machine workloads re-read their ``rate_mops``
on every arrival tick, so shaping is a pure rate rewrite — the arrival
RNG streams are untouched and a run with a flat trace (all multipliers
1.0) is byte-identical to an unshaped run.

Multipliers must be positive: a generator whose rate hits zero stops
ticking and would never observe a later phase.  Express a lull as a
small multiplier (0.05), not zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.units import MS


@dataclass(frozen=True)
class LoadPhase:
    """From ``at_ms`` onward, offered load = base rate × ``multiplier``."""

    at_ms: float
    multiplier: float


@dataclass(frozen=True)
class LoadTrace:
    """A piecewise-constant load curve (frozen, picklable)."""

    phases: Tuple[LoadPhase, ...]

    def __post_init__(self) -> None:
        last = -1.0
        for phase in self.phases:
            if phase.multiplier <= 0:
                raise ValueError(
                    f"multiplier must be positive, got {phase.multiplier} "
                    f"at {phase.at_ms} ms (a zero-rate source stops "
                    "ticking and never recovers)")
            if phase.at_ms <= last:
                raise ValueError("phases must have increasing at_ms")
            last = phase.at_ms

    @property
    def peak_multiplier(self) -> float:
        return max(p.multiplier for p in self.phases)

    @classmethod
    def from_rates(cls, base_rate: float, epoch_ms: float,
                   rates: Sequence[float],
                   floor: float = 1e-4) -> "LoadTrace":
        """A trace that replays an absolute per-epoch rate timeline.

        ``rates[e]`` is the offered rate (same unit as ``base_rate``)
        through epoch ``e`` of length ``epoch_ms``; the multiplier for
        each phase is ``rate / base_rate``, clamped to ``floor`` so a
        zero-rate epoch (a server the balancer assigned nothing) never
        stops the generator from observing later phases.  Consecutive
        equal multipliers collapse into one phase.  The cluster layer
        uses this to hand every server its balancer-assigned load
        curve (``repro.cluster``).
        """
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive: {base_rate}")
        phases: List[LoadPhase] = []
        last = None
        for epoch, rate in enumerate(rates):
            multiplier = max(floor, rate / base_rate)
            if last is None or multiplier != last:
                phases.append(LoadPhase(at_ms=epoch * epoch_ms,
                                        multiplier=multiplier))
                last = multiplier
        if not phases:
            phases.append(LoadPhase(at_ms=0.0, multiplier=1.0))
        return cls(phases=tuple(phases))


def flash_crowd_trace(sim_ms: float, spike_factor: float = 10.0) -> LoadTrace:
    """The scenario trace: a diurnal ramp with a ``spike_factor``× flash
    crowd through the middle of the run, then decay back to baseline.

    Shape (fractions of ``sim_ms``): calm morning at 0.6×, build to
    1.0×, the spike holds from 50% to 65% of the run, then an elevated
    tail (the crowd leaves slowly) and return to 0.8×.
    """
    t = sim_ms
    return LoadTrace(phases=(
        LoadPhase(at_ms=0.0, multiplier=0.6),
        LoadPhase(at_ms=0.20 * t, multiplier=0.8),
        LoadPhase(at_ms=0.35 * t, multiplier=1.0),
        LoadPhase(at_ms=0.50 * t, multiplier=spike_factor),
        LoadPhase(at_ms=0.65 * t, multiplier=1.2),
        LoadPhase(at_ms=0.80 * t, multiplier=0.8),
    ))


class LoadShaper:
    """Applies a :class:`LoadTrace` to attached load generators."""

    def __init__(self, sim: Simulator, trace: LoadTrace) -> None:
        self.sim = sim
        self.trace = trace
        #: (object with a mutable ``rate_mops``, its base rate)
        self._targets: List[Tuple[object, float]] = []
        self.applied = 0

    def attach_source(self, source) -> None:
        """Shape a direct-submit :class:`OpenLoopSource`."""
        self._targets.append((source, source.rate_mops))

    def attach_fabric(self, fabric) -> None:
        """Shape every client-machine workload on a net fabric."""
        for machine in fabric.machines:
            for workload in machine.workloads:
                self._targets.append((workload, workload.rate_mops))

    def start(self) -> None:
        for phase in self.trace.phases:
            self.sim.at(int(phase.at_ms * MS), self._apply, phase.multiplier)

    def _apply(self, multiplier: float) -> None:
        for target, base_rate in self._targets:
            target.rate_mops = base_rate * multiplier
        self.applied += 1
