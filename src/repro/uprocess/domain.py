"""Scheduling domains (§3.1, §4.1).

A domain groups up to 13 uProcesses that share one SMAS and one set of
CPU cores, and owns the machinery that mediates between them: the call
gate, the per-core command queues, the userspace switch engine, and the
program loader.  Machines with more applications use several domains.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.hardware.machine import Core
from repro.hardware.timing import CostModel
from repro.kernel.syscalls import SyscallLayer
from repro.obs.ledger import OpLedger
from repro.uprocess.callgate import CallGate
from repro.uprocess.loader import ProgramLoader
from repro.uprocess.smas import Smas
from repro.uprocess.switch import UserspaceSwitch
from repro.uprocess.uproc import UProcess
from repro.uprocess.usignals import Command, CommandKind, CommandQueues


class SchedulingDomain:
    """A set of uProcesses timesharing a set of cores through one SMAS."""

    def __init__(self, name: str, cores: List[Core],
                 syscalls: SyscallLayer, costs: CostModel,
                 rng: Optional[random.Random] = None,
                 ledger: Optional[OpLedger] = None) -> None:
        self.name = name
        self.cores = cores
        self.syscalls = syscalls
        self.costs = costs
        #: domain machinery charges into the same ledger the syscall
        #: layer uses unless the caller wires a different one
        self.ledger = ledger if ledger is not None else syscalls.ledger
        self.smas = Smas(syscalls, num_cores=max(c.id for c in cores) + 1,
                         name=f"{name}/smas")
        self.queues = CommandQueues([core.id for core in cores])
        self.gate = CallGate(self.smas, ledger=self.ledger)
        self.switcher = UserspaceSwitch(self.smas, costs,
                                        rng or random.Random(0),
                                        ledger=self.ledger)
        self.loader = ProgramLoader(self.smas, self.gate)
        self.uprocs: List[UProcess] = []
        self.faults_shielded = 0
        #: syscall-proxy runtime serving this domain, if any; reap()
        #: notifies it so proxied descriptors are closed kernel-side
        self.runtime = None

    # ------------------------------------------------------------------
    def core_by_id(self, core_id: int) -> Core:
        for core in self.cores:
            if core.id == core_id:
                return core
        raise KeyError(f"core {core_id} is not in domain {self.name}")

    def cores_running(self, uproc: UProcess) -> List[int]:
        """Core ids whose current task belongs to ``uproc``."""
        running = []
        for core_id, task in self.smas.pipe.cpuid_to_task.items():
            if task is not None and task.uproc is uproc:
                running.append(core_id)
        return running

    # ------------------------------------------------------------------
    # Fault shielding (§4.3)
    # ------------------------------------------------------------------
    def handle_fault(self, core_id: int) -> Optional[UProcess]:
        """A fault signal arrived on ``core_id``: identify the faulty
        uProcess via CPUID_TO_TASK_MAP and broadcast kill commands to all
        cores running it.  Returns the condemned uProcess."""
        task = self.smas.pipe.cpuid_to_task.get(core_id)
        if task is None:
            return None
        uproc = task.uproc
        self.queues.broadcast_kill(uproc, self.cores_running(uproc))
        self.faults_shielded += 1
        return uproc

    def reap(self, uproc: UProcess) -> None:
        """Tear down ``uproc`` and reclaim everything it held.

        Idempotent: safe to call from the kill-command path, the
        SIGSEGV containment path, and explicit destroy in any order.
        Reclaims, in turn, the threads and descriptor map (terminate),
        stale queued commands, proxied kernel descriptors (via the
        attached runtime), the SMAS slot with its pkey revoked to 0
        until the slot is reallocated, and finally the boot kProcess
        itself (killed and unlinked from the manager's child list) —
        under create/destroy churn every one of these would otherwise
        accumulate per departed tenant.
        """
        if uproc.alive:
            uproc.terminate()
        self.queues.purge_uproc(uproc)
        if self.runtime is not None:
            self.runtime.release_uprocess(uproc)
        if uproc.slot.in_use:
            self.smas.revoke_slot(uproc.slot)
            self.smas.release_slot(uproc.slot)
            self.ledger.count_op("uproc_reap", domain="uproc")
        kproc = uproc.boot_kprocess
        if kproc.alive:
            kproc.kill()
        parent = kproc.parent
        if parent is not None and kproc in parent.children:
            parent.children.remove(kproc)
        # A fully reaped uProcess leaves the domain roster; dead-but-
        # unreaped ones stay, which is exactly what the uncontained()
        # audit looks for.
        if uproc in self.uprocs:
            self.uprocs.remove(uproc)

    def process_commands(self, core_id: int) -> List[Command]:
        """Consume the core's queue in privileged mode.

        KILL commands terminate the uProcess and release its slot; other
        command kinds are returned to the caller (the scheduler) to act
        on.
        """
        queue = self.queues.of(core_id)
        remaining: List[Command] = []
        while True:
            command = queue.pop()
            if command is None:
                break
            if command.kind is CommandKind.KILL_UPROCESS:
                uproc = command.payload
                if uproc.alive or uproc.slot.in_use:
                    self.reap(uproc)
            elif command.kind is CommandKind.DELIVER_SIGNAL and \
                    hasattr(command.payload, "destroy"):
                # §5.3: a sigqueue()d per-thread termination resolved by
                # the runtime in privileged mode.
                command.payload.destroy()
            else:
                remaining.append(command)
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SchedulingDomain {self.name} uprocs={len(self.uprocs)} "
                f"cores={[c.id for c in self.cores]}>")
