"""The shared memory address space (SMAS, §4.1, Figure 5).

One SMAS per scheduling domain, created by the manager with a single big
mmap and carved into:

* thirteen *uProcess slots* — a data area (data/heap/stacks, pkey = the
  slot's key, read-write for the owner only) and a text area (pkey = the
  slot's key but page permissions executable-only, so any uProcess can
  *execute* it — necessary for the call gate — while loads/stores are
  stopped by MPK);
* the *call gate* and *runtime text* — executable-only as well;
* the *message pipe* — readable by every uProcess, writable only in
  runtime mode; carries CPUID_TO_TASK_MAP, CPUID_TO_RUNTIME_MAP and the
  function-pointer vector the call gate dispatches through;
* the *runtime region* — runtime data and the per-core runtime stacks,
  invisible to uProcesses.

Keys: slots use pkeys 1..13, the runtime region pkey 14, the message pipe
pkey 15, and pkey 0 is left alone so each kProcess's unmanaged memory
keeps working (§4.1 footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.mpk import (
    AddressSpaceMap,
    Permission,
    PkruRegister,
    Region,
)
from repro.kernel.syscalls import SyscallLayer

MAX_UPROCESSES = 13
RUNTIME_PKEY = 14
PIPE_PKEY = 15

SMAS_BASE = 0x7000_0000_0000
SLOT_DATA_SIZE = 1 << 30          # 1 GiB of data/heap/stack per slot
SLOT_TEXT_SIZE = 64 << 20         # 64 MiB of text per slot
CALLGATE_TEXT_SIZE = 4096
RUNTIME_TEXT_SIZE = 16 << 20
PIPE_SIZE = 1 << 20
RUNTIME_REGION_SIZE = 256 << 20
RUNTIME_STACK_SIZE = 64 << 10     # per-core runtime stack


class SmasError(RuntimeError):
    """Invalid SMAS operation (slot exhaustion, double-free, ...)."""


@dataclass
class SmasSlot:
    """One uProcess's share of the SMAS."""

    index: int
    pkey: int
    data_region: Region
    text_region: Optional[Region] = None
    in_use: bool = False


class MessagePipe:
    """The unidirectional runtime->uProcess channel (read-only to apps).

    Every mutating method takes the PKRU of the writer and enforces the
    MPK write permission, so tests can demonstrate that applications
    cannot tamper with the maps or the function-pointer vector.
    """

    def __init__(self, region: Region) -> None:
        self.region = region
        #: core id -> currently mapped task (UThread) — Figure 6's
        #: CPUID_TO_TASK_MAP
        self.cpuid_to_task: Dict[int, object] = {}
        #: core id -> runtime stack pointer — CPUID_TO_RUNTIME_MAP
        self.cpuid_to_runtime_rsp: Dict[int, int] = {}
        #: name -> privileged runtime function (replaces the PLT, §4.2)
        self.func_vector: Dict[str, object] = {}

    def _check_write(self, pkru: PkruRegister) -> None:
        from repro.hardware.mpk import AccessKind, MpkFault
        if not pkru.allows(self.region.pkey, AccessKind.WRITE):
            raise MpkFault(self.region.start, AccessKind.WRITE,
                           self.region.pkey)

    def set_task(self, pkru: PkruRegister, core_id: int, task) -> None:
        self._check_write(pkru)
        self.cpuid_to_task[core_id] = task

    def set_runtime_rsp(self, pkru: PkruRegister, core_id: int,
                        rsp: int) -> None:
        self._check_write(pkru)
        self.cpuid_to_runtime_rsp[core_id] = rsp

    def register_function(self, pkru: PkruRegister, name: str, fn) -> None:
        self._check_write(pkru)
        self.func_vector[name] = fn


class Smas:
    """The shared address space of one scheduling domain."""

    def __init__(self, syscalls: SyscallLayer, num_cores: int,
                 name: str = "smas") -> None:
        self.name = name
        self.syscalls = syscalls
        self.num_cores = num_cores
        self.aspace = AddressSpaceMap(name=name)
        self.slots: List[SmasSlot] = []

        cursor = SMAS_BASE

        # --- uProcess slots (mapped now, keyed at slot allocation) ----
        for index in range(MAX_UPROCESSES):
            data = syscalls.mmap(self.aspace, cursor, SLOT_DATA_SIZE,
                                 Permission.rw(), name=f"slot{index}/data")
            cursor += SLOT_DATA_SIZE
            self.slots.append(SmasSlot(index=index, pkey=index + 1,
                                       data_region=data, text_region=None))

        for index in range(MAX_UPROCESSES):
            text = syscalls.mmap(self.aspace, cursor, SLOT_TEXT_SIZE,
                                 Permission.exec_only(),
                                 name=f"slot{index}/text")
            cursor += SLOT_TEXT_SIZE
            self.slots[index].text_region = text

        # --- call gate + runtime text (executable-only, §4.1) ----------
        self.callgate_text = syscalls.mmap(
            self.aspace, cursor, CALLGATE_TEXT_SIZE,
            Permission.exec_only(), name="callgate/text")
        cursor += CALLGATE_TEXT_SIZE
        self.runtime_text = syscalls.mmap(
            self.aspace, cursor, RUNTIME_TEXT_SIZE,
            Permission.exec_only(), name="runtime/text")
        cursor += RUNTIME_TEXT_SIZE

        # --- message pipe ----------------------------------------------
        self.pipe_region = syscalls.mmap(
            self.aspace, cursor, PIPE_SIZE, Permission.rw(), name="pipe")
        cursor += PIPE_SIZE

        # --- runtime region ---------------------------------------------
        self.runtime_region = syscalls.mmap(
            self.aspace, cursor, RUNTIME_REGION_SIZE, Permission.rw(),
            name="runtime/data")
        self.limit = cursor + RUNTIME_REGION_SIZE

        # --- protection keys --------------------------------------------
        # Allocate the 15 keys (1..15); the manager binds them.
        allocated = [syscalls.pkey_alloc(self.aspace) for _ in range(15)]
        if allocated != list(range(1, 16)):
            raise SmasError(f"unexpected pkey allocation order: {allocated}")
        for slot in self.slots:
            syscalls.pkey_mprotect(self.aspace, slot.data_region, slot.pkey)
            # The text segment shares the slot's key; exec-only page
            # permissions make it callable-but-unreadable (§4.1).
            syscalls.pkey_mprotect(self.aspace, slot.text_region, slot.pkey)
        syscalls.pkey_mprotect(self.aspace, self.callgate_text, RUNTIME_PKEY)
        syscalls.pkey_mprotect(self.aspace, self.runtime_text, RUNTIME_PKEY)
        syscalls.pkey_mprotect(self.aspace, self.runtime_region, RUNTIME_PKEY)
        syscalls.pkey_mprotect(self.aspace, self.pipe_region, PIPE_PKEY)

        self.pipe = MessagePipe(self.pipe_region)

        # Per-core runtime stacks live at the top of the runtime region.
        self._runtime_stacks: Dict[int, int] = {}
        stack_base = self.runtime_region.start
        for core_id in range(num_cores):
            rsp = stack_base + (core_id + 1) * RUNTIME_STACK_SIZE
            self._runtime_stacks[core_id] = rsp
            self.pipe.set_runtime_rsp(self.runtime_pkru(), core_id, rsp)

    # ------------------------------------------------------------------
    # PKRU values
    # ------------------------------------------------------------------
    #: memoized app-mode PKRU *values* per pkey (the bitmap build walks
    #: all 16 keys and this runs once per context switch); instances are
    #: still constructed fresh because PkruRegister is mutable
    _APP_PKRU_VALUES: Dict[int, int] = {}

    @staticmethod
    def runtime_pkru() -> PkruRegister:
        """Privileged mode: every key accessible."""
        return PkruRegister(0)

    @staticmethod
    def app_pkru(pkey: int) -> PkruRegister:
        """uProcess mode: own slot RW, message pipe RO, all else denied."""
        value = Smas._APP_PKRU_VALUES.get(pkey)
        if value is None:
            value = PkruRegister.build({pkey: True, PIPE_PKEY: False}).value
            Smas._APP_PKRU_VALUES[pkey] = value
        return PkruRegister(value)

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def allocate_slot(self) -> SmasSlot:
        for slot in self.slots:
            if not slot.in_use:
                slot.in_use = True
                return slot
        raise SmasError(
            f"scheduling domain full: {MAX_UPROCESSES} uProcesses already "
            "exist; create another domain (§4.1)"
        )

    def release_slot(self, slot: SmasSlot) -> None:
        if not slot.in_use:
            raise SmasError(f"slot {slot.index} is not in use")
        slot.in_use = False

    def revoke_slot(self, slot: SmasSlot) -> None:
        """Rebind a dead slot's regions to pkey 0 (libmpk-style revocation).

        Until the slot is reallocated and
        :meth:`Manager.create_uprocess` rebinds the slot's own key, no
        app-mode PKRU grants access to the stale mappings, so a freed
        slot cannot be read through a lingering key grant.
        """
        self.syscalls.pkey_mprotect(self.aspace, slot.data_region, 0)
        if slot.text_region is not None:
            self.syscalls.pkey_mprotect(self.aspace, slot.text_region, 0)

    def runtime_stack(self, core_id: int) -> int:
        return self._runtime_stacks[core_id]

    def slots_in_use(self) -> int:
        return sum(1 for slot in self.slots if slot.in_use)
