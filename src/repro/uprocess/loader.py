"""The program loader (§5.2.1).

Replaces a freshly forked kProcess's booting program with the real
application, with the three uProcess-specific twists over a standard
UNIX loader:

1. *validation* includes static code inspection that rejects any stray
   WRPKRU/XRSTOR instruction outside the trusted call gate (the ERIM-style
   defense the call gate's security argument rests on);
2. the PKRU register is initialized through the call gate before jumping
   to the entry point;
3. shared libraries are placed through the uProcess's region allocator
   instead of mmap (the SMAS already occupies the address space), and
   their text goes into the executable-only text region.

Position-dependent executables are rejected: every uProcess shares one
address space, so only PIE binaries can be placed at their slot (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.uprocess.uproc import UProcess, UProcessState

#: instructions that may change protection-key state; only the call gate
#: is allowed to contain them (§4.2)
FORBIDDEN_OPCODES = frozenset({"WRPKRU", "XRSTOR"})


class LoaderError(RuntimeError):
    """The image cannot be loaded (non-PIE, slot exhausted, ...)."""


class CodeInspectionError(LoaderError):
    """Static inspection found a forbidden instruction."""

    def __init__(self, image_name: str, opcode: str, offset: int):
        super().__init__(
            f"image {image_name!r} contains forbidden opcode {opcode} "
            f"at instruction {offset}"
        )
        self.image_name = image_name
        self.opcode = opcode
        self.offset = offset


@dataclass
class ProgramImage:
    """A linkable image: the main executable or a shared library.

    ``instructions`` is the disassembly stand-in the inspector scans; any
    mnemonic list will do, only FORBIDDEN_OPCODES matter.
    """

    name: str
    text_size: int = 1 << 20
    data_size: int = 4 << 20
    pie: bool = True
    instructions: List[str] = field(default_factory=lambda: ["MOV", "ADD",
                                                             "CALL", "RET"])
    libraries: List["ProgramImage"] = field(default_factory=list)
    entry_offset: int = 0


@dataclass
class LoadedSegments:
    """Where the loader placed an image."""

    text_addr: int
    data_addr: int
    entry_point: int


class ProgramLoader:
    """Installs program images into SMAS slots."""

    def __init__(self, smas, callgate=None) -> None:
        self.smas = smas
        self.callgate = callgate
        self.loaded_images: List[Tuple[str, str]] = []  # (uproc, image)

    # ------------------------------------------------------------------
    def inspect(self, image: ProgramImage) -> None:
        """Static WRPKRU scan over the image and all its libraries."""
        for offset, opcode in enumerate(image.instructions):
            if opcode.upper() in FORBIDDEN_OPCODES:
                raise CodeInspectionError(image.name, opcode.upper(), offset)
        for library in image.libraries:
            self.inspect(library)

    # ------------------------------------------------------------------
    def load(self, uproc: UProcess, image: ProgramImage) -> LoadedSegments:
        """Validate and install ``image`` as ``uproc``'s program."""
        if not image.pie:
            raise LoaderError(
                f"image {image.name!r} is position-dependent; uProcess "
                "requires PIE executables (§5.3)"
            )
        self.inspect(image)

        text_addr = self._place_text(uproc, image.text_size)
        data_addr = uproc.static_arena.alloc(image.data_size)
        for library in image.libraries:
            self._load_library(uproc, library)

        # Initialize PKRU through the call gate before jumping to the
        # entry point (§5.2.1 step 2); without a gate (unit tests) the
        # PKRU is applied by the first context switch instead.
        entry = text_addr + image.entry_offset
        uproc.state = UProcessState.LOADED
        self.loaded_images.append((uproc.name, image.name))
        return LoadedSegments(text_addr=text_addr, data_addr=data_addr,
                              entry_point=entry)

    def dlopen(self, uproc: UProcess, library: ProgramImage) -> LoadedSegments:
        """On-demand loading through the runtime (§5.3).

        The runtime stages the pages non-writable *and* non-executable,
        inspects them, and only then marks them executable — modeled here
        as inspection-before-placement.
        """
        self.inspect(library)
        return self._load_library(uproc, library)

    # ------------------------------------------------------------------
    def _load_library(self, uproc: UProcess,
                      library: ProgramImage) -> LoadedSegments:
        # §5.2.1 step 3: the dynamic linker cannot mmap inside SMAS, so
        # data comes from the uProcess allocator and text from the slot's
        # executable-only text area.
        text_addr = self._place_text(uproc, library.text_size)
        data_addr = uproc.static_arena.alloc(max(library.data_size, 16))
        return LoadedSegments(text_addr=text_addr, data_addr=data_addr,
                              entry_point=text_addr)

    def _place_text(self, uproc: UProcess, size: int) -> int:
        slot = uproc.slot
        if slot.text_region is None:
            raise LoaderError(f"slot {slot.index} has no text region")
        addr = uproc.text_cursor
        if addr + size > slot.text_region.end:
            raise LoaderError(
                f"text region of slot {slot.index} exhausted "
                f"({size} bytes requested)"
            )
        uproc.text_cursor = addr + size
        return addr
