"""Userspace threads (§5.2.2).

"Conceptually, a thread is just a collection of states (registers, stack,
thread-local storage, etc.) and a CPU core operating on these states."
VESSEL manages those states entirely in userspace: creating a thread
allocates a stack and TLS block from the owning uProcess's region and a
context structure tracked by the runtime; the kernel never learns these
threads exist.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.uprocess.uproc import UProcess

_tid_counter = itertools.count(1)

DEFAULT_STACK_SIZE = 128 << 10
DEFAULT_TLS_SIZE = 4 << 10


class UThreadState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    PARKED = "parked"      #: parked itself via the call gate (§4.4)
    DEAD = "dead"


@dataclass
class ThreadContext:
    """The saved register state of a suspended thread.

    ``return_addr`` is the instruction the core jumps back to when the
    thread is resumed — after a preemption this is "Line 7 of Listing 1"
    (the point inside the call gate after the runtime call), see Figure 6.
    """

    rsp: int = 0
    pc: int = 0
    return_addr: int = 0
    #: scalar stand-in for the general-purpose register file; switch code
    #: saves/restores it and tests can detect lost updates
    regs_checksum: int = 0


class UThread:
    """One userspace thread of a uProcess."""

    def __init__(self, uproc: UProcess, name: str = "",
                 stack_size: int = DEFAULT_STACK_SIZE) -> None:
        if not uproc.alive:
            raise RuntimeError(f"uProcess {uproc.name} is terminated")
        self.tid = next(_tid_counter)
        self.uproc = uproc
        self.name = name or f"{uproc.name}/t{self.tid}"
        self.stack_base = uproc.static_arena.alloc(stack_size)
        self.stack_size = stack_size
        self.tls = uproc.static_arena.alloc(DEFAULT_TLS_SIZE)
        self.context = ThreadContext(
            rsp=self.stack_base + stack_size,  # stacks grow down
            pc=uproc.slot.text_region.start if uproc.slot.text_region else 0,
        )
        self.state = UThreadState.RUNNABLE
        #: core currently running this thread, if any
        self.core_id: Optional[int] = None
        #: opaque scheduler payload (pending request, batch work, ...)
        self.payload = None
        #: fault-injection flag: a rogue thread never acts on preemption
        #: commands (it runs with user interrupts masked, §4.3's
        #: non-cooperative case) and must be evicted via the kernel path
        self.rogue = False
        uproc.threads.append(self)
        # Thread lifecycle ops are counted in the domain-wide ledger
        # (reachable through the SMAS's syscall layer); creation costs no
        # modeled nanoseconds because the kernel never participates.
        uproc.smas.syscalls.ledger.count_op("uthread_create", domain="uproc")

    def destroy(self) -> None:
        """Release the stack and TLS back to the arena."""
        if self.state is not UThreadState.DEAD:
            self.state = UThreadState.DEAD
            self.uproc.smas.syscalls.ledger.count_op("uthread_destroy",
                                                     domain="uproc")
        if self.uproc.static_arena.owns(self.stack_base):
            self.uproc.static_arena.free(self.stack_base)
        if self.uproc.static_arena.owns(self.tls):
            self.uproc.static_arena.free(self.tls)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UThread {self.name} {self.state.value} core={self.core_id}>"
