"""Arena allocator for uProcess regions (§5.2.3).

glibc's malloc assumes it owns the process heap layout, which breaks when
thirteen applications' heaps live in one address space, so VESSEL preloads
jemalloc configured to draw from the uProcess region instead of mmap.
This module models that: a first-fit free-list allocator with size-class
rounding and coalescing-on-free over a fixed [base, base+size) range that
is already MPK-protected by the manager.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class OutOfMemoryError(MemoryError):
    """The arena cannot satisfy the request."""


#: jemalloc-style small size classes (bytes); larger requests round to pages
_SIZE_CLASSES = [
    16, 32, 48, 64, 80, 96, 112, 128,
    160, 192, 224, 256, 320, 384, 448, 512,
    640, 768, 896, 1024, 1280, 1536, 1792, 2048,
    2560, 3072, 3584, 4096,
]
_PAGE = 4096


def round_to_class(size: int) -> int:
    """Round a request to its allocation class (jemalloc-style)."""
    if size <= 0:
        raise ValueError(f"allocation size must be positive: {size}")
    for cls in _SIZE_CLASSES:
        if size <= cls:
            return cls
    return (size + _PAGE - 1) // _PAGE * _PAGE


class RegionAllocator:
    """First-fit allocator with address-ordered free list and coalescing."""

    def __init__(self, base: int, size: int, name: str = "") -> None:
        if size <= 0:
            raise ValueError(f"arena size must be positive: {size}")
        self.base = base
        self.size = size
        self.name = name
        #: address-ordered list of (start, size) free extents
        self._free: List[Tuple[int, int]] = [(base, size)]
        self._allocated: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes (rounded to a size class); returns addr."""
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two: {align}")
        need = round_to_class(size)
        for index, (start, extent) in enumerate(self._free):
            addr = (start + align - 1) & ~(align - 1)
            waste = addr - start
            if extent >= waste + need:
                # Split the extent: [start,addr) stays free (if non-empty),
                # [addr, addr+need) is allocated, tail stays free.
                tail_start = addr + need
                tail_size = start + extent - tail_start
                replacement = []
                if waste:
                    replacement.append((start, waste))
                if tail_size:
                    replacement.append((tail_start, tail_size))
                self._free[index:index + 1] = replacement
                self._allocated[addr] = need
                return addr
        raise OutOfMemoryError(
            f"arena {self.name!r}: cannot allocate {need} bytes "
            f"({self.free_bytes()} free, fragmented)"
        )

    def free(self, addr: int) -> None:
        """Release a block; coalesces with free neighbours."""
        size = self._allocated.pop(addr, None)
        if size is None:
            raise ValueError(f"arena {self.name!r}: {addr:#x} is not allocated")
        # Insert in address order.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        # Merge with successor first, then predecessor.
        if index + 1 < len(self._free):
            start, size = self._free[index]
            nstart, nsize = self._free[index + 1]
            if start + size == nstart:
                self._free[index:index + 2] = [(start, size + nsize)]
        if index > 0:
            pstart, psize = self._free[index - 1]
            start, size = self._free[index]
            if pstart + psize == start:
                self._free[index - 1:index + 1] = [(pstart, psize + size)]

    # ------------------------------------------------------------------
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    def owns(self, addr: int) -> bool:
        """Whether ``addr`` is the start of a live allocation."""
        return addr in self._allocated

    def block_size(self, addr: int) -> int:
        try:
            return self._allocated[addr]
        except KeyError:
            raise ValueError(f"{addr:#x} is not allocated") from None

    def check_invariants(self) -> None:
        """Free list is address-ordered, in-range, non-overlapping, and
        disjoint from allocations; total bytes are conserved."""
        prev_end = self.base - 1
        for start, size in self._free:
            if size <= 0:
                raise AssertionError(f"empty free extent at {start:#x}")
            if start <= prev_end:
                raise AssertionError(
                    f"free list unordered/overlapping near {start:#x}"
                )
            if start < self.base or start + size > self.base + self.size:
                raise AssertionError(f"free extent out of range at {start:#x}")
            prev_end = start + size
        spans = sorted(
            [(s, z, "free") for s, z in self._free]
            + [(s, z, "used") for s, z in self._allocated.items()]
        )
        prev_end = self.base
        total = 0
        for start, size, _ in spans:
            if start < prev_end:
                raise AssertionError(f"overlap at {start:#x}")
            prev_end = start + size
            total += size
        if total != self.size:
            raise AssertionError(
                f"bytes not conserved: {total} != {self.size}"
            )
