"""Executable models of the §4.2 attack classes.

Each attack returns an :class:`AttackOutcome` describing whether the
attacker gained anything.  The security tests assert every attack is
defeated with the defenses on, and — for the defenses with ablation
toggles — that the attack *succeeds* when the corresponding defense is
switched off (i.e. the defense is load-bearing, not decorative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.machine import Core
from repro.hardware.mpk import AccessKind, MpkFault
from repro.uprocess.callgate import CallGate
from repro.uprocess.loader import (
    CodeInspectionError,
    ProgramImage,
    ProgramLoader,
)
from repro.uprocess.smas import Smas
from repro.uprocess.threads import UThread
from repro.uprocess.uproc import UProcess


@dataclass
class AttackOutcome:
    name: str
    succeeded: bool
    detail: str = ""


def attack_embedded_wrpkru(loader: ProgramLoader, uproc: UProcess) -> AttackOutcome:
    """Ship a binary with a raw WRPKRU to self-elevate at runtime."""
    evil = ProgramImage(
        name="evil-wrpkru",
        instructions=["MOV", "WRPKRU", "RET"],
    )
    try:
        loader.load(uproc, evil)
    except CodeInspectionError as exc:
        return AttackOutcome("embedded-wrpkru", False, str(exc))
    return AttackOutcome("embedded-wrpkru", True,
                         "loader accepted a WRPKRU-carrying binary")


def attack_dlopen_wrpkru(loader: ProgramLoader, uproc: UProcess) -> AttackOutcome:
    """Sneak the WRPKRU in later through on-demand library loading."""
    evil_lib = ProgramImage(
        name="evil-lib",
        instructions=["PUSH", "XRSTOR", "POP"],
    )
    try:
        loader.dlopen(uproc, evil_lib)
    except CodeInspectionError as exc:
        return AttackOutcome("dlopen-wrpkru", False, str(exc))
    return AttackOutcome("dlopen-wrpkru", True,
                         "dlopen accepted an XRSTOR-carrying library")


def attack_control_flow_hijack(gate: CallGate, core: Core) -> AttackOutcome:
    """Jump straight to the PKRU-restore instruction with a forged eax.

    The forged value 0 would grant access to every key.
    """
    final = gate.hijack_stage3(core, forged_pkru=0)
    current = gate.smas.pipe.cpuid_to_task.get(core.id)
    legitimate = current.uproc.pkru().value if current is not None else None
    if final == 0 and legitimate != 0:
        return AttackOutcome("control-flow-hijack", True,
                             "forged PKRU survived the gate exit")
    return AttackOutcome(
        "control-flow-hijack", False,
        f"recheck loop restored PKRU to {final:#010x}",
    )


def attack_plt_overwrite(smas: Smas, attacker: UProcess) -> AttackOutcome:
    """Repoint a privileged function at attacker code.

    The function-pointer vector lives in the message pipe, which is
    read-only under every application PKRU, so the write faults.
    """
    def evil_function():  # pragma: no cover - must never run
        raise AssertionError("attacker code executed in privileged mode")

    try:
        smas.pipe.register_function(attacker.pkru(), "park", evil_function)
    except MpkFault as exc:
        return AttackOutcome("plt-overwrite", False, str(exc))
    return AttackOutcome("plt-overwrite", True,
                         "application overwrote the function vector")


def attack_return_address(gate: CallGate, smas: Smas, core: Core,
                          caller: UThread, sibling: UThread) -> AttackOutcome:
    """A sibling thread rewrites the caller's return address mid-call.

    With the stack switch the return address lives on the per-core runtime
    stack (runtime pkey): the sibling's store faults.  Without it the
    address sits on the caller's own stack, writable by every thread of
    the same uProcess, and the attack lands.
    """
    target = gate.return_address_location(core, caller)
    try:
        smas.aspace.check_access(target, AccessKind.WRITE,
                                 sibling.uproc.pkru())
    except MpkFault as exc:
        return AttackOutcome("return-address-overwrite", False, str(exc))
    return AttackOutcome(
        "return-address-overwrite", True,
        f"sibling can write the return address at {target:#x}",
    )


def attack_direct_runtime_read(smas: Smas, core: Core,
                               attacker: UProcess) -> AttackOutcome:
    """Plain data theft: read the runtime region from application mode."""
    addr = smas.runtime_region.start + 64
    try:
        smas.aspace.check_access(addr, AccessKind.READ, attacker.pkru())
    except MpkFault as exc:
        return AttackOutcome("runtime-read", False, str(exc))
    return AttackOutcome("runtime-read", True, "runtime data readable")


def attack_cross_uprocess_read(smas: Smas, attacker: UProcess,
                               victim: UProcess) -> AttackOutcome:
    """Read another uProcess's data region."""
    addr = victim.slot.data_region.start + 128
    try:
        smas.aspace.check_access(addr, AccessKind.READ, attacker.pkru())
    except MpkFault as exc:
        return AttackOutcome("cross-uprocess-read", False, str(exc))
    return AttackOutcome("cross-uprocess-read", True,
                         f"{attacker.name} read {victim.name}'s data")


def attack_jump_into_foreign_text(smas: Smas, attacker: UProcess,
                                  victim: UProcess) -> AttackOutcome:
    """Jump into another uProcess's text without the call gate (§4.1).

    The *fetch* succeeds (text is executable-only and PKRU does not gate
    instruction fetches — that is what makes the call gate callable), but
    the very first load from the victim's data faults, so the paper deems
    this necessary and safe.  The attack is counted as defeated if the
    data access faults.
    """
    text_addr = victim.slot.text_region.start
    smas.aspace.check_access(text_addr, AccessKind.EXECUTE, attacker.pkru())
    data_addr = victim.slot.data_region.start
    try:
        smas.aspace.check_access(data_addr, AccessKind.READ, attacker.pkru())
    except MpkFault as exc:
        return AttackOutcome("foreign-text-jump", False,
                             f"fetch allowed, data load faulted: {exc}")
    return AttackOutcome("foreign-text-jump", True,
                         "foreign text executed with data access")


ALL_ATTACKS = [
    "embedded-wrpkru",
    "dlopen-wrpkru",
    "control-flow-hijack",
    "plt-overwrite",
    "return-address-overwrite",
    "runtime-read",
    "cross-uprocess-read",
    "foreign-text-jump",
]
