"""The userspace context switch (§4.4, Figure 6).

Both switch flavours end the same way — the core's PKRU is rewritten to
the target uProcess's value and CPUID_TO_TASK_MAP is updated — and differ
only in how the runtime gains control:

* *park*: the running thread enters the call gate voluntarily
  (Table 1: 0.161 µs on average);
* *preempt*: the scheduler pushes a command and sends a Uintr; the
  victim's handler enters the call gate (adds send + delivery + uiret).

The functional effects execute against real objects (PKRU register,
message pipe, thread contexts) and the returned cost feeds the
performance layer.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.hardware.machine import Core, CoreMode
from repro.hardware.timing import CostModel
from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.uprocess.smas import Smas
from repro.uprocess.threads import UThread, UThreadState


class UserspaceSwitch:
    """Executes uProcess context switches on cores."""

    def __init__(self, smas: Smas, costs: CostModel,
                 rng: Optional[random.Random] = None,
                 ledger: Optional[OpLedger] = None) -> None:
        self.smas = smas
        self.costs = costs
        self.rng = rng or random.Random(0)
        self.ledger = ledger or NULL_LEDGER
        self.park_switches = 0
        self.preempt_switches = 0
        # One runtime-mode PKRU reused for pipe writes (never mutated;
        # allocating a fresh one per switch showed up in profiles).
        self._runtime_pkru = Smas.runtime_pkru()
        #: precomputed (domain, op) charge handles; rebuilt if the
        #: ledger is swapped (see _switch_handles)
        self._handles = None
        self._handles_ledger = None

    # ------------------------------------------------------------------
    def install(self, core: Core, thread: UThread) -> None:
        """Put ``thread`` on ``core`` without a from-thread (cold start)."""
        if thread.state is UThreadState.RUNNING \
                and thread.core_id is not None and thread.core_id != core.id:
            raise RuntimeError(
                f"thread {thread.name} is already running on core "
                f"{thread.core_id}"
            )
        pipe = self.smas.pipe
        pipe.set_task(self._runtime_pkru, core.id, thread)
        core.pkru.wrpkru(thread.uproc.pkru().value)
        core.mode = CoreMode.USER
        thread.state = UThreadState.RUNNING
        thread.core_id = core.id

    def switch(self, core: Core, to_thread: UThread,
               preempt: bool = False) -> int:
        """Switch ``core`` to ``to_thread``; returns the modeled cost (ns).

        The previous thread (if any) must already have been suspended by
        the caller (its state set and remaining work re-queued); this
        routine performs the Figure 6 state transition: save side is the
        caller's, here we update the map, restore the target context, and
        flip the PKRU.
        """
        if to_thread.state is UThreadState.DEAD:
            raise RuntimeError(f"switching to dead thread {to_thread.name}")
        if to_thread.state is UThreadState.RUNNING \
                and to_thread.core_id is not None \
                and to_thread.core_id != core.id:
            raise RuntimeError(
                f"thread {to_thread.name} is already running on core "
                f"{to_thread.core_id}; scheduling it on core {core.id} "
                "would run one context on two cores"
            )
        pipe = self.smas.pipe
        previous = pipe.cpuid_to_task.get(core.id)
        if previous is not None and previous.core_id == core.id:
            previous.core_id = None

        # Privileged-mode effects (we are conceptually inside the gate).
        core.mode = CoreMode.RUNTIME
        pipe.set_task(self._runtime_pkru, core.id, to_thread)
        to_thread.state = UThreadState.RUNNING
        to_thread.core_id = core.id

        # Resume at the saved return address (Line 7 of Listing 1) with
        # the target's stack, then drop privilege to the target's PKRU.
        target_pkru = to_thread.uproc.pkru().value
        core.pkru.wrpkru(target_pkru)
        core.mode = CoreMode.USER

        if preempt:
            self.preempt_switches += 1
            cost = self.costs.vessel_preempt_switch_ns()
        else:
            self.park_switches += 1
            cost = self.costs.vessel_park_switch_ns()
        noise = self.costs.vessel_switch_noise_ns(self.rng)
        jitter = self.costs.jitter_ns(self.rng)
        if self.ledger.enabled:
            self._charge_switch_ops(core.id, preempt, noise, jitter)
        return cost + noise + jitter

    _SWITCH_OPS = ("uctx_save", "callgate_enter", "runtime_queue",
                   "uctx_restore", "callgate_exit", "uiret",
                   "switch_noise", "switch_jitter")

    def _switch_handles(self) -> dict:
        """Per-op :class:`~repro.obs.ledger.ChargeHandle` map.

        The switch path charges the same eight ops for every one of the
        millions of switches a sweep executes; precomputed handles skip
        the ledger's per-charge key lookup (the ``OpLedger.charge``
        fast path the bench harness measures).
        """
        if self._handles is None or self._handles_ledger is not self.ledger:
            self._handles = {op: self.ledger.handle("uproc", op)
                             for op in self._SWITCH_OPS}
            self._handles_ledger = self.ledger
        return self._handles

    def _charge_switch_ops(self, core_id: int, preempt: bool,
                           noise: int, jitter: int) -> None:
        """Itemize one switch into the ledger (Table 1's breakdown).

        The park-path rows sum exactly to the end-to-end cost
        :meth:`switch` returns — no unattributed nanoseconds.  For a
        preemptive switch only the handler-side ``uiret`` is charged
        here; ``uintr_send``/``uintr_deliver`` are charged by the
        :class:`~repro.hardware.uintr.UintrController` when the wire
        operations actually execute, so the two layers never double
        count one preemption.
        """
        c = self.costs
        handles = self._switch_handles()
        handles["uctx_save"].charge(c.uctx_save_ns, core_id)
        handles["callgate_enter"].charge(c.callgate_enter_ns, core_id)
        handles["runtime_queue"].charge(c.runtime_queue_ns, core_id)
        handles["uctx_restore"].charge(c.uctx_restore_ns, core_id)
        handles["callgate_exit"].charge(c.callgate_exit_ns, core_id)
        if preempt:
            handles["uiret"].charge(c.uiret_ns, core_id)
        handles["switch_noise"].charge(noise, core_id)
        handles["switch_jitter"].charge(jitter, core_id)

    def park_current(self, core: Core) -> None:
        """Mark the core's current thread parked (it called park())."""
        current = self.smas.pipe.cpuid_to_task.get(core.id)
        if current is not None and current.state is UThreadState.RUNNING:
            current.state = UThreadState.PARKED
