"""The VESSEL manager (§5.1).

A standalone auxiliary program: it creates the SMAS, processes user
commands to create and destroy uProcesses, and owns the address space of
every slot.  Creating a uProcess forks a booting kProcess, binds it to a
core, associates the slot with its protection key (pkey_mprotect +
mprotect), and sends the booting program an ``init`` command; the booting
program then invokes the loader to install the real application.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.hardware.machine import Core
from repro.hardware.timing import CostModel
from repro.kernel.kprocess import KProcess
from repro.kernel.signals import KernelSignals, SIGSEGV, SIGTERM
from repro.kernel.syscalls import SyscallLayer
from repro.obs.ledger import OpLedger
from repro.uprocess.domain import SchedulingDomain
from repro.uprocess.loader import ProgramImage
from repro.uprocess.smas import SmasError
from repro.uprocess.uproc import UProcess, UProcessState


class Manager:
    """Creates domains and manages uProcess lifecycles."""

    def __init__(self, syscalls: Optional[SyscallLayer] = None,
                 signals: Optional[KernelSignals] = None,
                 costs: Optional[CostModel] = None,
                 rng: Optional[random.Random] = None,
                 ledger: Optional[OpLedger] = None) -> None:
        self.syscalls = syscalls or SyscallLayer(costs, ledger=ledger)
        self.signals = signals
        self.costs = costs or self.syscalls.costs
        #: one operation ledger shared by the syscall layer and every
        #: domain this manager creates
        self.ledger = ledger if ledger is not None else self.syscalls.ledger
        self.rng = rng or random.Random(0)
        self.kprocess = KProcess("vessel-manager")
        self.domains: List[SchedulingDomain] = []

    # ------------------------------------------------------------------
    def create_domain(self, cores: List[Core],
                      name: str = "") -> SchedulingDomain:
        name = name or f"domain{len(self.domains)}"
        domain = SchedulingDomain(name, cores, self.syscalls, self.costs,
                                  self.rng, ledger=self.ledger)
        self.domains.append(domain)
        return domain

    # ------------------------------------------------------------------
    def create_uprocess(self, domain: SchedulingDomain, image: ProgramImage,
                        name: str = "",
                        boot_core: Optional[Core] = None) -> UProcess:
        """The §5.1 creation flow, compressed to its semantic steps."""
        slot = domain.smas.allocate_slot()
        try:
            # Fork the booting kProcess and pin it; it maps the SMAS into
            # its own address space (shared AddressSpaceMap reference) and
            # polls its FIFO queue for the init command.
            kproc = self.syscalls.fork(self.kprocess,
                                       name or image.name)
            core = boot_core or domain.cores[0]
            self.syscalls.sched_setaffinity(kproc, core.id)

            # The slot's regions were keyed when the SMAS was built; the
            # manager (re)asserts the binding for this uProcess.  (After a
            # destroy the regions sit revoked on pkey 0, so reallocating
            # the slot must rebind both.)
            self.syscalls.pkey_mprotect(domain.smas.aspace,
                                        slot.data_region, slot.pkey)
            self.syscalls.pkey_mprotect(domain.smas.aspace,
                                        slot.text_region, slot.pkey)

            uproc = UProcess(name or image.name, slot, domain.smas, kproc)

            # Fault shielding (§4.3): the runtime registers fault-signal
            # handlers *before* the program is installed.
            if self.signals is not None:
                self.signals.register(
                    kproc, SIGSEGV,
                    lambda proc, sig, d=domain, c=core: d.handle_fault(c.id),
                )

            # "init" command: the booting program invokes the loader.
            domain.loader.load(uproc, image)
            uproc.state = UProcessState.RUNNING
            domain.uprocs.append(uproc)
            return uproc
        except Exception:
            domain.smas.release_slot(slot)
            raise

    def destroy_uprocess(self, domain: SchedulingDomain,
                         uproc: UProcess) -> int:
        """Send kill commands to every core running ``uproc`` (§5.1).

        The cores consume the command at their next privileged-mode entry;
        if the uProcess is not running anywhere it is reaped immediately.
        Returns the number of kill commands queued.
        """
        if uproc not in domain.uprocs:
            raise SmasError(f"{uproc.name} is not in domain {domain.name}")
        running = domain.cores_running(uproc)
        if not running:
            domain.reap(uproc)
            return 0
        return domain.queues.broadcast_kill(uproc, running)

    def teardown_uprocess(self, domain: SchedulingDomain,
                          uproc: UProcess) -> None:
        """Immediate full teardown (crash containment, §4.3/§5.1).

        Unlike :meth:`destroy_uprocess` this never defers to the
        kill-command path: the caller (a SIGSEGV handler) has already
        taken the uProcess off its cores, so the slot, pkey, descriptor
        map, and queued commands are reclaimed synchronously.
        """
        if uproc not in domain.uprocs:
            raise SmasError(f"{uproc.name} is not in domain {domain.name}")
        domain.reap(uproc)

    def kill_thread(self, domain: SchedulingDomain, thread) -> int:
        """Terminate one thread of a uProcess (§5.3).

        The kernel knows nothing about userspace threads, so plain
        signals cannot address one; the documented route is sigqueue()
        with an explicit thread id in the payload, which the runtime
        resolves and acts on at the owning core's next privileged entry.
        Returns the number of commands queued (0 if the thread was off
        core and could be reaped directly).
        """
        from repro.uprocess.usignals import Command, CommandKind
        uproc = thread.uproc
        self.syscalls.sigqueue(uproc.boot_kprocess, SIGTERM,
                               value=thread.tid, tid=thread.tid)
        if thread.core_id is None:
            thread.destroy()
            return 0
        domain.queues.of(thread.core_id).push(
            Command(CommandKind.DELIVER_SIGNAL, thread))
        return 1

    # ------------------------------------------------------------------
    def clone_uprocess(self, domain: SchedulingDomain, uproc: UProcess,
                       image: ProgramImage,
                       cores: Optional[List[Core]] = None) -> UProcess:
        """uProcess fork (§5.3).

        The child cannot share its parent's SMAS — it must occupy the same
        addresses — so a *new* domain/SMAS is created, the child is placed
        in the same slot index, and data is synchronized (modeled by the
        fresh load).  Returns the child uProcess (its domain is
        ``self.domains[-1]``).
        """
        child_domain = self.create_domain(cores or domain.cores,
                                          name=f"{domain.name}-clone")
        # Occupy lower slots so the child lands at the parent's index,
        # giving it an identical address-space layout.
        for index in range(uproc.slot.index):
            child_domain.smas.slots[index].in_use = True
        child = self.create_uprocess(child_domain, image,
                                     name=f"{uproc.name}-child")
        if child.slot.index != uproc.slot.index:
            raise SmasError("clone slot mismatch")
        for index in range(uproc.slot.index):
            child_domain.smas.slots[index].in_use = False
        return child
