"""Command queues and signal handling (§4.3).

The scheduler never touches a victim core's state directly: it pushes a
:class:`Command` into the core's FIFO queue and sends a Uintr.  The
victim's registered handler passes through the call gate and executes the
command in privileged mode.

Kernel-initiated signals are proxied the same way.  The runtime registers
fault handlers before loading any uProcess; when, say, a segmentation
fault arrives, the handler identifies the faulty uProcess via
CPUID_TO_TASK_MAP and *broadcasts* a kill command to the queues of every
core running that uProcess — no Uintr needed, the commands are consumed
at each core's next privileged-mode entry.  This keeps one uProcess's
fault from killing the kProcess other uProcesses happen to be running in
(the "blast radius" barrier).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional


class CommandKind(enum.Enum):
    RUN_THREAD = "run_thread"      #: schedule this thread next
    PREEMPT = "preempt"            #: yield the core back to the scheduler
    KILL_UPROCESS = "kill_uprocess"
    DELIVER_SIGNAL = "deliver_signal"


@dataclass
class Command:
    kind: CommandKind
    payload: Any = None


class CommandQueue:
    """Single-producer single-consumer FIFO between scheduler and a core.

    The real implementation is a lock-free ring; the model records depth
    statistics so tests can assert the protocol stays shallow.
    """

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._queue: Deque[Command] = deque()
        self.pushed = 0
        self.max_depth = 0

    def push(self, command: Command) -> None:
        self._queue.append(command)
        self.pushed += 1
        self.max_depth = max(self.max_depth, len(self._queue))

    def pop(self) -> Optional[Command]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def drain(self) -> List[Command]:
        commands = list(self._queue)
        self._queue.clear()
        return commands

    def __len__(self) -> int:
        return len(self._queue)


class CommandQueues:
    """All per-core queues of one scheduling domain."""

    def __init__(self, core_ids: List[int]) -> None:
        self.queues: Dict[int, CommandQueue] = {
            core_id: CommandQueue(core_id) for core_id in core_ids
        }

    def of(self, core_id: int) -> CommandQueue:
        return self.queues[core_id]

    def broadcast_kill(self, uproc, running_core_ids: List[int]) -> int:
        """Queue KILL commands on every core running ``uproc`` (§4.3)."""
        for core_id in running_core_ids:
            self.queues[core_id].push(
                Command(CommandKind.KILL_UPROCESS, uproc)
            )
        return len(running_core_ids)

    def purge_uproc(self, uproc) -> int:
        """Drop every queued command addressed to ``uproc`` or its threads.

        Part of crash containment: once a uProcess is torn down, stale
        RUN_THREAD/PREEMPT commands must not resurrect its threads on a
        core.  Returns the number of commands dropped.
        """
        dropped = 0
        for queue in self.queues.values():
            kept = [
                command for command in queue._queue
                if not (command.payload is uproc
                        or getattr(command.payload, "uproc", None) is uproc)
            ]
            dropped += len(queue._queue) - len(kept)
            queue._queue = deque(kept)
        return dropped
