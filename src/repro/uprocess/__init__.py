"""The uProcess abstraction (§3-§5 of the paper).

uProcesses are processes rearchitected to share one address space (the
SMAS) so a CPU core can switch between applications with plain jumps and
a PKRU write — no kernel involvement.  The ingredients:

``smas``
    The shared memory address space: region layout (Figure 5), protection
    key assignment, the per-application and runtime PKRU values, and the
    read-only message pipe (CPUID_TO_TASK_MAP, CPUID_TO_RUNTIME_MAP, the
    function-pointer vector).
``uproc``
    The uProcess object itself: backing kProcess, regions, heap, threads,
    runtime-managed descriptor table, lifecycle state.
``allocator``
    The jemalloc-style arena allocator that manages each uProcess region
    (glibc's allocator cannot cope with the shared layout, §5.2.3).
``loader``
    The program loader (§5.2.1): static WRPKRU inspection, PIE
    enforcement, text installed executable-only, dlopen-style on-demand
    loading through the runtime.
``callgate``
    The Listing-1 call gate with the §4.2 defenses (function-pointer
    vector instead of PLT, runtime stack switch, PKRU recheck loop).
``attacks``
    Executable models of the attack classes §4.2 defends against; used by
    the security test-suite and the security example.
``threads``
    Userspace thread contexts, stacks, and TLS (§5.2.2).
``usignals``
    Per-core FIFO command queues, Uintr dispatch, and kernel-fault
    proxying/shielding (§4.3).
``switch``
    The Figure 6 userspace context-switch workflow with its cost model.
``manager``
    The VESSEL manager (§5.1): SMAS creation, uProcess creation via a
    forked booting kProcess, destruction, and uProcess cloning (§5.3).
``domain``
    Scheduling domains: up to 13 uProcesses sharing one SMAS.
"""

from repro.uprocess.smas import Smas, SmasSlot, MessagePipe, SmasError
from repro.uprocess.uproc import UProcess, UProcessState
from repro.uprocess.allocator import RegionAllocator, OutOfMemoryError
from repro.uprocess.loader import (
    ProgramImage,
    ProgramLoader,
    CodeInspectionError,
    LoaderError,
)
from repro.uprocess.callgate import CallGate, CallGateViolation
from repro.uprocess.threads import UThread, UThreadState, ThreadContext
from repro.uprocess.usignals import Command, CommandKind, CommandQueue
from repro.uprocess.switch import UserspaceSwitch
from repro.uprocess.manager import Manager
from repro.uprocess.domain import SchedulingDomain

__all__ = [
    "Smas",
    "SmasSlot",
    "MessagePipe",
    "SmasError",
    "UProcess",
    "UProcessState",
    "RegionAllocator",
    "OutOfMemoryError",
    "ProgramImage",
    "ProgramLoader",
    "CodeInspectionError",
    "LoaderError",
    "CallGate",
    "CallGateViolation",
    "UThread",
    "UThreadState",
    "ThreadContext",
    "Command",
    "CommandKind",
    "CommandQueue",
    "UserspaceSwitch",
    "Manager",
    "SchedulingDomain",
]
