"""The call gate (§4.2, Listing 1).

The gate is the only legal way into the userspace privileged mode: *as
long as a core is in privileged mode, it must be executing trusted
runtime code.*  The model executes the four stages of Listing 1 against
real core state (the PKRU register) and real SMAS state (the message-pipe
maps), and implements the three defenses the paper adds on top of
ERIM/Hodor:

1. memory-configuration syscalls that would make pages executable are
   prohibited (enforced by the runtime's syscall proxy, see
   ``repro.vessel.runtime``), so no unvetted WRPKRU can appear;
2. privileged functions are dispatched through a *function-pointer
   vector* kept in the read-only message pipe, never through the PLT;
3. the caller's stack is switched to a per-core stack in the runtime
   region before the call, so sibling threads cannot rewrite the return
   address.

Defense toggles (``stack_switch``, ``pkru_recheck``) exist so the attack
tests and ablation benchmarks can demonstrate what each defense buys.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.hardware.machine import Core, CoreMode
from repro.hardware.mpk import AccessKind
from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.uprocess.smas import Smas
from repro.uprocess.threads import UThread


class CallGateViolation(RuntimeError):
    """An illegal use of the call gate was detected and stopped."""


class CallGate:
    """The trusted entry/exit path between uProcess and runtime mode."""

    def __init__(self, smas: Smas, stack_switch: bool = True,
                 pkru_recheck: bool = True,
                 ledger: Optional[OpLedger] = None) -> None:
        self.smas = smas
        self.stack_switch = stack_switch
        self.pkru_recheck = pkru_recheck
        #: gate traversals are counted only — their nanoseconds are the
        #: callgate_enter/exit rows the switch path charges
        self.ledger = ledger or NULL_LEDGER
        self.invocations = 0
        self.hijacks_defeated = 0

    # ------------------------------------------------------------------
    def register_privileged(self, name: str, fn: Callable[..., Any]) -> None:
        """Runtime-side registration into the function-pointer vector."""
        self.smas.pipe.register_function(Smas.runtime_pkru(), name, fn)

    # ------------------------------------------------------------------
    def invoke(self, core: Core, thread: UThread, func_name: str,
               *args: Any) -> Any:
        """The legitimate Listing-1 flow.

        The privileged function may context-switch the core to a different
        thread (Figure 6); stage 3 therefore restores the PKRU and stack of
        whatever CPUID_TO_TASK_MAP says is current *after* the call.
        """
        pipe = self.smas.pipe
        if not thread.uproc.alive:
            # Crash containment: a thread whose uProcess was reaped while
            # it was descheduled must not re-enter privileged mode on
            # behalf of freed state.
            if self.ledger.enabled:
                self.ledger.count_op("deny:callgate_dead", core=core.id,
                                     domain="uproc")
            raise CallGateViolation(
                f"gate entry refused: uProcess of {thread} is dead"
            )
        self.invocations += 1
        if self.ledger.enabled:
            self.ledger.count_op(f"callgate:{func_name}", core=core.id,
                                 domain="uproc")

        # -- Stage 1: enter privileged mode ---------------------------
        core.pkru.wrpkru(Smas.runtime_pkru().value)
        core.mode = CoreMode.RUNTIME

        # -- Stage 2: stack switch + vectored dispatch -----------------
        if self.stack_switch:
            # Listing 1 lines 5-6: the task's RSP is already saved in its
            # context structure; run on the per-core runtime stack.
            runtime_rsp = pipe.cpuid_to_runtime_rsp[core.id]
            # The runtime stack must live in the runtime region.
            self.smas.aspace.check_access(runtime_rsp - 8, AccessKind.WRITE,
                                          core.pkru)
        fn = pipe.func_vector.get(func_name)
        if fn is None:
            # Unknown privileged operation: leave privileged mode cleanly.
            self._exit_to(core, thread)
            raise CallGateViolation(
                f"no privileged function {func_name!r} in the vector"
            )
        result = fn(*args)

        # -- Stages 3-4: restore the *current* task's permissions ------
        current = pipe.cpuid_to_task.get(core.id, thread)
        self._exit_to(core, current)
        return result

    def _exit_to(self, core: Core, thread: UThread) -> None:
        expected = thread.uproc.pkru().value
        core.pkru.wrpkru(expected)
        if self.pkru_recheck:
            # Stage 4 (lines 15-20): re-read PKRU and loop until it matches
            # the task's recorded value.  In the legitimate flow this
            # passes on the first try.
            while core.pkru.rdpkru() != expected:
                core.pkru.wrpkru(expected)  # pragma: no cover - legit flow
        core.mode = CoreMode.USER

    # ------------------------------------------------------------------
    # Attack surface models (used by repro.uprocess.attacks and tests)
    # ------------------------------------------------------------------
    def hijack_stage3(self, core: Core, forged_pkru: int) -> int:
        """Control-flow hijack: jump straight to Line 13 with a forged eax.

        Returns the PKRU value the attacker ends up with.  With the
        recheck enabled the loop at lines 15-20 rewrites the register to
        the current task's legitimate value, defeating the attack; with
        the recheck disabled (ERIM/Hodor-less ablation) the forged value
        survives.
        """
        core.pkru.wrpkru(forged_pkru)
        if not self.pkru_recheck:
            return core.pkru.rdpkru()
        current = self.smas.pipe.cpuid_to_task.get(core.id)
        if current is None:
            raise CallGateViolation("no task mapped on this core")
        expected = current.uproc.pkru().value
        while core.pkru.rdpkru() != expected:
            core.pkru.wrpkru(expected)
        self.hijacks_defeated += 1
        core.mode = CoreMode.USER
        return core.pkru.rdpkru()

    def return_address_location(self, core: Core, thread: UThread) -> int:
        """Where the gate's return address lives during a privileged call.

        With the stack switch it is on the per-core runtime stack (runtime
        pkey, unwritable by apps); without it, on the caller's own stack
        (writable by every thread of the same uProcess).
        """
        if self.stack_switch:
            return self.smas.pipe.cpuid_to_runtime_rsp[core.id] - 8
        return thread.context.rsp - 8
