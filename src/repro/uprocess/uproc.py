"""The uProcess object.

A uProcess looks like a process to the application — it has an executable,
threads, a heap, descriptors, signals — but its memory lives in an SMAS
slot, its threads are scheduled entirely in userspace (possibly *inside a
different kProcess than the one that booted it*, §5.2.4), and its
descriptor table is kept by the trusted runtime rather than the kernel.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.hardware.mpk import PkruRegister
from repro.kernel.fdtable import FileDescription
from repro.kernel.kprocess import KProcess
from repro.uprocess.allocator import RegionAllocator
from repro.uprocess.smas import Smas, SmasSlot

if TYPE_CHECKING:  # pragma: no cover
    from repro.uprocess.threads import UThread

_uproc_ids = itertools.count(1)


class UProcessState(enum.Enum):
    CREATED = "created"     #: kProcess forked, booting program polling
    LOADED = "loaded"       #: program installed by the loader
    RUNNING = "running"
    TERMINATED = "terminated"


class UProcess:
    """An application living in one SMAS slot."""

    def __init__(self, name: str, slot: SmasSlot, smas: Smas,
                 boot_kprocess: KProcess) -> None:
        self.uid = next(_uproc_ids)
        self.name = name
        self.slot = slot
        self.smas = smas
        self.boot_kprocess = boot_kprocess
        self.state = UProcessState.CREATED
        self.threads: List["UThread"] = []
        #: runtime-managed descriptor table: ufd -> file description.
        #: The runtime proxies all file syscalls and checks ownership here
        #: (§5.2.4) — kernel fd numbers never reach application code.
        self.fd_map: Dict[int, FileDescription] = {}
        self._next_ufd = 3  # 0..2 reserved, as in POSIX

        # The heap takes the upper half of the data region; the lower half
        # holds loader-placed segments (data/bss) and thread stacks.
        data = slot.data_region
        half = data.size // 2
        self.static_arena = RegionAllocator(
            data.start, half, name=f"{name}/static")
        self.heap = RegionAllocator(
            data.start + half, data.size - half, name=f"{name}/heap")
        self.text_cursor = slot.text_region.start if slot.text_region else 0
        #: signal handlers the app registered with the runtime proxy (§4.3)
        self.signal_handlers: Dict[int, object] = {}
        self.pending_signals: List[int] = []

    # ------------------------------------------------------------------
    @property
    def pkey(self) -> int:
        return self.slot.pkey

    def pkru(self) -> PkruRegister:
        """The PKRU value a core uses while running this uProcess."""
        return Smas.app_pkru(self.slot.pkey)

    @property
    def alive(self) -> bool:
        return self.state not in (UProcessState.TERMINATED,)

    # ------------------------------------------------------------------
    # Descriptor table (runtime-managed, §5.2.4)
    # ------------------------------------------------------------------
    def install_fd(self, description: FileDescription) -> int:
        ufd = self._next_ufd
        self._next_ufd += 1
        self.fd_map[ufd] = description
        return ufd

    def lookup_fd(self, ufd: int) -> Optional[FileDescription]:
        return self.fd_map.get(ufd)

    def remove_fd(self, ufd: int) -> FileDescription:
        if ufd not in self.fd_map:
            raise KeyError(f"EBADF: ufd {ufd} not owned by {self.name}")
        return self.fd_map.pop(ufd)

    # ------------------------------------------------------------------
    def terminate(self) -> None:
        from repro.uprocess.threads import UThreadState
        self.state = UProcessState.TERMINATED
        for thread in self.threads:
            thread.state = UThreadState.DEAD
        self.fd_map.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<UProcess {self.name} slot={self.slot.index} "
                f"pkey={self.pkey} {self.state.value}>")
