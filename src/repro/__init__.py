"""Reproduction of "Fast Core Scheduling with Userspace Process Abstraction".

This package reimplements, as an executable model, the uProcess abstraction
and the VESSEL userspace core scheduler from SOSP 2024 (Lin, Chen, Gao, Lu),
together with every substrate the paper's evaluation depends on: a
discrete-event machine model (cores, MPK, Uintr, IPIs, caches, a shared
memory bus), a Linux-kernel substrate (kProcesses, syscalls, signals, CFS),
the baseline schedulers (Caladan with and without Delay Range, Arachne,
Linux CFS, Intel MBA, cgroups), and the paper's workloads (memcached, Silo,
Linpack, membench).

The top-level subpackages are:

``repro.sim``
    Deterministic discrete-event simulation kernel (nanosecond clock).
``repro.hardware``
    Simulated hardware: cost model, MPK, Uintr, IPIs, memory bus, caches.
``repro.kernel``
    Simulated Linux substrate: kProcess, syscalls, signals, CFS.
``repro.uprocess``
    The paper's contribution: SMAS, call gate, loader, threads, manager.
``repro.vessel``
    The VESSEL runtime and one-level global core scheduler.
``repro.baselines``
    Comparator systems used in the paper's evaluation.
``repro.workloads``
    Open-loop workload generators used in the paper's evaluation.
``repro.experiments``
    One module per paper table/figure; regenerates the reported series.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "hardware",
    "kernel",
    "uprocess",
    "vessel",
    "baselines",
    "workloads",
    "experiments",
]
