"""Pluggable scheduling policies (the ghOSt model).

The VESSEL *mechanism* — Uintr preemption, call-gate switches, SMAS
bookkeeping, failure containment — is fixed and trusted; the scheduling
*policy* is a small replaceable class that receives structured events
and returns decisions.  The mechanism executes each decision through
the existing machinery, charging the same ledger operations, so a run
under the default policy is byte-identical to the pre-framework
scheduler, and a new policy is ~100 lines plus a registry entry.

Events (called by the mechanism; see ``VesselSystem``):

=====================  ================================================
``on_arrival(app)``     requests pending for ``app`` (after the
                        scheduler-core reaction delay); yields
                        placement decisions for parked server threads
``on_request_done``     a request finished on a core (informational —
                        MLFQ/SJF-style policies track usage here)
``on_thread_park``      a server thread found its app queue empty and
                        is about to park (informational)
``on_quantum_expiry``   the running thread exhausted ``quantum_ns`` at
                        a request boundary with others queued; return
                        ``Rotate`` to time-slice or ``None`` to let it
                        keep the core
``on_core_idle(core)``  a core has nothing to run; return ``Run``,
                        ``Steal`` or ``Idle``
``on_tick()``           the periodic scheduler scan; yields any mix of
                        decisions (activations, fills, preemptions)
                        computed from queue-depth signals
=====================  ================================================

Decisions (executed — and validated — by the mechanism):

=========================================  ===========================
``Place(thread, core_id)``                 wake an idle core with a
                                           parked server thread
``Preempt(core_id, victim, incoming)``     evict ``victim`` (a BE
                                           thread via Uintr, or a
                                           long-running L request) in
                                           favour of ``incoming``
``Enqueue(thread, core_id)``               append a parked thread to a
                                           core's run queue
``Run(thread, core_id)``                   start a queued/best-effort
                                           thread on an idle core
``Rotate(core_id)``                        requeue the current thread
                                           and run the queue head
``Steal(core_id, from_core_id)``           pull the head of another
                                           core's queue onto this one
``Idle(core_id)``                          leave the core in UMWAIT
=========================================  ===========================

A policy never touches cores, queues of other layers, or the ledger
directly: it reads state through the mechanism context and returns
decisions.  Invalid decisions (stale thread, occupied core) are
*rejected* by the mechanism and counted — a buggy policy degrades
service but cannot corrupt mechanism state (the same stance §4.3 takes
for buggy applications).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, TYPE_CHECKING

from repro.sched import queues

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import App, Request

#: rotate to the run-queue head after the current thread has run this
#: long with other threads waiting (one uniform default for rotation
#: and mid-request preemption; a slice ends early when the app's queue
#: drains, so the quantum only binds for backlogged applications)
DEFAULT_ROTATION_QUANTUM_NS = 20_000
#: preempt an L request mid-service once it has blocked queued threads
#: for this long (§4.4)
DEFAULT_L_PREEMPT_QUANTUM_NS = 20_000
#: cap on new server activations per app per reaction
DEFAULT_ACTIVATION_BURST = 4


# ----------------------------------------------------------------------
# Decisions
# ----------------------------------------------------------------------
class Decision:
    """Base class for scheduling decisions (markers, no behaviour)."""

    __slots__ = ()


class Place(Decision):
    """Wake an idle core with a parked server thread (UMWAIT wake)."""

    __slots__ = ("thread", "core_id")

    def __init__(self, thread, core_id: int) -> None:
        self.thread = thread
        self.core_id = core_id


class Preempt(Decision):
    """Evict ``victim`` on ``core_id`` in favour of ``incoming``.

    When the core runs best-effort work this is the Uintr path (command
    push + ``senduipi``); when it is serving a long L request this is
    the §4.4 mid-request preemption (remaining service returns to the
    app queue's front).  ``incoming=None`` on a best-effort core means
    *forced idle*: the victim is evicted and the core left in UMWAIT —
    what Linux core scheduling does to a mismatched SMT sibling (the
    trust-group policy uses this).
    """

    __slots__ = ("core_id", "victim", "incoming")

    def __init__(self, core_id: int, victim, incoming) -> None:
        self.core_id = core_id
        self.victim = victim
        self.incoming = incoming


class Enqueue(Decision):
    """Append a parked thread to a core's run queue (activated,
    waiting its turn)."""

    __slots__ = ("thread", "core_id")

    def __init__(self, thread, core_id: int) -> None:
        self.thread = thread
        self.core_id = core_id


class Run(Decision):
    """Start ``thread`` (queued on the core or best-effort) on the
    idle core ``core_id``."""

    __slots__ = ("thread", "core_id")

    def __init__(self, thread, core_id: int) -> None:
        self.thread = thread
        self.core_id = core_id


class Rotate(Decision):
    """Requeue the running thread and switch to the run-queue head."""

    __slots__ = ("core_id",)

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id


class Steal(Decision):
    """Run the head of ``from_core_id``'s queue on ``core_id``."""

    __slots__ = ("core_id", "from_core_id")

    def __init__(self, core_id: int, from_core_id: int) -> None:
        self.core_id = core_id
        self.from_core_id = from_core_id


class Idle(Decision):
    """Leave the core idle (UMWAIT until the next event)."""

    __slots__ = ("core_id",)

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id


# ----------------------------------------------------------------------
# The policy base class — also the default (VESSEL §4.5) behaviour
# ----------------------------------------------------------------------
class SchedPolicy:
    """Event-driven scheduling policy.

    The base class implements the paper's one-level global policy
    (FIFO run queues + quantum rotation + BE preemption), so subclasses
    override only the hooks they change.  ``bind`` is called once by
    the mechanism before ``start``; ``self.ctx`` then exposes:

    * ``ctx.now`` — simulation time (ns);
    * ``ctx.core_states()`` — per-core states in fixed order, each with
      ``.core``, ``.fifo``, ``.kind`` (None | "L" | "B" | "switch"),
      ``.thread``, ``.request``, ``.run_started``;
    * ``ctx.app_states()`` / ``ctx.app_state(name)`` — per-app states
      with ``.app``, ``.threads``, ``.parked``, ``.queued_servers``;
    * ``ctx.next_be_thread()`` — peek the runnable head of the global
      best-effort queue (suspended apps skipped), or ``None``;
    * ``ctx.sibling_of(core_id)`` — the SMT sibling's core state (the
      worker cores pair up in order), or ``None``.

    Policies must treat everything reached through ``ctx`` as
    read-only; state changes only via returned decisions.
    """

    name = "abstract"

    def __init__(self,
                 rotation_quantum_ns: int = DEFAULT_ROTATION_QUANTUM_NS,
                 l_preempt_quantum_ns: int = DEFAULT_L_PREEMPT_QUANTUM_NS,
                 activation_burst: int = DEFAULT_ACTIVATION_BURST) -> None:
        self.rotation_quantum_ns = rotation_quantum_ns
        self.l_preempt_quantum_ns = l_preempt_quantum_ns
        self.activation_burst = activation_burst
        self.ctx = None

    # -- lifecycle ------------------------------------------------------
    def bind(self, ctx) -> None:
        """Attach the mechanism context (called once, pre-start)."""
        self.ctx = ctx

    def make_core_queue(self):
        """Run-queue discipline for one core (override for MLFQ etc.)."""
        return queues.FifoQueue()

    def on_app_added(self, app_state) -> None:
        """A new application joined the domain."""

    def on_app_removed(self, app_state) -> None:
        """An application was destroyed; drop any bookkeeping for it."""

    # -- knobs the mechanism consults ----------------------------------
    def quantum_ns(self, core_state) -> Optional[int]:
        """Rotation quantum for the thread on ``core_state`` (None =
        never rotate)."""
        return self.rotation_quantum_ns

    def pick_request(self, core_state, app: "App") -> Optional["Request"]:
        """Dequeue the next request this thread should serve (FCFS by
        default; SJF-style policies reorder here)."""
        return app.pop_request()

    # -- events ---------------------------------------------------------
    def on_arrival(self, app_state) -> Iterator[Decision]:
        """Activate server threads to cover ``app_state``'s queue.

        Yields one placement decision at a time; the mechanism executes
        each before the generator resumes, so later choices see the
        updated core states.
        """
        app = app_state.app
        # Fast-outs first: with nothing queued or nothing parked the
        # deficit is <= 0 and no decision can come out, so skip the
        # O(threads) active count (this is the steady-state path — the
        # tick re-dispatch calls here for every backlogged app).
        if not app.queue or not app_state.parked:
            return
        from repro.uprocess.threads import UThreadState
        active = sum(1 for t in app_state.threads
                     if t.state is UThreadState.RUNNING)
        deficit = min(len(app.queue) - active - app_state.queued_servers,
                      len(app_state.parked), self.activation_burst)
        for _ in range(max(0, deficit)):
            decision = self.place_one(app_state)
            if decision is None:
                break
            yield decision

    def place_one(self, app_state) -> Optional[Decision]:
        """One placement for a parked server thread: an idle core
        first, then a preemptible best-effort core, then the shortest
        eligible run queue.  Returns None when nowhere fits."""
        if not app_state.parked:
            return None
        thread = app_state.parked[0]
        idle = queues.first_idle(self.ctx.core_states())
        if idle is not None:
            return Place(thread, idle.core.id)
        victim = queues.first_of_kind(self.ctx.core_states(), "B")
        if victim is not None:
            return Preempt(victim.core.id, victim.thread, thread)
        target = self.shortest_queue_core(app_state)
        if target is None:
            return None
        return Enqueue(thread, target.core.id)

    def shortest_queue_core(self, app_state):
        """Shortest "L" run queue not already holding this app (one
        queued server per app per core)."""
        uproc = app_state.uproc

        def eligible(state) -> bool:
            if state.kind != "L":
                return False
            if any(t.uproc is uproc for t in state.fifo):
                return False
            if state.thread is not None and state.thread.uproc is uproc:
                return False
            return True

        return queues.shortest_queue(self.ctx.core_states(), eligible)

    def on_request_done(self, core_state, request: "Request") -> None:
        """A request completed on ``core_state`` (informational)."""

    def on_thread_park(self, core_state, thread) -> None:
        """``thread`` is about to park, app queue empty (informational)."""

    def on_quantum_expiry(self, core_state) -> Optional[Rotate]:
        """Quantum used up at a request boundary with threads queued."""
        return Rotate(core_state.core.id)

    def on_core_idle(self, core_state) -> Decision:
        """Pick work for a core with nothing to run: the run-queue
        head first, then the global best-effort queue, else UMWAIT."""
        head = core_state.fifo.peek()
        if head is not None:
            return Run(head, core_state.core.id)
        be_thread = self.ctx.next_be_thread()
        if be_thread is not None:
            return Run(be_thread, core_state.core.id)
        return Idle(core_state.core.id)

    def on_tick(self) -> Iterator[Decision]:
        """Periodic scan: re-dispatch backlogged L-apps, fill idle
        cores, and preempt long-running requests (§4.4)."""
        for app_state in self.ctx.app_states():
            if app_state.app.is_latency and app_state.app.queue:
                yield from self.on_arrival(app_state)
        for core_state in self.ctx.core_states():
            if core_state.kind is None and not core_state.core.busy:
                yield self.on_core_idle(core_state)
            elif core_state.kind == "L":
                decision = self.check_long_request(core_state)
                if decision is not None:
                    yield decision

    def check_long_request(self, core_state) -> Optional[Preempt]:
        """§4.4 condition: a request is hogging a core that other
        latency threads are queued on."""
        if core_state.request is None or not core_state.fifo:
            return None
        now = self.ctx.now
        ran = now - (core_state.request.start_ns or now)
        if ran < self.l_preempt_quantum_ns:
            return None
        return Preempt(core_state.core.id, core_state.thread,
                       core_state.fifo.peek())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, type] = {}


def register_policy(cls: type) -> type:
    """Class decorator: make a policy constructible by name."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} needs a concrete 'name'")
    _REGISTRY[name] = cls
    return cls


def _load_builtin_policies() -> None:
    """Import the modules whose import registers the built-in zoo."""
    import repro.sched.zoo  # noqa: F401
    import repro.vessel.policy  # noqa: F401
    import repro.overload.autoscaler  # noqa: F401
    import repro.cluster.coordinator  # noqa: F401


def available_policies() -> Dict[str, type]:
    """Name -> class for every registered policy."""
    _load_builtin_policies()
    return dict(sorted(_REGISTRY.items()))


def make_policy(name: str, **params) -> SchedPolicy:
    """Instantiate a registered policy by name."""
    _load_builtin_policies()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{sorted(_REGISTRY)}") from None
    return cls(**params)
