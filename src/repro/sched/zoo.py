"""The policy zoo: alternative scheduling policies over the VESSEL
mechanism.

Each policy here is a small subclass of :class:`SchedPolicy` — the
point of the mechanism/policy split is that these are ~100 lines each,
reuse the default placement logic where they don't care, and run
through the exact same Uintr/call-gate/containment machinery (and the
same ledger accounting) as the stock policy.  Compare them with
``python -m repro policies``.

All four are deterministic: ties break toward the earliest element in
iteration order, and any internal bookkeeping is keyed by objects whose
iteration order is insertion order (dicts), never by hash-randomized
sets.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.sched import queues
from repro.sched.policy import (
    Decision, Idle, Place, Preempt, Rotate, Run, SchedPolicy,
    register_policy)


@register_policy
class MlfqPolicy(SchedPolicy):
    """Multi-level feedback queue (the classic Arpaci-Dusseau shape).

    Each server thread carries a level; per-core run queues pop level 0
    first.  A thread that exhausts its slice is demoted one level (and
    its next slice doubles); a thread that drains its app's queue and
    parks is promoted back to the top — so bursty, short-request apps
    stay responsive while backlogged apps sink to long, cheap slices.
    """

    name = "mlfq"

    def __init__(self, levels: int = 3,
                 base_quantum_ns: int = 10_000, **kwargs) -> None:
        super().__init__(**kwargs)
        if levels < 1:
            raise ValueError(f"need at least one MLFQ level, got {levels}")
        self.levels = levels
        self.base_quantum_ns = base_quantum_ns
        self._level: Dict[object, int] = {}

    def make_core_queue(self):
        return queues.MultiLevelQueue(
            self.levels, lambda thread: self._level.get(thread, 0))

    def quantum_ns(self, core_state) -> Optional[int]:
        level = self._level.get(core_state.thread, 0)
        return self.base_quantum_ns << level

    def on_quantum_expiry(self, core_state) -> Optional[Rotate]:
        thread = core_state.thread
        level = self._level.get(thread, 0)
        if level < self.levels - 1:
            self._level[thread] = level + 1
        return Rotate(core_state.core.id)

    def on_thread_park(self, core_state, thread) -> None:
        # Gave up the core voluntarily: back to the interactive level.
        self._level.pop(thread, None)

    def on_app_removed(self, app_state) -> None:
        for thread in app_state.threads:
            self._level.pop(thread, None)


@register_policy
class SjfPolicy(SchedPolicy):
    """Shortest-job-first request picking.

    Placement and rotation stay stock; the only change is which pending
    request a server thread serves next: the one with the smallest
    remaining service time (first-arrived on ties), instead of FCFS.
    Classic trade: mean latency drops, long requests can starve under
    sustained load — the §4.4 long-request preemption caps how badly.
    """

    name = "sjf"

    def pick_request(self, core_state, app):
        queue = app.queue
        if not queue:
            return None
        best_index = 0
        best_service = queue[0].service_ns
        for index in range(1, len(queue)):
            service = queue[index].service_ns
            if service < best_service:
                best_index, best_service = index, service
        if best_index == 0:
            return queue.popleft()
        request = queue[best_index]
        del queue[best_index]
        return request


@register_policy
class TrustGroupPolicy(SchedPolicy):
    """Core-scheduling trust groups (Linux ``prctl(PR_SCHED_CORE)``).

    Every app carries a cookie; two threads may occupy the two SMT
    siblings of a physical core only if their cookies match — the
    cross-hyperthread side-channel mitigation, expressed as a placement
    filter.  Worker cores pair up in order (first+second, ...).  By
    default every app is its own trust group (strictest); pass
    ``groups={app_name: cookie}`` to co-schedule chosen apps.

    A placement that would pair mismatched cookies is simply skipped —
    the core stays idle rather than leak — which is exactly the
    utilization-for-isolation trade core scheduling makes.
    """

    name = "trust-group"

    def __init__(self, groups: Optional[Dict[str, str]] = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.groups = dict(groups or {})

    def cookie_of(self, thread) -> str:
        name = thread.payload.name
        return self.groups.get(name, name)

    def _sibling_allows(self, core_state, thread) -> bool:
        sibling = self.ctx.sibling_of(core_state.core.id)
        if sibling is None or sibling.thread is None:
            return True
        return self.cookie_of(sibling.thread) == self.cookie_of(thread)

    def place_one(self, app_state) -> Optional[Decision]:
        if not app_state.parked:
            return None
        thread = app_state.parked[0]
        idle = queues.first_where(
            self.ctx.core_states(),
            lambda s: s.kind is None and not s.core.busy
            and self._sibling_allows(s, thread))
        if idle is not None:
            return Place(thread, idle.core.id)
        victim = queues.first_where(
            self.ctx.core_states(),
            lambda s: s.kind == "B" and self._sibling_allows(s, thread))
        if victim is not None:
            return Preempt(victim.core.id, victim.thread, thread)
        # No compatible slot: force-idle one side of a BE/BE pair (the
        # Linux core-scheduling move), which the next placement round
        # turns into a (thread, idle) pair for this group.
        for state in self.ctx.core_states():
            if state.kind != "B":
                continue
            sibling = self.ctx.sibling_of(state.core.id)
            if sibling is not None and sibling.kind == "B":
                return Preempt(state.core.id, state.thread, None)
        target = self.shortest_queue_core(app_state)
        if target is None:
            return None
        from repro.sched.policy import Enqueue
        return Enqueue(thread, target.core.id)

    def on_core_idle(self, core_state) -> Decision:
        # First *compatible* queued thread, not just the head — an
        # incompatible head waits (possibly forever: forced idle is the
        # price of the isolation guarantee).
        for thread in core_state.fifo:
            if self._sibling_allows(core_state, thread):
                return Run(thread, core_state.core.id)
        be_thread = self.ctx.next_be_thread()
        if be_thread is not None \
                and self._sibling_allows(core_state, be_thread):
            return Run(be_thread, core_state.core.id)
        # Forced idle: nothing trusted to run next to the sibling.
        return Idle(core_state.core.id)


@register_policy
class PriorityPolicy(SchedPolicy):
    """Strict per-app priorities.

    Higher-priority apps are (a) dispatched first on every tick and
    (b) picked first off shared run queues — the mechanism's ``Run``
    decision accepts any queued thread, not just the head, so this is
    purely a policy-side reordering.  Equal priorities fall back to the
    stock FIFO order, keeping the default behaviour as the zero case.
    """

    name = "priority"

    def __init__(self, priorities: Optional[Dict[str, int]] = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.priorities = dict(priorities or {})

    def priority_of(self, name: str) -> int:
        return self.priorities.get(name, 0)

    def on_tick(self) -> Iterator[Decision]:
        ranked = sorted(
            (a for a in self.ctx.app_states()
             if a.app.is_latency and a.app.queue),
            key=lambda a: -self.priority_of(a.app.name))
        for app_state in ranked:
            yield from self.on_arrival(app_state)
        for core_state in self.ctx.core_states():
            if core_state.kind is None and not core_state.core.busy:
                yield self.on_core_idle(core_state)
            elif core_state.kind == "L":
                decision = self.check_long_request(core_state)
                if decision is not None:
                    yield decision

    def on_core_idle(self, core_state) -> Decision:
        best = None
        best_priority = None
        for thread in core_state.fifo:
            priority = self.priority_of(thread.payload.name)
            if best_priority is None or priority > best_priority:
                best, best_priority = thread, priority
        if best is not None:
            return Run(best, core_state.core.id)
        be_thread = self.ctx.next_be_thread()
        if be_thread is not None:
            return Run(be_thread, core_state.core.id)
        return Idle(core_state.core.id)
