"""The common harness every scheduler system plugs into.

Accounting convention (used by Figures 1b, 2, 9, 10, 12, 13):

* ``app:<name>`` — cycles spent executing that application's logic
  (request service for L-apps, batch chunks for B-apps);
* ``runtime``    — userspace scheduling work: spinning, stealing,
  userspace switches, parked-core polling;
* ``kernel``     — traps, IPIs, signal delivery, kernel context switches,
  the Figure 3 reallocation pipeline;
* ``idle``       — nothing to run (UMWAIT).

The *total normalized throughput* of the paper's Figure 1/9 is then the
fraction of worker-core time in ``app:*`` buckets, optionally normalized
per app against an "alone" run (the experiments do that normalization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import summarize_ns
from repro.hardware.machine import Core, Machine
from repro.workloads.base import App, Request


@dataclass
class SystemReport:
    """Everything an experiment needs from one simulation run."""

    system: str
    elapsed_ns: int
    num_worker_cores: int
    #: aggregated worker-core accounting buckets (ns)
    buckets: Dict[str, int] = field(default_factory=dict)
    #: per L-app latency summaries (summarize_ns output)
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per L-app completed ops
    completed: Dict[str, int] = field(default_factory=dict)
    #: per B-app useful nanoseconds
    useful_ns: Dict[str, int] = field(default_factory=dict)
    #: injected-fault op counts (ledger "fault" domain), if observed
    fault_ops: Dict[str, int] = field(default_factory=dict)
    #: degraded-path op counts (ledger "fallback" domain), if observed
    fallback_ops: Dict[str, int] = field(default_factory=dict)
    #: client-observed latency summaries per L-app (only when the run
    #: went through a ``repro.net`` fabric; empty for direct submit)
    client_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-app client reliability counters (offered/completed/retries/
    #: timeouts/losses/...), only when a fabric was attached
    net_ops: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: discrete events the run's Simulator fired (the bench harness
    #: divides by wall time for an events/sec figure)
    events_fired: int = 0
    #: admission-control accounting (admitted / shed per app and stage),
    #: only when the run attached an AdmissionControl
    admission: Dict = field(default_factory=dict)
    #: peak / final sampled L-app queue depth per app (only when the run
    #: asked for queue tracking) — the graceful-degradation signal
    queue_peak: Dict[str, int] = field(default_factory=dict)
    queue_final: Dict[str, int] = field(default_factory=dict)
    #: post-run containment audit (FaultInjector.uncontained), when run
    #: with an injector attached; empty means every fault was absorbed
    uncontained: List[str] = field(default_factory=list)
    #: injected-fault counts by kind, when an injector was attached
    fault_injected: Dict[str, int] = field(default_factory=dict)
    #: tenant-churn accounting (ChurnDriver.snapshot), when enabled
    churn: Dict = field(default_factory=dict)
    #: per-app request-conservation check (NetFabric.conservation)
    net_conservation: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: autoscaler controller state (SloAutoscalePolicy.scaling_snapshot)
    autoscale: Dict = field(default_factory=dict)
    #: per L-app server-side queue-wait summaries (arrival to first
    #: service start; summarize_ns output)
    queue_wait: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-app per-stage latency decomposition
    #: (FlightRecorder.stage_summaries), when flight recording was on
    latency_stages: Dict[str, Dict] = field(default_factory=dict)
    #: per-app flight outcome counts (done/dup/shed/drop)
    flight_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: trace-invariant audit violations (empty == clean), when flight
    #: recording was on
    flight_audit: List[str] = field(default_factory=list)
    #: gauge time-series summaries (GaugeSeries.summary), when sampled
    gauges: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: the K slowest completed flights (FlightRecorder.slowest_traces)
    slow_traces: List[Dict] = field(default_factory=list)
    #: per L-app server-side latency log-histograms
    #: (``repro.obs.hist.LogHistogram``) — exact-mergeable across runs,
    #: the cluster layer's aggregation currency
    latency_hist: Dict[str, object] = field(default_factory=dict)
    #: per L-app client-observed latency log-histograms (fabric runs)
    client_hist: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def throughput_mops(self, app_name: str) -> float:
        """Completed ops per microsecond (== Mops/s) for an L-app."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.completed.get(app_name, 0) * 1000.0 / self.elapsed_ns

    def app_core_seconds(self, app_name: str) -> int:
        return self.buckets.get(f"app:{app_name}", 0)

    def cores_equivalent(self, category: str) -> float:
        """Busy time of one bucket expressed in cores.

        ``busy / elapsed`` directly: the naive form divides busy by the
        whole machine's time (elapsed * num_cores) and scales back up by
        num_cores, which cancels exactly.
        """
        if self.elapsed_ns <= 0:
            return 0.0
        if category == "app":
            busy = sum(v for k, v in self.buckets.items()
                       if k.startswith("app:"))
        else:
            busy = self.buckets.get(category, 0)
        return busy / self.elapsed_ns

    def app_fraction(self) -> float:
        """Fraction of worker-core time doing application work."""
        total = self.elapsed_ns * self.num_worker_cores
        if total <= 0:
            return 0.0
        busy = sum(v for k, v in self.buckets.items() if k.startswith("app:"))
        return busy / total

    def waste_fraction(self) -> float:
        """Fraction of worker-core time in runtime+kernel overhead."""
        total = self.elapsed_ns * self.num_worker_cores
        if total <= 0:
            return 0.0
        waste = self.buckets.get("runtime", 0) + self.buckets.get("kernel", 0)
        return waste / total

    def p99_us(self, app_name: str) -> float:
        return self.latency.get(app_name, {}).get("p99_us", float("nan"))

    def p999_us(self, app_name: str) -> float:
        return self.latency.get(app_name, {}).get("p999_us", float("nan"))

    def client_p99_us(self, app_name: str) -> float:
        return self.client_latency.get(app_name, {}).get("p99_us",
                                                         float("nan"))

    def client_p999_us(self, app_name: str) -> float:
        return self.client_latency.get(app_name, {}).get("p999_us",
                                                         float("nan"))


class ColocationSystem:
    """Base class: apps, submission, measurement windows, reporting."""

    name = "base"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> None:
        self.sim = sim
        self.machine = machine
        self.costs = machine.costs
        #: every system charges operations into the machine's ledger so
        #: per-op breakdowns line up with the hardware-level charges
        self.ledger = machine.ledger
        #: per-request lifecycle recorder (NULL_FLIGHT when tracing is
        #: off; hot paths guard with ``if self.flight.enabled:``)
        self.flight = machine.flight
        self.rngs = rngs
        #: cores running application work; by convention core 0 is
        #: reserved for the system's scheduler / IOKernel when the system
        #: needs one, so default workers are cores[1:].
        self.worker_cores = worker_cores if worker_cores is not None \
            else machine.cores[1:]
        if not self.worker_cores:
            raise ValueError("need at least one worker core")
        self.apps: List[App] = []
        self._measuring_since: Optional[int] = None
        #: how strongly memory-bus contention inflates request service
        #: times (0 = decoupled; Figure 13a uses a positive value).  The
        #: inflation applies above a half-loaded bus:
        #:   service' = service * (1 + sensitivity * max(0, util - 0.5))
        self.bus_sensitivity: float = 0.0

    # ------------------------------------------------------------------
    @property
    def latency_apps(self) -> List[App]:
        return [app for app in self.apps if app.is_latency]

    @property
    def batch_apps(self) -> List[App]:
        return [app for app in self.apps if not app.is_latency]

    def add_app(self, app: App) -> None:
        if any(existing.name == app.name for existing in self.apps):
            raise ValueError(f"duplicate app name {app.name!r}")
        self.apps.append(app)

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Open-loop intake; subclasses react in ``on_arrival``."""
        if self.flight.enabled:
            self.flight.on_submit(request)
        request.app.enqueue(request)
        self.on_arrival(request.app, request)

    def on_arrival(self, app: App, request: Request) -> None:
        raise NotImplementedError

    def begin_service(self, request: Request,
                      core_id: Optional[int] = None) -> None:
        """A core begins (or resumes, after preempt/IO) serving a request.

        The one chokepoint every system's dispatch path goes through:
        stamps ``start_ns``, records server-side queue wait on the
        *first* start only, and marks the flight's ``run_start``.
        """
        now = self.sim.now
        if request.start_ns is None:
            request.app.queue_wait.record(now - request.arrival_ns)
        request.start_ns = now
        if self.flight.enabled:
            self.flight.mark(request, "run_start", core=core_id)

    def effective_service_ns(self, request: Request) -> int:
        """Service time inflated by current memory-bus contention."""
        if self.bus_sensitivity <= 0.0:
            return request.service_ns
        over = max(0.0, self.machine.membus.utilization() - 0.5)
        return int(request.service_ns * (1.0 + self.bus_sensitivity * over))

    def start(self) -> None:
        """Begin scheduling (called once, before sim.run)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Measurement window control
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        """Discard warmup statistics; call mid-simulation via sim.at()."""
        for app in self.apps:
            app.reset_measurements()
        for core in self.worker_cores:
            core.settle()
            core.acct.clear()
        # Op statistics cover the same window the report does.
        self.ledger.reset()
        self._measuring_since = self.sim.now

    def report(self) -> SystemReport:
        since = self._measuring_since if self._measuring_since is not None \
            else 0
        elapsed = self.sim.now - since
        buckets: Dict[str, int] = {}
        for core in self.worker_cores:
            core.settle()
            for category, value in core.acct.buckets.items():
                buckets[category] = buckets.get(category, 0) + value
        rep = SystemReport(
            system=self.name,
            elapsed_ns=elapsed,
            num_worker_cores=len(self.worker_cores),
            buckets=buckets,
            fault_ops=self.ledger.op_counts(domain="fault"),
            fallback_ops=self.ledger.op_counts(domain="fallback"),
        )
        for app in self.apps:
            if app.is_latency:
                rep.latency[app.name] = summarize_ns(app.latency.samples)
                rep.queue_wait[app.name] = summarize_ns(
                    app.queue_wait.samples)
                rep.completed[app.name] = app.completed.value
            else:
                rep.useful_ns[app.name] = app.useful_ns
        return rep
