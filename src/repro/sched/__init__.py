"""Shared infrastructure for the colocation scheduler systems.

Every system under test (VESSEL, Caladan and its Delay-Range variants,
Arachne, Linux CFS, and the zero-overhead ideal scheduler) implements the
:class:`~repro.sched.base.ColocationSystem` interface, so the experiment
harness can swep systems interchangeably over identical machines, apps,
and arrival processes.
"""

from repro.sched.base import ColocationSystem, SystemReport

__all__ = ["ColocationSystem", "SystemReport"]
