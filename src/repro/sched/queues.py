"""Shared run-queue primitives and core-scan helpers.

Every scheduling system in the repo keeps two kinds of state the policy
layer cares about: *runnable-thread queues* (per-core FIFOs, a global
best-effort queue, MLFQ levels) and *core scans* (find an idle core,
find a preemption victim, find the shortest queue).  This module is the
single home for both, so a new policy composes existing primitives
instead of re-implementing its own deques — and so VESSEL and the
baselines (Caladan, Arachne, Linux CFS) answer "which core?" questions
through the same, identically-ordered helpers.

Determinism contract: every helper iterates its input in the order
given (core dicts preserve insertion order) and breaks ties toward the
earliest element, so two runs over the same state pick the same core.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class FifoQueue(deque):
    """A single-level FIFO run queue (the default per-core discipline).

    Subclasses :class:`collections.deque` so the per-op hot calls
    (``append``/``popleft``/``remove``/``__len__``/``__iter__``) stay at
    C speed — the mechanism touches a run queue on every placement and
    every served request.  Interface contract shared with
    :class:`MultiLevelQueue` — mechanism code only uses these methods,
    so a policy can swap the discipline by overriding
    ``SchedPolicy.make_core_queue``:

    * ``append(item)``    — enqueue at the discipline's insert point;
    * ``popleft()``       — dequeue the item ``peek()`` shows;
    * ``peek()``          — next item to run, or ``None``;
    * ``remove(item)``    — drop one item wherever it queues;
    * ``purge(pred)``     — drop every item matching ``pred``;
    * ``__len__/__bool__/__iter__`` — inspection (oldest first).
    """

    __slots__ = ()

    def peek(self):
        return self[0] if self else None

    def purge(self, pred: Callable[[T], bool]) -> int:
        """Remove every queued item matching ``pred``; returns count."""
        kept = [item for item in self if not pred(item)]
        removed = len(self) - len(kept)
        if removed:
            self.clear()
            self.extend(kept)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FifoQueue {list(self)!r}>"


class MultiLevelQueue:
    """A fixed number of FIFO levels; level 0 pops first (MLFQ shape).

    ``level_of`` maps an item to its current level at *enqueue* time
    (an MLFQ policy keeps that map and demotes/promotes between
    enqueues).  Items past the last level clamp into it.  The interface
    matches :class:`FifoQueue`, so the mechanism layer is oblivious to
    which discipline a policy installed.
    """

    __slots__ = ("_levels", "level_of")

    def __init__(self, levels: int, level_of: Callable[[T], int]) -> None:
        if levels < 1:
            raise ValueError(f"need at least one level, got {levels}")
        self._levels: List[deque] = [deque() for _ in range(levels)]
        self.level_of = level_of

    def append(self, item) -> None:
        level = min(max(0, self.level_of(item)), len(self._levels) - 1)
        self._levels[level].append(item)

    def popleft(self):
        for level in self._levels:
            if level:
                return level.popleft()
        raise IndexError("pop from an empty MultiLevelQueue")

    def peek(self):
        for level in self._levels:
            if level:
                return level[0]
        return None

    def remove(self, item) -> None:
        for level in self._levels:
            if item in level:
                level.remove(item)
                return
        raise ValueError(f"{item!r} not queued")

    def purge(self, pred: Callable[[T], bool]) -> int:
        removed = 0
        for i, level in enumerate(self._levels):
            kept = [item for item in level if not pred(item)]
            removed += len(level) - len(kept)
            self._levels[i] = deque(kept)
        return removed

    def __len__(self) -> int:
        return sum(len(level) for level in self._levels)

    def __bool__(self) -> bool:
        return any(self._levels)

    def __iter__(self):
        for level in self._levels:
            yield from level

    def __contains__(self, item) -> bool:
        return any(item in level for level in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MultiLevelQueue {[list(lv) for lv in self._levels]!r}>"


# ----------------------------------------------------------------------
# Core scans.  ``states`` is any iterable of per-core state objects with
# at least ``.core`` (hardware core) and ``.kind`` attributes — the
# shape VESSEL and every baseline already use.
# ----------------------------------------------------------------------
def first_where(states: Iterable[T], pred: Callable[[T], bool]) -> Optional[T]:
    """First core state matching ``pred`` in iteration order."""
    for state in states:
        if pred(state):
            return state
    return None


def first_idle(states: Iterable[T]) -> Optional[T]:
    """First core with no assignment and no in-flight work."""
    for state in states:
        if state.kind is None and not state.core.busy:
            return state
    return None


def first_of_kind(states: Iterable[T], kind: str) -> Optional[T]:
    """First core currently assigned the given kind (e.g. ``"B"``)."""
    for state in states:
        if state.kind == kind:
            return state
    return None


def shortest_queue(states: Iterable[T],
                   eligible: Callable[[T], bool]) -> Optional[T]:
    """Eligible core with the fewest queued threads (first on ties)."""
    best = None
    best_depth = None
    for state in states:
        if not eligible(state):
            continue
        depth = len(state.fifo)
        if best_depth is None or depth < best_depth:
            best, best_depth = state, depth
    return best


def longest_queue(states: Iterable[T],
                  eligible: Callable[[T], bool]) -> Optional[T]:
    """Eligible core with the most queued threads (first on ties)."""
    best = None
    best_depth = 0
    for state in states:
        if not eligible(state):
            continue
        depth = len(state.fifo)
        if depth > best_depth:
            best, best_depth = state, depth
    return best


def rr_scan(items: List[T], start: int,
            pred: Callable[[T], bool]) -> Optional[int]:
    """Round-robin scan: index of the first match at/after ``start``
    (wrapping), or ``None``.  The Linux-CFS wake path uses this to
    spread request wakeups across sleeping server threads."""
    count = len(items)
    for offset in range(count):
        index = (start + offset) % count
        if pred(items[index]):
            return index
    return None
