"""The VESSEL core scheduler as a colocation system (§4.5, Figure 7b).

One-level, global policy: cores are not owned by applications.  Each
worker core has a FIFO queue of runnable threads (possibly from different
uProcesses) plus there is one global best-effort queue.  The scheduler —
a dedicated busy-polling core, like Caladan's IOKernel but far lighter —
reacts to arrivals and periodically rebalances:

* a latency app with pending requests gets more server threads, placed on
  idle cores first (UMWAIT wake + userspace install), then on cores
  running best-effort work (Uintr preemption: command queue push +
  ``senduipi``; the victim's handler passes the call gate and switches in
  ~0.36 µs), then queued on the shortest per-core FIFO;
* a core whose thread parks switches to the next FIFO thread (0.16 µs
  park switch), else pops the global BE queue, else UMWAITs;
* at request boundaries a core rotates to its FIFO head once the current
  thread has run a quantum — this is what keeps dense colocation fair
  (Figure 10) at 0.16 µs per rotation instead of 5.3 µs.

Every switch goes through the functional layer (`UserspaceSwitch`), so
PKRU values and CPUID_TO_TASK_MAP stay correct during performance runs —
the simulation would fault (MpkFault) if the mechanism were wired wrong.

Since the policy split (ghOSt-style), this module is the *mechanism*
half only: it delivers events to a pluggable :class:`SchedPolicy` and
executes the decisions the policy returns, through the same Uintr /
call-gate / containment machinery and charging the same ledger ops.
``VesselDefaultPolicy`` reproduces the behaviour described above
byte-for-byte; pass ``policy=`` to swap in a zoo policy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Union

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.kernel.signals import KernelSignals, SIGSEGV, Signal
from repro.sched.base import ColocationSystem
from repro.sched.policy import (
    DEFAULT_ACTIVATION_BURST, DEFAULT_L_PREEMPT_QUANTUM_NS,
    DEFAULT_ROTATION_QUANTUM_NS, Decision, Enqueue, Idle, Place, Preempt,
    Rotate, Run, SchedPolicy, Steal, make_policy)
from repro.uprocess.loader import ProgramImage
from repro.uprocess.manager import Manager
from repro.uprocess.threads import UThread, UThreadState
from repro.uprocess.usignals import Command, CommandKind
from repro.vessel.runtime import VesselRuntime
from repro.workloads.base import App, Request

#: backwards-compatible aliases — the quanta are policy parameters now
#: (see ``repro.sched.policy``); these names keep old imports working.
ROTATION_QUANTUM_NS = DEFAULT_ROTATION_QUANTUM_NS
L_PREEMPT_QUANTUM_NS = DEFAULT_L_PREEMPT_QUANTUM_NS
ACTIVATION_BURST = DEFAULT_ACTIVATION_BURST
#: how long the scheduler waits for a preemption command to be acted on
#: before escalating (normal Uintr ack is ~0.2 µs; the deadline leaves
#: an order of magnitude of slack before the watchdog interferes)
PREEMPT_ACK_NS = 3_000
#: scheduler-liveness watchdog period (a stalled scheduler core is
#: detected and kicked within one period)
HEARTBEAT_INTERVAL_NS = 50_000


class _PendingPreempt:
    """One unacknowledged preemption command awaiting its deadline."""

    __slots__ = ("thread", "event", "sent_at", "attempt")

    def __init__(self, thread: UThread, event: Optional[Event],
                 sent_at: int, attempt: int) -> None:
        self.thread = thread
        self.event = event
        self.sent_at = sent_at
        self.attempt = attempt


class CoreState:
    """Scheduler-side view of one worker core (read-only to policies)."""

    __slots__ = ("core", "fifo", "kind", "thread", "batch_run", "request",
                 "run_started", "uitt_index")

    def __init__(self, core: Core, fifo) -> None:
        self.core = core
        #: run queue; discipline chosen by the policy (FIFO by default)
        self.fifo = fifo
        self.kind: Optional[str] = None  # None | "L" | "B" | "switch"
        self.thread: Optional[UThread] = None
        self.batch_run = None
        self.request: Optional[Request] = None
        self.run_started = 0
        self.uitt_index = -1


class AppState:
    """Scheduler-side view of one application (read-only to policies)."""

    __slots__ = ("app", "uproc", "threads", "parked", "queued_servers")

    def __init__(self, app: App, uproc) -> None:
        self.app = app
        self.uproc = uproc
        self.threads: List[UThread] = []
        self.parked: Deque[UThread] = deque()
        #: threads sitting in some core run queue (activated, not running)
        self.queued_servers = 0


#: old private names, kept for callers that poked at internals
_CoreState = CoreState
_AppState = AppState


class PolicyContext:
    """The mechanism state a policy may *read* (see ``SchedPolicy.bind``).

    Policies get no direct reference to the system: every mutation goes
    through a returned :class:`Decision`, which the mechanism validates
    before executing — a buggy policy is contained the same way a buggy
    application is (§4.3).
    """

    __slots__ = ("_system",)

    def __init__(self, system: "VesselSystem") -> None:
        self._system = system

    @property
    def now(self) -> int:
        return self._system.sim.now

    @property
    def ledger(self):
        """The mechanism's op ledger, for charging policy-side control
        actions (read ``ledger.enabled`` before building arguments)."""
        return self._system.ledger

    def core_states(self):
        """Per-core states, in the fixed worker-core order."""
        return self._system._cores.values()

    def core_state(self, core_id: int) -> Optional[CoreState]:
        return self._system._cores.get(core_id)

    def app_states(self):
        """Per-app states, in app-registration order."""
        return self._system._apps.values()

    def app_state(self, name: str) -> Optional[AppState]:
        return self._system._apps.get(name)

    def next_be_thread(self) -> Optional[UThread]:
        """Runnable head of the global best-effort queue (suspended
        applications skipped), without dequeuing it."""
        system = self._system
        for thread in system._be_queue:
            if thread.payload.name not in system._suspended_apps:
                return thread
        return None

    def sibling_of(self, core_id: int) -> Optional[CoreState]:
        """SMT sibling's core state: worker cores pair up in order
        (first with second, third with fourth, ...); ``None`` for an
        unpaired trailing core."""
        cores = list(self._system._cores.values())
        for index, state in enumerate(cores):
            if state.core.id == core_id:
                mate = index + 1 if index % 2 == 0 else index - 1
                if 0 <= mate < len(cores):
                    return cores[mate]
                return None
        return None


class VesselSystem(ColocationSystem):
    """VESSEL over a scheduling domain of uProcesses."""

    name = "vessel"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None,
                 policy: Union[SchedPolicy, str, None] = None,
                 rotation_quantum_ns: Optional[int] = None,
                 l_preempt_quantum_ns: Optional[int] = None,
                 containment: bool = True,
                 preempt_ack_ns: int = PREEMPT_ACK_NS,
                 heartbeat_interval_ns: int = HEARTBEAT_INTERVAL_NS) -> None:
        super().__init__(sim, machine, rngs, worker_cores)
        if policy is None:
            policy = make_policy("default")
        elif isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        # Explicit quanta override whatever the policy was built with
        # (backwards-compatible with the pre-framework constructor).
        if rotation_quantum_ns is not None:
            policy.rotation_quantum_ns = rotation_quantum_ns
        if l_preempt_quantum_ns is not None:
            policy.l_preempt_quantum_ns = l_preempt_quantum_ns
        #: failure-containment machinery (preemption watchdog, SIGSEGV
        #: teardown, scheduler-liveness heartbeat); the ablation toggle
        #: for fault-injection experiments
        self.containment = containment
        self.preempt_ack_ns = preempt_ack_ns
        self.heartbeat_interval_ns = heartbeat_interval_ns
        self.rng = rngs.stream("vessel")
        self.manager = Manager(costs=self.costs, rng=self.rng,
                               ledger=self.ledger)
        self.signals = KernelSignals(sim, self.costs, ledger=self.ledger)
        self.domain = self.manager.create_domain(self.worker_cores,
                                                 name="vessel-domain")
        self.runtime = VesselRuntime(self.domain)
        self.switcher = self.domain.switcher
        self.policy.bind(PolicyContext(self))
        self._cores: Dict[int, CoreState] = {
            core.id: CoreState(core, self.policy.make_core_queue())
            for core in self.worker_cores
        }
        self._apps: Dict[str, AppState] = {}
        self._be_queue: Deque[UThread] = deque()
        self._scheduler_core_id = 0  # the dedicated busy-polling core
        self._suspended_apps: set = set()
        self._suspended_threads: Deque[UThread] = deque()
        self.preemptions = 0
        self.rotations = 0
        #: decisions the mechanism refused to execute (buggy policy)
        self.policy_rejects = 0
        self._started = False
        # --- containment state -------------------------------------------
        self._pending_preempts: Dict[int, _PendingPreempt] = {}
        self._sched_stalled = False
        self._last_scan_ns = 0
        self._scan_event: Optional[Event] = None
        self.fallback_retries = 0
        self.fallback_ipis = 0
        self.contained_crashes = 0
        self.sched_restarts = 0
        self.rogue_kills = 0

    # The quanta are policy parameters now; these properties keep the
    # old ``system.rotation_quantum_ns`` attribute access working.
    @property
    def rotation_quantum_ns(self) -> int:
        return self.policy.rotation_quantum_ns

    @rotation_quantum_ns.setter
    def rotation_quantum_ns(self, value: int) -> None:
        self.policy.rotation_quantum_ns = value

    @property
    def l_preempt_quantum_ns(self) -> int:
        return self.policy.l_preempt_quantum_ns

    @l_preempt_quantum_ns.setter
    def l_preempt_quantum_ns(self, value: int) -> None:
        self.policy.l_preempt_quantum_ns = value

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_app(self, app: App) -> None:
        super().add_app(app)
        uproc = self.manager.create_uprocess(
            self.domain, ProgramImage(app.name), name=app.name)
        if self.containment:
            # Fault shielding (§4.3): a SIGSEGV on this uProcess's boot
            # kProcess lands in the runtime's handler, which tears the
            # uProcess down without touching co-located ones.  Without
            # containment the kernel's default action applies.
            self.signals.register(
                uproc.boot_kprocess, SIGSEGV,
                lambda proc, sig, u=uproc: self._on_sigsegv(u))
        state = AppState(app, uproc)
        self._apps[app.name] = state
        count = len(self.worker_cores)
        for i in range(count):
            thread = self.runtime.pthread_create(uproc, f"{app.name}/w{i}")
            thread.state = UThreadState.PARKED
            thread.payload = app
            state.threads.append(thread)
            if app.is_latency:
                state.parked.append(thread)
            else:
                self._be_queue.append(thread)
        self.policy.on_app_added(state)

    @property
    def effective_scan_ns(self) -> int:
        """Scan interval, stretched when the per-core pass outgrows it."""
        per_pass = len(self.worker_cores) * self.costs.vessel_sched_per_core_ns
        return max(self.costs.vessel_scan_interval_ns, per_pass)

    @property
    def control_plane_factor(self) -> float:
        """Reaction-latency multiplier from scheduler-core congestion.

        One scheduler core does ``vessel_sched_per_core_ns`` of work per
        managed core per scan; as its utilization approaches 1 the time
        until it acts on a fresh signal grows like 1/(1-rho) — this is
        the Figure 12 scaling knee (~42 cores for VESSEL).
        """
        rho = (len(self.worker_cores) * self.costs.vessel_sched_per_core_ns
               / self.costs.vessel_scan_interval_ns)
        return 1.0 / (1.0 - min(rho, 0.97))

    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        uintr = self.machine.uintr
        for state in self._cores.values():
            core_id = state.core.id
            uintr.register_handler(core_id,
                                   lambda vec, cid=core_id: self._on_uintr(cid))
            uintr.on_user_resume(core_id)
            state.uitt_index = uintr.register_sender(
                self._scheduler_core_id, core_id, vector=1)
            if self.containment:
                # Kernel-IPI escape hatch for preemptions the Uintr path
                # never acknowledges (dropped delivery, rogue thread).
                self.machine.ipi.register_handler(
                    core_id,
                    lambda vec, cid=core_id: self._on_fallback_ipi(cid))
        # Prime every core with best-effort work.
        for state in self._cores.values():
            self._fill_core(state)
        self._last_scan_ns = self.sim.now
        self._scan_event = self.sim.after(self.effective_scan_ns, self._scan)
        if self.containment:
            self.sim.post(self.heartbeat_interval_ns, self._heartbeat)

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------
    def on_arrival(self, app: App, request: Request) -> None:
        # The busy-polling scheduler notices new work within one poll
        # iteration; the reaction itself happens out-of-band, the worker
        # core pays only for its own switch.
        state = self._apps.get(app.name)
        if state is None:
            # The application was destroyed; clients see resets (§5.1).
            app.queue.clear()
            return
        if self._sched_stalled:
            # The scheduler core is not polling; requests pile up in the
            # app queue until the liveness watchdog restarts the scan.
            return
        react = int(max(self.costs.sched_react_ns,
                        self.effective_scan_ns // 2)
                    * self.control_plane_factor)
        self.sim.post(react, self._dispatch_app, state)

    def _dispatch_app(self, state: AppState) -> None:
        """Ensure enough server threads are active for this app's queue."""
        if not state.app.queue:
            return
        self._run_decisions(self.policy.on_arrival(state))

    def _return_be(self, thread: UThread) -> None:
        """Park a best-effort thread back into the global queue."""
        thread.state = UThreadState.PARKED
        thread.core_id = None
        self._be_queue.append(thread)

    # ------------------------------------------------------------------
    # Decision execution.  The policy computes one decision at a time
    # against live state; the mechanism validates and executes it before
    # the policy's generator resumes — so the sequential behaviour is
    # exactly the pre-framework inline code's, and an invalid decision
    # from a buggy policy is rejected instead of corrupting state.
    # ------------------------------------------------------------------
    def _run_decisions(self, decisions) -> None:
        for decision in decisions:
            if decision is not None:
                self._execute(decision)

    def _reject(self, decision: Decision) -> bool:
        self.policy_rejects += 1
        if self.ledger.enabled:
            self.ledger.count_op("policy:rejected", domain="policy")
        return False

    def _execute(self, decision: Decision) -> bool:
        """Validate + execute one decision; False if it was rejected."""
        if isinstance(decision, Place):
            return self._exec_place(decision)
        if isinstance(decision, Preempt):
            return self._exec_preempt(decision)
        if isinstance(decision, Enqueue):
            return self._exec_enqueue(decision)
        if isinstance(decision, Run):
            return self._exec_run(decision)
        if isinstance(decision, Steal):
            return self._exec_steal(decision)
        if isinstance(decision, Idle):
            return self._exec_idle(decision)
        # Rotate is only meaningful at a request boundary; the serving
        # loop consumes it directly (see _serve_next).
        return self._reject(decision)

    def _take_parked(self, thread: UThread) -> Optional[AppState]:
        """Claim a parked latency thread for placement, or None."""
        app_state = self._apps.get(thread.payload.name)
        if app_state is None or thread not in app_state.parked:
            return None
        app_state.parked.remove(thread)
        return app_state

    def _exec_place(self, decision: Place) -> bool:
        state = self._cores.get(decision.core_id)
        if state is None or state.kind is not None or state.core.busy:
            return self._reject(decision)
        if self._take_parked(decision.thread) is None:
            return self._reject(decision)
        self._wake_core_with(state, decision.thread)
        return True

    def _exec_preempt(self, decision: Preempt) -> bool:
        state = self._cores.get(decision.core_id)
        if state is None or decision.victim is not state.thread:
            return self._reject(decision)
        if state.kind == "B":
            if decision.incoming is None:
                return self._exec_force_idle(state)
            if self._take_parked(decision.incoming) is None:
                return self._reject(decision)
            self._preempt_for(state, decision.incoming)
            return True
        if state.kind == "L":
            return self._exec_l_preempt(state, decision)
        return self._reject(decision)

    def _exec_force_idle(self, state: CoreState) -> bool:
        """Evict a best-effort thread with no replacement (the forced
        idle of Linux core scheduling: a mismatched SMT sibling must
        not run)."""
        self.preemptions += 1
        if self.ledger.enabled:
            self.ledger.count_op("sched_preemption", core=state.core.id,
                                 domain="vessel")
        if state.batch_run is not None:
            state.batch_run.preempt()
            state.batch_run = None
        thread = state.thread
        state.thread = None
        state.kind = None
        if thread is not None:
            self._return_be(thread)
        state.core.set_idle()
        return True

    def _exec_enqueue(self, decision: Enqueue) -> bool:
        state = self._cores.get(decision.core_id)
        if state is None or state.kind != "L":
            return self._reject(decision)
        app_state = self._take_parked(decision.thread)
        if app_state is None:
            return self._reject(decision)
        state.fifo.append(decision.thread)
        app_state.queued_servers += 1
        return True

    def _exec_run(self, decision: Run) -> bool:
        state = self._cores.get(decision.core_id)
        if state is None or state.kind is not None or state.core.busy \
                or state.batch_run is not None:
            return self._reject(decision)
        thread = decision.thread
        if thread in state.fifo:
            state.fifo.remove(thread)
            self._apps[thread.payload.name].queued_servers -= 1
            self._start_thread(state, thread, preempt=False)
            return True
        if thread in self._be_queue:
            if thread.payload.name in self._suspended_apps:
                return self._reject(decision)
            # Suspended threads queued ahead of the chosen one step
            # aside (exactly the old _fill_core pop-and-skip loop).
            while self._be_queue and self._be_queue[0] is not thread \
                    and self._be_queue[0].payload.name in self._suspended_apps:
                self._suspended_threads.append(self._be_queue.popleft())
            self._be_queue.remove(thread)
            self._start_thread(state, thread, preempt=False)
            return True
        return self._reject(decision)

    def _exec_steal(self, decision: Steal) -> bool:
        state = self._cores.get(decision.core_id)
        source = self._cores.get(decision.from_core_id)
        if state is None or source is None or source is state \
                or state.kind is not None or state.core.busy \
                or not source.fifo:
            return self._reject(decision)
        thread = source.fifo.popleft()
        self._apps[thread.payload.name].queued_servers -= 1
        self._start_thread(state, thread, preempt=False)
        return True

    def _exec_idle(self, decision: Idle) -> bool:
        state = self._cores.get(decision.core_id)
        if state is None or state.kind is not None or state.core.busy:
            return self._reject(decision)
        # Threads of suspended apps at the BE queue's head move to the
        # held list (the old _fill_core drained them while searching).
        while self._be_queue \
                and self._be_queue[0].payload.name in self._suspended_apps:
            self._suspended_threads.append(self._be_queue.popleft())
        state.kind = None
        state.thread = None
        state.core.set_idle()
        return True

    # ------------------------------------------------------------------
    # Periodic scan (rebalance + BE filling)
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        if self._sched_stalled:
            return
        self._last_scan_ns = self.sim.now
        self._run_decisions(self.policy.on_tick())
        self._scan_event = self.sim.after(self.effective_scan_ns, self._scan)

    # ------------------------------------------------------------------
    # Scheduler-core liveness (containment for fault class "d")
    # ------------------------------------------------------------------
    def stall_scheduler(self) -> None:
        """Fault injection: the dedicated scheduler core stops polling.

        Arrivals and rebalancing cease; worker cores keep draining what
        they already have.  With containment on, the kernel-side
        heartbeat notices within one period and restarts the scan loop.
        """
        self._sched_stalled = True
        if self._scan_event is not None and self._scan_event.alive:
            self._scan_event.cancel()
        self._scan_event = None
        if self.ledger.enabled:
            self.ledger.count_op("fault:sched_stall",
                                 core=self._scheduler_core_id, domain="fault")

    def _heartbeat(self) -> None:
        now = self.sim.now
        if self._sched_stalled \
                or now - self._last_scan_ns > self.heartbeat_interval_ns:
            self.sched_restarts += 1
            if self.ledger.enabled:
                self.ledger.count_op("fallback:sched_restart",
                                     core=self._scheduler_core_id,
                                     domain="fallback")
            # The kernel watchdog kicks the scheduler process back onto
            # its core (modeled as one ioctl on the manager's kProcess).
            self.manager.syscalls.ioctl(self.manager.kprocess,
                                        "watchdog_restart")
            self._sched_stalled = False
            self._last_scan_ns = now
            self._scan_event = self.sim.call_soon(self._scan)
        self.sim.post(self.heartbeat_interval_ns, self._heartbeat)

    def _exec_l_preempt(self, state: CoreState, decision: Preempt) -> bool:
        """§4.4 preemption: a long request is hogging a core other
        latency threads are queued on.  The request is suspended (its
        remaining service returns to the front of its app's queue) and
        the core rotates via a Uintr-priced switch."""
        if state.request is None or decision.incoming not in state.fifo:
            return self._reject(decision)
        request = state.request
        remaining = state.core.preempt()
        request.service_ns = max(1, remaining)
        if self.flight.enabled:
            self.flight.mark(request, "preempt", core=state.core.id)
        request.app.queue.appendleft(request)
        state.request = None
        self.preemptions += 1
        if self.ledger.enabled:
            self.ledger.count_op("sched_preemption", core=state.core.id,
                                 domain="vessel")
        thread = state.thread
        app_state = self._apps[thread.payload.name]
        thread.state = UThreadState.PARKED
        state.fifo.append(thread)
        app_state.queued_servers += 1
        state.thread = None
        state.kind = None
        self.switcher.park_current(state.core)
        next_thread = decision.incoming
        state.fifo.remove(next_thread)
        self._apps[next_thread.payload.name].queued_servers -= 1
        self._start_thread(state, next_thread, preempt=True)
        return True

    def _fill_core(self, state: CoreState) -> None:
        """Idle core: ask the policy what to run (queue head first, then
        the global BE queue, else UMWAIT, under the default policy)."""
        decision = self.policy.on_core_idle(state)
        if decision is None or not self._execute(decision):
            # A policy that answers nothing executable leaves the core
            # in UMWAIT; the next scan asks again.
            state.kind = None
            state.thread = None
            state.core.set_idle()

    # ------------------------------------------------------------------
    # Switching machinery
    # ------------------------------------------------------------------
    def _wake_core_with(self, state: _CoreState, thread: UThread) -> None:
        """UMWAIT wake + install (the core was idle)."""
        state.kind = "switch"
        state.thread = thread
        if self.ledger.enabled:
            self.ledger.charge("umwait_wake", self.costs.umwait_wake_ns,
                               core=state.core.id, domain="vessel")
        cost = self.costs.umwait_wake_ns + self.switcher.switch(
            state.core, thread, preempt=False)
        state.core.run("runtime", cost, lambda: self._begin_run(state))

    def _preempt_for(self, state: _CoreState, thread: UThread) -> None:
        """Preempt the BE thread on ``state.core`` in favour of ``thread``.

        Functional path: push a command, ``senduipi``; the handler fires
        after the hardware delivery latency and performs the switch.
        """
        self.preemptions += 1
        if self.ledger.enabled:
            self.ledger.count_op("sched_preemption", core=state.core.id,
                                 domain="vessel")
        self.domain.queues.of(state.core.id).push(
            Command(CommandKind.RUN_THREAD, thread))
        # Reserve the core so concurrent dispatches pick other victims.
        state.kind = "switch"
        self.machine.uintr.senduipi(self._scheduler_core_id, state.uitt_index)
        if self.containment:
            self._arm_watchdog(state, thread, attempt=1)

    # ------------------------------------------------------------------
    # Preemption watchdog (containment for fault classes "a" and "c")
    # ------------------------------------------------------------------
    def _arm_watchdog(self, state: _CoreState, thread: UThread,
                      attempt: int) -> None:
        pending = self._pending_preempts.get(state.core.id)
        sent_at = pending.sent_at if pending is not None else self.sim.now
        event = self.sim.after(self.preempt_ack_ns, self._preempt_deadline,
                               state, thread, attempt)
        self._pending_preempts[state.core.id] = _PendingPreempt(
            thread, event, sent_at, attempt)

    def _ack_preempt(self, core_id: int) -> None:
        pending = self._pending_preempts.pop(core_id, None)
        if pending is not None and pending.event is not None \
                and pending.event.alive:
            pending.event.cancel()

    def _preempt_deadline(self, state: _CoreState, thread: UThread,
                          attempt: int) -> None:
        core_id = state.core.id
        pending = self._pending_preempts.get(core_id)
        if pending is None or pending.thread is not thread:
            return
        if thread.state is UThreadState.DEAD or not thread.uproc.alive:
            # The target vanished (its app was torn down); release the
            # core reservation so the scan can refill it.
            del self._pending_preempts[core_id]
            if state.kind == "switch" and state.batch_run is None \
                    and not state.core.busy:
                state.kind = None
                state.thread = None
                self._fill_core(state)
            return
        if attempt == 1:
            # First escalation: the notification may have been lost in
            # flight, but the vector is still posted in the PIR, so a
            # fresh senduipi re-raises it at Uintr cost.
            self.fallback_retries += 1
            if self.ledger.enabled:
                self.ledger.count_op("fallback:uintr_retry", core=core_id,
                                     domain="fallback")
            self.machine.uintr.senduipi(self._scheduler_core_id,
                                        state.uitt_index)
            self._arm_watchdog(state, thread, attempt=2)
            return
        # Second escalation: give up on the userspace path; trap into the
        # kernel and interrupt the victim core with an IPI (~15x the
        # Uintr cost — visible in the fallback breakdown rows).
        del self._pending_preempts[core_id]
        self.fallback_ipis += 1
        if self.ledger.enabled:
            self.ledger.count_op("fallback:kernel_ipi", core=core_id,
                                 domain="fallback")
        self.manager.syscalls.ioctl(self.manager.kprocess, "vessel_kick")
        self._pending_preempts[core_id] = _PendingPreempt(
            thread, None, pending.sent_at, attempt=3)
        self.machine.ipi.send(core_id, op="fallback:ipi_deliver",
                              domain="fallback")

    def _on_fallback_ipi(self, core_id: int) -> None:
        """Kernel IPI handler: forcibly evict the occupant and install
        the stuck preemption's target thread via a kernel context switch."""
        pending = self._pending_preempts.pop(core_id, None)
        if pending is None:
            return  # the Uintr path won the race after all
        state = self._cores[core_id]
        victim = state.thread
        if state.batch_run is not None:
            state.batch_run.preempt()
            state.batch_run = None
        elif state.core.busy:
            remaining = state.core.preempt()
            if state.request is not None:
                # An in-flight request survives the forced switch: its
                # unfinished service returns to the front of its queue.
                state.request.service_ns = max(1, remaining)
                if self.flight.enabled:
                    self.flight.mark(state.request, "preempt",
                                     core=state.core.id)
                state.request.app.queue.appendleft(state.request)
        state.thread = None
        state.request = None
        if victim is not None and victim.state is not UThreadState.DEAD:
            if victim.rogue:
                # A thread that ignores the preemption protocol loses its
                # right to run (§4.3's non-cooperative case): destroy it
                # rather than return it to the best-effort queue.
                victim.core_id = None
                victim.destroy()
                self.rogue_kills += 1
                if self.ledger.enabled:
                    self.ledger.count_op("fault:rogue_kill", core=core_id,
                                         domain="fault")
            elif not victim.payload.is_latency:
                self._return_be(victim)
            else:
                victim.state = UThreadState.PARKED
                victim.core_id = None
                self._apps[victim.payload.name].parked.append(victim)
        # Consume whatever commands are still queued in kernel-forced
        # privileged mode; the stuck thread itself installs below, any
        # other still-live RUN_THREAD target goes to the FIFO.
        thread = pending.thread
        for command in self.domain.process_commands(core_id):
            if command.kind is not CommandKind.RUN_THREAD:
                continue
            other = command.payload
            if other is not thread and other.state is not UThreadState.DEAD \
                    and other.uproc.alive:
                state.fifo.append(other)
                self._apps[other.payload.name].queued_servers += 1
        if thread.state is UThreadState.DEAD or not thread.uproc.alive:
            state.kind = None
            self._fill_core(state)
            return
        state.kind = "switch"
        cost = self.costs.kernel_ctx_switch_ns
        if self.ledger.enabled:
            self.ledger.charge("fallback:forced_switch", cost, core=core_id,
                               domain="fallback")
        state.core.run("kernel", cost,
                       lambda: self._forced_switch_done(state, thread))

    def _forced_switch_done(self, state: _CoreState,
                            thread: UThread) -> None:
        if thread.state is UThreadState.DEAD or not thread.uproc.alive:
            state.kind = None
            state.thread = None
            self._fill_core(state)
            return
        self._start_thread(state, thread, preempt=False)

    def _on_uintr(self, core_id: int) -> None:
        """Uintr handler: runs on the victim core, in privileged mode."""
        state = self._cores[core_id]
        current = state.thread
        if current is not None and current.rogue:
            # Non-cooperative thread: it runs with user interrupts masked,
            # so the handler never executes and commands stay queued.  The
            # watchdog escalates to the kernel-IPI path.
            if self.ledger.enabled:
                self.ledger.count_op("fault:rogue_ignore", core=core_id,
                                     domain="fault")
            return
        self._ack_preempt(core_id)
        commands = self.domain.process_commands(core_id)
        for command in commands:
            if command.kind is not CommandKind.RUN_THREAD:
                continue
            thread = command.payload
            if thread.state is UThreadState.DEAD or not thread.uproc.alive:
                continue
            if state.batch_run is not None:
                state.batch_run.preempt()
                be_thread, state.batch_run = state.thread, None
                if be_thread is not None:
                    self._return_be(be_thread)
            elif state.core.busy:
                # The core moved on (e.g. started an L thread) between
                # send and delivery; queue the thread instead.
                state.fifo.append(thread)
                self._apps[thread.payload.name].queued_servers += 1
                continue
            self._start_thread(state, thread, preempt=True)
        # Every command may have targeted a since-dead thread (its app
        # was torn down between send and delivery): release the core
        # reservation or a batch chunk's completion would wait forever
        # for an install that is never coming.
        self._release_switch_reservation(state)
        if state.kind is None and not state.core.busy:
            self._fill_core(state)

    def _release_switch_reservation(self, state: _CoreState) -> None:
        """Clear a stale "switch" reservation whose incoming thread is
        gone (command consumed, or its app died mid-protocol).  A still
        running batch chunk keeps the core; an empty idle core returns
        to the pool for the next scan."""
        if state.kind != "switch":
            return
        if state.batch_run is not None:
            state.kind = "B"
        elif not state.core.busy:
            state.kind = None
            state.thread = None

    def _start_thread(self, state: _CoreState, thread: UThread,
                      preempt: bool) -> None:
        state.kind = "switch"
        state.thread = thread
        cost = self.switcher.switch(state.core, thread, preempt=preempt)
        if preempt:
            # senduipi + delivery already elapsed as event time.
            cost = max(1, cost - self.costs.uintr_send_ns
                       - self.costs.uintr_deliver_ns)
        state.core.run("runtime", cost, lambda: self._begin_run(state))

    def _begin_run(self, state: _CoreState) -> None:
        thread = state.thread
        assert thread is not None
        app: App = thread.payload
        state.run_started = self.sim.now
        if app.is_latency:
            state.kind = "L"
            self._serve_next(state)
        else:
            state.kind = "B"
            self._run_batch_chunk(state)

    # ------------------------------------------------------------------
    # Latency-app serving loop
    # ------------------------------------------------------------------
    def _serve_next(self, state: CoreState) -> None:
        thread = state.thread
        app: App = thread.payload
        # Time-sliced rotation: at a request boundary, yield to the run
        # queue's head once this thread has held the core for its
        # policy-set quantum.  The slice ends early anyway whenever the
        # app's queue drains, so the quantum only binds for backlogged
        # applications.
        quantum = self.policy.quantum_ns(state)
        if state.fifo and quantum is not None \
                and self.sim.now - state.run_started >= quantum:
            decision = self.policy.on_quantum_expiry(state)
            if isinstance(decision, Rotate) \
                    and decision.core_id == state.core.id:
                self.rotations += 1
                if self.ledger.enabled:
                    self.ledger.count_op("sched_rotation",
                                         core=state.core.id,
                                         domain="vessel")
                self._park_thread(state, requeue=bool(app.queue))
                return
            # None (or anything else): the policy lets the thread keep
            # the core past its quantum.
        request = self.policy.pick_request(state, app)
        if request is None:
            self.policy.on_thread_park(state, thread)
            self._park_thread(state, requeue=False)
            return
        state.request = request
        self.begin_service(request, core_id=state.core.id)
        state.core.run(f"app:{app.name}", self.effective_service_ns(request),
                       lambda: self._request_done(state, request))

    def _request_done(self, state: CoreState, request: Request) -> None:
        state.request = None
        if request.io_wait_ns > 0 and not request.io_done:
            # Park on the device (§4.4): the IO proceeds asynchronously
            # through the runtime's dataplane while this core serves
            # other threads; the completion re-queues the CPU tail.
            request.io_done = True
            if self.flight.enabled:
                self.flight.mark(request, "io_park")
            self.sim.post(request.io_wait_ns, self._io_complete, request)
            self._serve_next(state)
            return
        request.app.complete(request, self.sim.now)
        if self.flight.enabled:
            self.flight.on_complete(request)
        self.policy.on_request_done(state, request)
        self._serve_next(state)

    def _io_complete(self, request: Request) -> None:
        state = self._apps.get(request.app.name)
        if state is None:
            return  # app destroyed while the IO was in flight
        request.service_ns = max(1, request.post_io_service_ns)
        if self.flight.enabled:
            self.flight.mark(request, "io_done")
        request.app.queue.appendleft(request)
        self._dispatch_app(state)

    def _park_thread(self, state: _CoreState, requeue: bool) -> None:
        """The current thread parks (queue empty) or rotates (requeue)."""
        thread = state.thread
        app_state = self._apps[thread.payload.name]
        thread.state = UThreadState.PARKED
        if requeue:
            state.fifo.append(thread)
            app_state.queued_servers += 1
        else:
            app_state.parked.append(thread)
        state.thread = None
        state.kind = None
        # The park's call-gate traversal is part of the switch cost the
        # next _start_thread charges (that composite is what Table 1's
        # ping-pong experiment measures).
        self.switcher.park_current(state.core)
        self._fill_core(state)

    # ------------------------------------------------------------------
    # Batch chunks
    # ------------------------------------------------------------------
    def _run_batch_chunk(self, state: _CoreState) -> None:
        thread = state.thread
        app: App = thread.payload
        work = app.batch_work
        state.batch_run = work.start(
            state.core, on_done=lambda: self._batch_chunk_done(state))

    def _batch_chunk_done(self, state: _CoreState) -> None:
        state.batch_run = None
        if state.thread is not None and state.thread.rogue \
                and state.thread.state is not UThreadState.DEAD:
            # A rogue thread never yields at chunk boundaries either: it
            # immediately starts more work, holding the core until the
            # kernel-IPI fallback evicts it.  (kind is left untouched so
            # an in-flight "switch" reservation stays visible.)
            self._run_batch_chunk(state)
            return
        if state.kind == "switch":
            # A preemption Uintr is in flight; hand the BE thread back and
            # let the handler install the latency thread on arrival.
            if state.thread is not None:
                self._return_be(state.thread)
                state.thread = None
            return
        if state.kind != "B" or state.thread is None:
            return
        # Yield to queued latency threads at chunk boundaries for free.
        if state.fifo:
            be_thread = state.thread
            self._return_be(be_thread)
            state.kind = None
            state.thread = None
            self._fill_core(state)
            return
        self._run_batch_chunk(state)

    # ------------------------------------------------------------------
    # uProcess termination (manager kill path, fault shielding §4.3)
    # ------------------------------------------------------------------
    def inject_fault(self, core_id: int):
        """A fault signal arrived on ``core_id`` (e.g. SIGSEGV).

        The runtime identifies the faulty uProcess via CPUID_TO_TASK_MAP
        and broadcasts kill commands (§4.3); the scheduler then detaches
        the application.  Returns the terminated app, or None if the core
        was not running one.
        """
        condemned = self.domain.handle_fault(core_id)
        if condemned is None:
            return None
        state = next((s for s in self._apps.values()
                      if s.uproc is condemned), None)
        if state is None:
            return None
        self._detach_app(state)
        return state.app

    def crash_uproc(self, app_name: str) -> bool:
        """Fault injection: an MPK fault fires inside a running thread of
        ``app_name`` (a wild store hit another slot's pkey).

        The faulting instruction raises SIGSEGV on the uProcess's boot
        kProcess.  With containment the runtime's registered handler
        (§4.3) tears the uProcess down and every resource is reclaimed;
        without it the kernel's default action kills the whole kProcess
        and the core is lost (wedged) — the ablation shows exactly what
        fault shielding buys.  Returns False if no core is currently
        running the app.
        """
        state = self._apps.get(app_name)
        if state is None:
            return False
        cs = next((c for c in self._cores.values()
                   if c.thread is not None and c.thread.payload is state.app
                   and c.kind in ("L", "B")), None)
        if cs is None:
            return False
        if self.ledger.enabled:
            self.ledger.count_op("fault:uproc_crash", core=cs.core.id,
                                 domain="fault")
        # The faulting instruction aborts the in-flight segment; the
        # request it was serving is lost (clients see resets, §5.1).
        if cs.batch_run is not None:
            cs.batch_run.preempt()
            cs.batch_run = None
        elif cs.core.busy:
            cs.core.preempt()
        cs.request = None
        self.signals.post(state.uproc.boot_kprocess, Signal(SIGSEGV))
        if not self.containment:
            # No handler registered: the kProcess dies and takes the core
            # with it.  Slot, pkey, and descriptors all leak.
            cs.core.wedge()
            cs.kind = "wedged"
            cs.thread = None
        return True

    def _on_sigsegv(self, uproc) -> None:
        """Runtime SIGSEGV handler (§4.3): full crash containment."""
        self.contained_crashes += 1
        if self.ledger.enabled:
            self.ledger.count_op("fault:crash_contained", domain="fault")
        state = next((s for s in self._apps.values() if s.uproc is uproc),
                     None)
        if state is not None:
            self._detach_app(state)
        else:
            self.domain.reap(uproc)

    def make_rogue(self, app_name: str) -> bool:
        """Fault injection: mark ``app_name``'s currently running thread
        non-cooperative — it stops acting on preemption commands and
        never yields, until the kernel-IPI fallback evicts and kills it.
        Returns False if the app has no thread on a core right now.
        """
        state = self._apps.get(app_name)
        if state is None:
            return False
        thread = next((t for t in state.threads
                       if t.state is UThreadState.RUNNING
                       and t.core_id is not None), None)
        if thread is None:
            cs = next((c for c in self._cores.values()
                       if c.thread is not None
                       and c.thread.payload is state.app
                       and c.kind in ("L", "B")), None)
            if cs is None:
                return False
            thread = cs.thread
        thread.rogue = True
        if self.ledger.enabled:
            self.ledger.count_op("fault:rogue_thread", domain="fault")
        return True

    def remove_app(self, app_name: str):
        """Destroy an application (the §5.1 manager kill flow)."""
        state = self._apps.get(app_name)
        if state is None:
            raise KeyError(f"no app named {app_name!r}")
        self.manager.destroy_uprocess(self.domain, state.uproc)
        self._detach_app(state)
        return state.app

    def _detach_app(self, state: AppState) -> None:
        app = state.app
        self.policy.on_app_removed(state)
        # Preempt every core currently running (or switching to) it and
        # consume the pending kill commands in privileged mode.
        for cs in self._cores.values():
            cs.fifo.purge(lambda t: t.payload is app)
            if cs.thread is not None and cs.thread.payload is app:
                if cs.batch_run is not None:
                    cs.batch_run.preempt()
                    cs.batch_run = None
                elif cs.core.busy:
                    cs.core.preempt()
                cs.thread = None
                cs.request = None
                cs.kind = None
            if cs.kind != "wedged":
                # Consuming the kill commands drains the whole queue, so
                # a RUN_THREAD for a *surviving* app must be re-routed to
                # the core's FIFO — dropping it would strand a thread
                # that was already claimed out of its app's parked list.
                for command in self.domain.process_commands(cs.core.id):
                    if command.kind is not CommandKind.RUN_THREAD:
                        continue
                    other = command.payload
                    if other.state is UThreadState.DEAD \
                            or not other.uproc.alive:
                        continue
                    cs.fifo.append(other)
                    self._apps[other.payload.name].queued_servers += 1
                    pending = self._pending_preempts.get(cs.core.id)
                    if pending is not None and pending.thread is other:
                        # The preemption protocol resolved by requeueing;
                        # escalation would install the thread twice.
                        self._ack_preempt(cs.core.id)
                        self._release_switch_reservation(cs)
            pending = self._pending_preempts.get(cs.core.id)
            if pending is not None and pending.thread.payload is app:
                self._ack_preempt(cs.core.id)
                self._release_switch_reservation(cs)
        # Full teardown: threads, queued commands, proxied descriptors,
        # SMAS slot + pkey (revoked until the slot is reused), and the
        # runtime's SIGSEGV registration for the departing boot kProcess.
        self.signals.unregister(state.uproc.boot_kprocess, SIGSEGV)
        self.domain.reap(state.uproc)
        self._be_queue = deque(t for t in self._be_queue
                               if t.payload is not app)
        self._suspended_threads = deque(t for t in self._suspended_threads
                                        if t.payload is not app)
        # In-flight requests of a dead application are dropped (clients
        # observe connection resets).
        app.queue.clear()
        self._apps.pop(app.name, None)
        if app in self.apps:
            self.apps.remove(app)
        state.parked.clear()
        state.queued_servers = 0
        for cs in self._cores.values():
            if cs.kind is None and not cs.core.busy:
                self._fill_core(cs)

    # ------------------------------------------------------------------
    # Batch-app duty cycling (used by bandwidth regulation, Figure 13b)
    # ------------------------------------------------------------------
    def suspend_batch_app(self, app_name: str) -> None:
        """Stop scheduling this B-app; running chunks are preempted now.

        Core reallocation in VESSEL is cheap enough (~0.16 µs) that
        suspending and resuming at tens-of-microseconds windows is viable
        — this is exactly what makes its bandwidth regulation accurate.
        """
        if app_name in self._suspended_apps:
            return
        self._suspended_apps.add(app_name)
        for state in self._cores.values():
            if state.kind == "B" and state.thread is not None \
                    and state.thread.payload.name == app_name:
                if state.batch_run is not None:
                    state.batch_run.preempt()
                    state.batch_run = None
                state.thread.state = UThreadState.PARKED
                state.thread.core_id = None
                self._suspended_threads.append(state.thread)
                state.thread = None
                state.kind = None
                self._fill_core(state)

    def resume_batch_app(self, app_name: str) -> None:
        """Allow the B-app to be scheduled again."""
        if app_name not in self._suspended_apps:
            return
        self._suspended_apps.discard(app_name)
        held = [t for t in self._suspended_threads
                if t.payload.name == app_name]
        self._suspended_threads = deque(
            t for t in self._suspended_threads
            if t.payload.name != app_name)
        self._be_queue.extend(held)
        for state in self._cores.values():
            if state.kind is None and not state.core.busy:
                self._fill_core(state)
