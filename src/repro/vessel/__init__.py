"""VESSEL: the userspace core scheduler built on uProcess (§5).

``runtime``
    The privileged runtime living behind the call gate: park/spawn
    primitives, the syscall proxy with per-uProcess descriptor access
    control (§5.2.4), and the mmap-executable interception (§4.2).
``scheduler``
    The one-level global core scheduler (§4.5) as a performance-layer
    system: per-core FIFO thread queues, a global best-effort queue,
    Uintr-driven preemption of best-effort work, and UMWAIT idling.
``regulation``
    Fine-grained memory-bandwidth regulation by core duty-cycling
    (Figure 13b).
``dataplane``
    Kernel-bypass NIC RX rings and SPDK-style storage queues (§5.2.5),
    with park-on-IO request semantics.
"""

from repro.vessel.runtime import VesselRuntime, SyscallDenied
from repro.vessel.scheduler import VesselSystem
from repro.vessel.regulation import VesselBandwidthRegulator
from repro.vessel.dataplane import NicRxQueue, StorageDevice

__all__ = [
    "VesselRuntime",
    "SyscallDenied",
    "VesselSystem",
    "VesselBandwidthRegulator",
    "NicRxQueue",
    "StorageDevice",
]
