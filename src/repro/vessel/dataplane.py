"""Kernel-bypass dataplane devices (§5.2.5).

VESSEL places the network and storage dataplanes inside the runtime and
instruments their busy-spin completion paths with ``park()`` so a thread
waiting on a device yields its core instead of burning it.  Two devices
are modeled:

``NicRxQueue``
    A bounded userspace RX ring per application: requests arrive after a
    small wire+NIC latency; overflow packets are dropped and counted
    (what an overwhelmed 100 Gbps port does).  Its depth and
    oldest-arrival are the "software queues exposed to the scheduler to
    assist scheduling decisions".

``StorageDevice``
    An SPDK-style queue pair: submissions complete after a sampled device
    latency, bounded by a queue depth; completions fire callbacks (the
    runtime then re-activates the parked thread).

Request-level integration: a :class:`~repro.workloads.base.Request` may
carry ``io_wait_ns``/``post_io_service_ns``; the schedulers' serving
loops treat that as *CPU phase → park-on-IO → CPU phase*, so the core is
free for other threads during the device wait (§4.4's "park itself ...
waiting for a response").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.sim.engine import Simulator
from repro.workloads.base import Request

DEFAULT_NIC_LATENCY_NS = 600      # wire + NIC + DMA into the RX ring
DEFAULT_RING_CAPACITY = 4096
DEFAULT_QUEUE_DEPTH = 128


class NicRxQueue:
    """Bounded RX ring in front of one application.

    ``on_drop`` lets the submitting side *observe* overflow losses (the
    network clients retry on it) instead of inferring them from the
    ``dropped`` counter after the fact.  ``domain`` selects the ledger
    domain operations are charged under ("vessel" for the per-app ring,
    "net" when the ring is one of a multi-queue NIC's RSS rings).
    """

    def __init__(self, sim: Simulator, deliver: Callable[[Request], None],
                 latency_ns: int = DEFAULT_NIC_LATENCY_NS,
                 capacity: int = DEFAULT_RING_CAPACITY,
                 ledger: Optional[OpLedger] = None,
                 on_drop: Optional[Callable[[Request], None]] = None,
                 domain: str = "vessel") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.sim = sim
        self.deliver = deliver
        self.latency_ns = latency_ns
        self.capacity = capacity
        self.ledger = ledger or NULL_LEDGER
        self.on_drop = on_drop
        self.domain = domain
        self.in_flight = 0
        self.received = 0
        self.dropped = 0
        #: enqueue timestamps of in-flight packets, oldest first (the
        #: "software queues exposed to the scheduler" depth/age signals)
        self._pending_since: Deque[int] = deque()

    @property
    def depth(self) -> int:
        """Current ring occupancy (the scheduler's queue-depth signal)."""
        return self.in_flight

    def oldest_wait_ns(self, now: int) -> int:
        """Age of the oldest packet still sitting in the ring."""
        if not self._pending_since:
            return 0
        return now - self._pending_since[0]

    def client_submit(self, request: Request) -> bool:
        """Called by the open-loop source; False if the ring overflowed."""
        if self.in_flight >= self.capacity:
            self.dropped += 1
            if self.ledger.enabled:
                self.ledger.count_op("nic_drop", domain=self.domain)
            if self.on_drop is not None:
                self.on_drop(request)
            return False
        self.in_flight += 1
        self._pending_since.append(self.sim.now)
        self.sim.post(self.latency_ns, self._arrive, request)
        return True

    def _arrive(self, request: Request) -> None:
        self.in_flight -= 1
        self._pending_since.popleft()
        self.received += 1
        if self.ledger.enabled:
            # The per-packet NIC processing + DMA time is a real cost the
            # breakdown should attribute, not just count.
            self.ledger.charge("nic_rx", self.latency_ns,
                               domain=self.domain)
        # Arrival time is when the server can first see the packet.
        request.arrival_ns = self.sim.now
        self.deliver(request)


class StorageDevice:
    """An SPDK-like queue pair with bounded depth."""

    def __init__(self, sim: Simulator,
                 latency_sampler: Callable[[], int],
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 name: str = "nvme0",
                 ledger: Optional[OpLedger] = None) -> None:
        if queue_depth <= 0:
            raise ValueError(f"queue depth must be positive: {queue_depth}")
        self.sim = sim
        self.latency_sampler = latency_sampler
        self.queue_depth = queue_depth
        self.name = name
        self.ledger = ledger or NULL_LEDGER
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.fenced_completions = 0
        self._backlog: Deque = deque()
        self._fenced: set = set()

    def submit(self, on_complete: Callable[[], None],
               owner: object = None) -> bool:
        """Queue one IO; completes after the sampled device latency.

        When the queue pair is full the submission waits in a software
        backlog (SPDK's behaviour with `-EAGAIN` retry loops).  ``owner``
        tags the IO so :meth:`fence` can disown it later.
        """
        self.submitted += 1
        if self.ledger.enabled:
            self.ledger.count_op("storage_submit", domain="vessel")
        if self.inflight >= self.queue_depth:
            self._backlog.append((owner, on_complete))
            self.rejected += 1
            return False
        self._issue(owner, on_complete)
        return True

    def fence(self, owner: object) -> int:
        """Disown every IO submitted by ``owner`` (crash containment).

        Backlogged submissions are dropped immediately; completions for
        IOs already in flight at the device are swallowed when they pop,
        so a reclaimed uProcess can never have a callback fire into its
        freed state.  Returns the number of IOs disowned.
        """
        kept = deque(item for item in self._backlog if item[0] is not owner)
        disowned = len(self._backlog) - len(kept)
        self._backlog = kept
        self._fenced.add(owner)
        if self.ledger.enabled:
            self.ledger.count_op("reclaim:storage_ios", domain="vessel")
        return disowned

    def _issue(self, owner: object, on_complete: Callable[[], None]) -> None:
        self.inflight += 1
        self.sim.post(max(1, int(self.latency_sampler())),
                      self._complete, owner, on_complete)

    def _complete(self, owner: object,
                  on_complete: Callable[[], None]) -> None:
        self.inflight -= 1
        self.completed += 1
        if self.ledger.enabled:
            self.ledger.count_op("storage_complete", domain="vessel")
        if self._backlog:
            self._issue(*self._backlog.popleft())
        if owner is not None and owner in self._fenced:
            self.fenced_completions += 1
            if self.ledger.enabled:
                self.ledger.count_op("fault:storage_fenced", domain="fault")
            return
        on_complete()

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog)


def make_storage_request(app, arrival_ns: int, cpu1_ns: int, io_ns: int,
                         cpu2_ns: int, conn_id: int = 0) -> Request:
    """A request that computes, parks on storage, then computes again."""
    request = Request(app, arrival_ns, cpu1_ns, conn_id)
    request.io_wait_ns = io_ns
    request.post_io_service_ns = cpu2_ns
    return request
