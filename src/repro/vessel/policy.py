"""VESSEL's stock scheduling policy (§4.5), expressed in the policy API.

This is the paper's one-level global policy — per-core FIFO run queues,
idle-first / preempt-BE-second / shortest-queue-third placement, quantum
rotation at request boundaries, and §4.4 long-request preemption — now
produced as *decisions* executed by the ``VesselSystem`` mechanism.  The
logic itself lives in :class:`repro.sched.policy.SchedPolicy` (it is the
reference behaviour every zoo policy overrides); this subclass pins the
registry name.  A run under this policy is byte-identical — reports and
ledger op counts — to the pre-framework hard-wired scheduler.
"""

from __future__ import annotations

from repro.sched.policy import SchedPolicy, register_policy


@register_policy
class VesselDefaultPolicy(SchedPolicy):
    """Global FIFO + rotation + BE preemption (the paper's behaviour)."""

    name = "default"
