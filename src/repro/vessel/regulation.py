"""Memory-bandwidth regulation by core duty-cycling (Figure 13b).

VESSEL assigns an application a fine-grained CPU quota to regulate its
memory-bandwidth consumption: within each control window the scheduler
lets the app run until its byte budget for the window is spent, then
suspends its threads until the window ends.  Because suspending and
resuming cost ~0.16 µs, the window can be tens of microseconds and the
achieved bandwidth tracks the target closely — unlike Intel MBA's coarse
throttling levels or cgroup CPU quotas at CFS-period granularity.
"""

from __future__ import annotations

from repro.hardware.membus import MemoryBus
from repro.sim.engine import Simulator
from repro.vessel.scheduler import VesselSystem

DEFAULT_WINDOW_NS = 50_000
DEFAULT_CHECK_DIVISOR = 25


class VesselBandwidthRegulator:
    """Duty-cycles one B-app to hit a target bandwidth fraction."""

    def __init__(self, sim: Simulator, system: VesselSystem, bus: MemoryBus,
                 app_name: str, target_gbps: float,
                 window_ns: int = DEFAULT_WINDOW_NS) -> None:
        if target_gbps < 0:
            raise ValueError(f"negative target {target_gbps}")
        self.sim = sim
        self.system = system
        self.bus = bus
        self.app_name = app_name
        self.target_gbps = float(target_gbps)
        self.window_ns = window_ns
        self.check_ns = max(1, window_ns // DEFAULT_CHECK_DIVISOR)
        self._window_start = 0
        self._window_start_bytes = 0.0
        self._suspended = False
        self.windows = 0
        self.suspensions = 0

    def set_target(self, target_gbps: float) -> None:
        self.target_gbps = float(target_gbps)

    def start(self) -> None:
        self._begin_window()

    # ------------------------------------------------------------------
    def _begin_window(self) -> None:
        self.windows += 1
        self._window_start = self.sim.now
        self._window_start_bytes = self.bus.consumed_bytes(self.app_name)
        if self._suspended:
            self.system.resume_batch_app(self.app_name)
            self._suspended = False
        self.sim.post(self.check_ns, self._check)
        self.sim.post(self.window_ns, self._begin_window)

    def _check(self) -> None:
        if self._suspended:
            return  # nothing to do until the window rolls over
        elapsed = self.sim.now - self._window_start
        if elapsed >= self.window_ns:
            return
        budget = self.target_gbps * self.window_ns  # bytes per window
        consumed = (self.bus.consumed_bytes(self.app_name)
                    - self._window_start_bytes)
        if consumed >= budget:
            self.system.suspend_batch_app(self.app_name)
            self._suspended = True
            self.suspensions += 1
            return
        self.sim.post(self.check_ns, self._check)
