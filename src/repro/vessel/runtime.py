"""The VESSEL runtime: privileged operations behind the call gate.

§5.2.4: when uProcesses run inside arbitrary kProcesses, letting them
issue kernel syscalls directly is both insecure (descriptor brute-forcing
across uProcesses sharing a kProcess) and incorrect (descriptors vanish
when a uProcess migrates to another kProcess).  The runtime therefore
intercepts all syscalls, executes them through the kernel itself, and
keeps a per-uProcess descriptor map used for access control.

§4.2 defense 1 also lives here: any memory-configuration syscall that
would make pages executable is prohibited; on-demand code loading must go
through the runtime's inspected dlopen path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.hardware.mpk import Permission
from repro.kernel.fdtable import FileDescription
from repro.kernel.kprocess import KProcess
from repro.kernel.syscalls import SyscallLayer
from repro.uprocess.domain import SchedulingDomain
from repro.uprocess.loader import ProgramImage
from repro.uprocess.threads import UThread
from repro.uprocess.uproc import UProcess


class SyscallDenied(PermissionError):
    """The runtime's syscall proxy refused the operation."""


class VesselRuntime:
    """Privileged services registered into the call gate's vector."""

    def __init__(self, domain: SchedulingDomain,
                 syscalls: Optional[SyscallLayer] = None) -> None:
        self.domain = domain
        self.syscalls = syscalls or domain.syscalls
        self.ledger = domain.ledger
        #: the kProcess the runtime issues kernel calls through
        self.kprocess = KProcess("vessel-runtime")
        self.proxied_syscalls = 0
        self.denied_syscalls = 0
        #: uProcess -> {ufd: kernel fd} — the runtime must remember which
        #: kernel descriptors back each uProcess's map so close (and
        #: crash teardown) releases them kernel-side, not just in the map
        self._kernel_fds: Dict[UProcess, Dict[int, int]] = {}
        domain.runtime = self
        gate = domain.gate
        gate.register_privileged("park", self._noop_park)
        gate.register_privileged("open", self.sys_open)
        gate.register_privileged("close", self.sys_close)
        gate.register_privileged("read", self.sys_read)
        gate.register_privileged("mmap", self.sys_mmap)
        gate.register_privileged("dlopen", self.sys_dlopen)
        gate.register_privileged("pthread_create", self.pthread_create)

    # ------------------------------------------------------------------
    def _count_proxy(self, name: str) -> None:
        """One proxied syscall: counted here, trap cost charged by the
        kernel syscall layer when the runtime actually issues it."""
        self.proxied_syscalls += 1
        if self.ledger.enabled:
            self.ledger.count_op(f"proxy:{name}", domain="vessel")

    def _count_denied(self, name: str) -> None:
        self.denied_syscalls += 1
        if self.ledger.enabled:
            self.ledger.count_op(f"deny:{name}", domain="vessel")

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _noop_park(self, *args: Any) -> str:
        """Placeholder park; the scheduler system overrides this entry."""
        return "parked"

    def pthread_create(self, uproc: UProcess, name: str = "") -> UThread:
        """Create a userspace thread (§5.2.2): stack + TLS + context."""
        if not uproc.alive:
            self._count_denied("pthread_create")
            raise SyscallDenied(f"{uproc.name} is terminated")
        return UThread(uproc, name)

    # ------------------------------------------------------------------
    # File syscalls with per-uProcess access control (§5.2.4)
    # ------------------------------------------------------------------
    def sys_open(self, uproc: UProcess, path: str) -> int:
        self._count_proxy("open")
        kfd = self.syscalls.open(self.kprocess, path, owner_label=uproc.name)
        description = self.kprocess.fdtable.lookup(kfd)
        ufd = uproc.install_fd(description)
        self._kernel_fds.setdefault(uproc, {})[ufd] = kfd
        return ufd

    def sys_close(self, uproc: UProcess, ufd: int) -> None:
        self._count_proxy("close")
        try:
            uproc.remove_fd(ufd)
        except KeyError as exc:
            self._count_denied("close")
            raise SyscallDenied(str(exc)) from exc
        kfd = self._kernel_fds.get(uproc, {}).pop(ufd, None)
        if kfd is not None:
            self.syscalls.close(self.kprocess, kfd)

    def release_uprocess(self, uproc: UProcess) -> int:
        """Close every kernel descriptor still backing ``uproc``'s map.

        Called by :meth:`SchedulingDomain.reap` during teardown; returns
        the number of descriptors closed.
        """
        fds = self._kernel_fds.pop(uproc, {})
        for kfd in fds.values():
            self.syscalls.close(self.kprocess, kfd)
        if fds and self.ledger.enabled:
            self.ledger.count_op("reclaim:kernel_fds", domain="vessel")
        return len(fds)

    def sys_read(self, uproc: UProcess, ufd: int) -> FileDescription:
        """Dereference a descriptor; only the owner's map is consulted, so
        brute-forcing another uProcess's descriptors yields EBADF."""
        self._count_proxy("read")
        description = uproc.lookup_fd(ufd)
        if description is None:
            self._count_denied("read")
            raise SyscallDenied(f"EBADF: ufd {ufd} not owned by {uproc.name}")
        return description

    # ------------------------------------------------------------------
    # Memory syscalls (§4.2 defense 1)
    # ------------------------------------------------------------------
    def sys_mmap(self, uproc: UProcess, size: int,
                 perms: Permission = Permission.rw()) -> int:
        """Anonymous mappings come from the uProcess heap; executable
        mappings are categorically denied."""
        self._count_proxy("mmap")
        if perms & Permission.EXECUTE:
            self._count_denied("mmap")
            raise SyscallDenied(
                "mmap(PROT_EXEC) is prohibited; use dlopen through the "
                "runtime (§4.2)"
            )
        return uproc.heap.alloc(size)

    def sys_dlopen(self, uproc: UProcess, library: ProgramImage):
        """The only way to introduce new executable code: inspected first."""
        from repro.uprocess.loader import LoaderError
        self._count_proxy("dlopen")
        try:
            return self.domain.loader.dlopen(uproc, library)
        except LoaderError:
            self._count_denied("dlopen")
            raise
