"""Multiple scheduling domains (§4.1).

One SMAS supports at most 13 uProcesses (the 16 protection keys minus
key 0, the runtime key, and the message-pipe key).  "Multiple scheduling
domains can be used when the number of uProcesses exceeds this limit."

Cores cannot be timeshared *across* domains in userspace — a different
domain means a different SMAS, so moving a core between domains would be
a kernel-mediated address-space switch, exactly what uProcess exists to
avoid.  The multi-domain composition therefore *partitions* the worker
cores: each domain gets its own core subset, scheduler, and SMAS, and
applications are placed into domains at admission time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.sched.base import SystemReport
from repro.uprocess.smas import MAX_UPROCESSES
from repro.vessel.scheduler import VesselSystem
from repro.workloads.base import App, Request


class MultiDomainVessel:
    """VESSEL spanning several scheduling domains.

    ``num_domains`` partitions the worker cores contiguously; apps are
    placed in the least-populated domain (or an explicit one).  The
    object quacks like a ColocationSystem for sources and reporting.
    """

    name = "vessel-multidomain"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 num_domains: int,
                 worker_cores: Optional[List[Core]] = None) -> None:
        if num_domains <= 0:
            raise ValueError(f"num_domains must be positive: {num_domains}")
        workers = worker_cores if worker_cores is not None \
            else machine.cores[1:]
        if len(workers) < num_domains:
            raise ValueError(
                f"{num_domains} domains need at least that many workers "
                f"(got {len(workers)})"
            )
        self.sim = sim
        self.machine = machine
        self.systems: List[VesselSystem] = []
        share = len(workers) // num_domains
        extra = len(workers) % num_domains
        cursor = 0
        for index in range(num_domains):
            count = share + (1 if index < extra else 0)
            subset = workers[cursor:cursor + count]
            cursor += count
            system = VesselSystem(sim, machine, rngs.spawn(f"dom{index}"),
                                  worker_cores=subset)
            system.domain.name = f"vessel-domain-{index}"
            self.systems.append(system)
        self._placement: Dict[str, VesselSystem] = {}

    # ------------------------------------------------------------------
    @property
    def capacity_apps(self) -> int:
        return MAX_UPROCESSES * len(self.systems)

    def add_app(self, app: App,
                domain_index: Optional[int] = None) -> VesselSystem:
        """Admit an app into a domain; returns the hosting system."""
        if domain_index is not None:
            system = self.systems[domain_index]
        else:
            candidates = [s for s in self.systems
                          if s.domain.smas.slots_in_use() < MAX_UPROCESSES]
            if not candidates:
                raise RuntimeError(
                    f"all {len(self.systems)} domains are full "
                    f"({self.capacity_apps} uProcesses)"
                )
            system = min(candidates,
                         key=lambda s: s.domain.smas.slots_in_use())
        system.add_app(app)
        self._placement[app.name] = system
        return system

    def system_of(self, app_name: str) -> VesselSystem:
        return self._placement[app_name]

    def start(self) -> None:
        for system in self.systems:
            system.start()

    def submit(self, request: Request) -> None:
        self._placement[request.app.name].submit(request)

    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        for system in self.systems:
            system.begin_measurement()

    def report(self) -> SystemReport:
        """Aggregate report across all domains."""
        parts = [system.report() for system in self.systems]
        merged = SystemReport(
            system=self.name,
            elapsed_ns=max(p.elapsed_ns for p in parts),
            num_worker_cores=sum(p.num_worker_cores for p in parts),
        )
        for part in parts:
            for key, value in part.buckets.items():
                merged.buckets[key] = merged.buckets.get(key, 0) + value
            merged.latency.update(part.latency)
            merged.completed.update(part.completed)
            for key, value in part.useful_ns.items():
                merged.useful_ns[key] = merged.useful_ns.get(key, 0) + value
        return merged
