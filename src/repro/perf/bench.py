"""Wall-clock benchmark harness (``python -m repro bench``).

The simulator's own throughput is a first-class system property: every
experiment sweep, CI gate, and ``--scale paper`` run is bounded by how
many discrete events per second the engine can retire.  This harness
pins that number down so optimizations are measured, not guessed, and
regressions fail CI instead of quietly doubling everyone's runs.

It times a fixed set of *kernels* — from a pure engine churn loop up to
full colocation runs and the whole smoke suite — over fixed seeds, and
writes ``benchmarks/results/BENCH_<date>.json``::

    {
      "kernels": {"engine-churn": {"wall_s": ..., "events": ...,
                                   "events_per_sec": ..., "normalized": ...},
                  ...},
      "suite":   {"wall_s": ..., "jobs": ..., "experiments": {...}},
      "speedup_vs_baseline": {"engine-churn": 2.1, ..., "suite": 1.8}
    }

``normalized`` is the kernel's wall time divided by the wall time of a
fixed pure-Python calibration loop run in the same process, which makes
numbers roughly comparable across machines; ``--check`` compares those
normalized values against a recorded run and exits non-zero on a
regression beyond ``--tolerance`` (default 25 %), which is what the CI
bench job does.  ``speedup_vs_baseline`` always compares raw wall
seconds against ``BENCH_baseline.json`` — the recorded pre-optimization
trajectory point.
"""

from __future__ import annotations

import argparse
import datetime
import glob
import io
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")
BASELINE_NAME = "BENCH_baseline.json"

#: experiments timed by the full-suite kernel (the `python -m repro`
#: smoke set, in its canonical order)
SUITE_EXPERIMENTS: Optional[List[str]] = None  # None == all


# ----------------------------------------------------------------------
# Kernels.  Each returns (unit_count, unit_name); wall time is measured
# around the call.  Seeds are fixed so runs are comparable.
# ----------------------------------------------------------------------
def _kernel_engine_churn(seed: int) -> Tuple[int, str]:
    """Pure engine throughput under scheduler-like schedule/cancel churn.

    Mimics what schedulers do to the heap: every tick schedules a
    completion event, and half the time cancels and reschedules it (the
    preempt path), so the lazy-deletion machinery is on the hot path.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    rng = random.Random(seed)
    target = 400_000
    completion = [None]

    def done() -> None:
        completion[0] = None

    def tick() -> None:
        pending = completion[0]
        if pending is not None and rng.random() < 0.5:
            pending.cancel()
        completion[0] = sim.after(100 + rng.randrange(100), done)
        if sim.events_fired < target:
            sim.after(1 + rng.randrange(49), tick)

    sim.after(0, tick)
    sim.run()
    return sim.events_fired, "events"


def _kernel_switch_pingpong(seed: int) -> Tuple[int, str]:
    """Table 1's measured kernel: the real functional userspace switch."""
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.tab1_context_switch import measure_vessel

    iterations = 20_000
    samples = measure_vessel(ExperimentConfig(seed=seed), iterations)
    return len(samples), "switches"


def _colocation(system: str, seed: int, net: bool = False) -> Tuple[int, str]:
    from repro.experiments.common import ExperimentConfig, run_colocation
    from repro.net import NetConfig

    cfg = ExperimentConfig(seed=seed, net=NetConfig() if net else None)
    report = run_colocation(
        system, cfg,
        l_specs=[("memcached", "memcached", 2.0)],
        b_specs=("linpack",))
    return report.events_fired, "events"


def _kernel_colo_vessel(seed: int) -> Tuple[int, str]:
    """One smoke-scale VESSEL colocation run (the fig09 inner kernel)."""
    return _colocation("vessel", seed)


def _kernel_policy_dispatch(seed: int) -> Tuple[int, str]:
    """colo-vessel routed through a non-default policy (mlfq).

    Prices the mechanism/policy dispatch layer: same workload as
    colo-vessel, but every quantum/placement decision goes through a
    policy subclass with its own run-queue type, so the delta against
    colo-vessel is the cost of the pluggable-policy indirection.
    """
    from repro.experiments.common import ExperimentConfig, run_colocation

    cfg = ExperimentConfig(seed=seed, policy="mlfq")
    report = run_colocation(
        "vessel", cfg,
        l_specs=[("memcached", "memcached", 2.0)],
        b_specs=("linpack",))
    return report.events_fired, "events"


def _kernel_colo_caladan(seed: int) -> Tuple[int, str]:
    """One smoke-scale Caladan colocation run (heaviest baseline)."""
    return _colocation("caladan", seed)


def _kernel_colo_net(seed: int) -> Tuple[int, str]:
    """VESSEL colocation through the client/link/NIC fabric (--net)."""
    return _colocation("vessel", seed, net=True)


def _kernel_flight_overhead(seed: int) -> Tuple[int, str]:
    """colo-net with the per-request flight recorder turned on.

    Prices the observability layer: same workload as colo-net, but every
    request carries lifecycle marks, gauges sample on a tick, and
    finalization folds stage durations into aggregates.  The delta
    against colo-net is the full cost of ``--latency-breakdown``; the
    tracing-*off* cost is priced by colo-net itself staying flat
    (hot paths only test one ``flight.enabled`` bool).
    """
    import contextlib
    import io

    from repro.experiments.common import ExperimentConfig, run_colocation
    from repro.net import NetConfig

    cfg = ExperimentConfig(seed=seed, net=NetConfig(), trace_requests=4)
    with contextlib.redirect_stdout(io.StringIO()):
        report = run_colocation(
            "vessel", cfg,
            l_specs=[("memcached", "memcached", 2.0)],
            b_specs=("linpack",))
    return report.events_fired, "events"


def _kernel_churn_cycle(seed: int) -> Tuple[int, str]:
    """uProcess create/serve/destroy cycles against a running system.

    Prices the full tenant lifecycle (SMAS slot grant, boot kProcess,
    SIGSEGV registration, a little traffic, then the §5.1 teardown) —
    the hot path of the churn/overload scenarios.
    """
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams
    from repro.sim.units import US
    from repro.hardware.machine import Machine
    from repro.hardware.timing import CostModel
    from repro.vessel.scheduler import VesselSystem
    from repro.workloads.base import Request
    from repro.workloads.linpack import linpack_app
    from repro.workloads.memcached import memcached_app

    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    system.add_app(linpack_app())
    system.start()
    cycles = 2_000
    for cycle in range(cycles):
        app = memcached_app(f"cycle{cycle}")
        system.add_app(app)
        for _ in range(4):
            system.submit(Request(app, sim.now, 1000, 0))
        sim.run(until=sim.now + 10 * US)
        system.remove_app(app.name)
    return cycles, "cycles"


def _fig12_cells(seed: int, fluid: str) -> Tuple[int, str]:
    """The fig12 scalability inner cells at their heaviest core counts
    (VESSEL at 42 workers, Caladan at 34, load 0.45, bursty)."""
    from repro.experiments.common import ExperimentConfig, run_colocation

    events = 0
    for system, workers, rate in (("vessel", 42, 18.9),
                                  ("caladan", 34, 15.3)):
        cfg = ExperimentConfig(seed=seed, num_workers=workers, sim_ms=6,
                               warmup_ms=2, bursty=True, fluid=fluid)
        report = run_colocation(
            system, cfg,
            l_specs=[("memcached", "memcached", rate)],
            b_specs=("linpack",))
        events += report.events_fired + sum(report.completed.values())
    return events, "events"


def _kernel_fig12_exact(seed: int) -> Tuple[int, str]:
    """fig12's heaviest cells through the exact discrete engine."""
    return _fig12_cells(seed, "off")


def _kernel_fig12_fluid(seed: int) -> Tuple[int, str]:
    """The same cells with --fluid on: vectorized arrival pre-draws plus
    analytic core/queue fast-forward.  The wall-clock ratio against
    fig12-exact is the headline hybrid-engine speedup."""
    return _fig12_cells(seed, "on")


def _kernel_cluster_lb(seed: int) -> Tuple[int, str]:
    """The fleet control plane alone: place, rebalance, harvest.

    Plans (no server simulation) a 16-server / 256-batch fleet under
    the least-loaded balancer with the coordinator on, for hundreds of
    control epochs.  Prices the serial stage every cluster run pays
    before ``--jobs`` can fan anything out: batch drawing, greedy
    migration scans, the fluid model, and cap-schedule bookkeeping.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.experiments.common import ExperimentConfig

    cfg = ExperimentConfig(seed=seed, sim_ms=50)
    cluster = ClusterConfig(num_servers=16, batches=256,
                            lb_policy="least-loaded", hot_fraction=0.5,
                            hot_batches=8, epoch_ms=0.25,
                            coordinator=True)
    epochs = 0
    for repeat in range(4):
        plan = Cluster("vessel", cfg, cluster).plan()
        epochs += len(plan.fluid_history)
    return epochs * cluster.num_servers, "server-epochs"


KERNELS: Dict[str, Callable[[int], Tuple[int, str]]] = {
    "engine-churn": _kernel_engine_churn,
    "switch-pingpong": _kernel_switch_pingpong,
    "colo-vessel": _kernel_colo_vessel,
    "policy-dispatch": _kernel_policy_dispatch,
    "colo-caladan": _kernel_colo_caladan,
    "colo-net": _kernel_colo_net,
    "flight-overhead": _kernel_flight_overhead,
    "churn-cycle": _kernel_churn_cycle,
    "fig12-exact": _kernel_fig12_exact,
    "fig12-fluid": _kernel_fig12_fluid,
    "cluster-lb": _kernel_cluster_lb,
}

#: the cheap subset the CI bench job runs (fails on >25 % regression)
SMOKE_KERNELS = ("engine-churn", "switch-pingpong", "colo-vessel",
                 "policy-dispatch", "flight-overhead", "churn-cycle",
                 "fig12-fluid", "cluster-lb")


def _calibrate() -> float:
    """Fixed pure-Python loop timed to normalize across machines."""
    started = time.perf_counter()
    acc = 0
    values = list(range(997))
    for i in range(2_000_000):
        acc += values[i % 997]
    if acc < 0:  # pragma: no cover - keeps the loop observable
        raise AssertionError
    return time.perf_counter() - started


def _time_suite(seed: int, jobs: int) -> Dict[str, object]:
    """Wall-clock the full smoke suite (stdout discarded)."""
    from repro.__main__ import EXPERIMENTS, run_experiments
    from repro.experiments.common import ExperimentConfig

    selected = SUITE_EXPERIMENTS or list(EXPERIMENTS)
    cfg = ExperimentConfig(seed=seed)
    sink = io.StringIO()
    started = time.perf_counter()
    timings = run_experiments(selected, cfg, jobs=jobs, stream=sink)
    wall = time.perf_counter() - started
    return {"wall_s": round(wall, 3), "jobs": jobs,
            "experiments": {k: round(v, 3) for k, v in timings.items()}}


# ----------------------------------------------------------------------
# Baseline lookup / regression check
# ----------------------------------------------------------------------
def _load(path: str) -> Optional[Dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def latest_record(results_dir: str = RESULTS_DIR,
                  exclude: Optional[str] = None) -> Optional[str]:
    """Newest dated BENCH_*.json (falls back to the baseline file)."""
    dated = sorted(
        p for p in glob.glob(os.path.join(results_dir, "BENCH_*.json"))
        if os.path.basename(p) != BASELINE_NAME
        and (exclude is None
             or os.path.abspath(p) != os.path.abspath(exclude)))
    if dated:
        return dated[-1]
    baseline = os.path.join(results_dir, BASELINE_NAME)
    return baseline if os.path.exists(baseline) else None


def check_regressions(current: Dict, reference: Dict,
                      tolerance: float) -> List[str]:
    """Normalized-time regressions beyond ``tolerance`` (25 % = 0.25)."""
    failures = []
    ref_kernels = reference.get("kernels", {})
    for name, row in current.get("kernels", {}).items():
        ref = ref_kernels.get(name)
        if not ref or "normalized" not in ref:
            continue
        if row["normalized"] > ref["normalized"] * (1.0 + tolerance):
            failures.append(
                f"{name}: normalized time {row['normalized']:.3f} vs "
                f"reference {ref['normalized']:.3f} "
                f"(>{tolerance:.0%} regression)")
    return failures


# ----------------------------------------------------------------------
def run_bench(kernels: List[str], seed: int, jobs: int,
              with_suite: bool) -> Dict:
    record: Dict = {
        "schema": 1,
        "date": datetime.datetime.now().isoformat(timespec="seconds"),
        "seed": seed,
        "python": sys.version.split()[0],
        "cpus": _cpu_count(),
        "kernels": {},
    }
    calibration = _calibrate()
    record["calibration_s"] = round(calibration, 4)
    for name in kernels:
        fn = KERNELS[name]
        print(f"bench: {name} ...", file=sys.stderr)
        started = time.perf_counter()
        units, unit_name = fn(seed)
        wall = time.perf_counter() - started
        record["kernels"][name] = {
            "wall_s": round(wall, 4),
            unit_name: units,
            f"{unit_name}_per_sec": round(units / wall) if wall > 0 else 0,
            "normalized": round(wall / calibration, 4),
        }
    if with_suite:
        print("bench: full smoke suite ...", file=sys.stderr)
        record["suite"] = _time_suite(seed, jobs)
    return record


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _attach_speedups(record: Dict, baseline: Dict) -> None:
    speedups: Dict[str, float] = {}
    base_kernels = baseline.get("kernels", {})
    for name, row in record["kernels"].items():
        base = base_kernels.get(name)
        if base and base.get("wall_s") and row.get("wall_s"):
            speedups[name] = round(base["wall_s"] / row["wall_s"], 2)
    if "suite" in record and baseline.get("suite", {}).get("wall_s") \
            and record["suite"].get("wall_s"):
        speedups["suite"] = round(
            baseline["suite"]["wall_s"] / record["suite"]["wall_s"], 2)
    record["speedup_vs_baseline"] = speedups


def _print_report(record: Dict) -> None:
    from repro.experiments.common import format_table

    rows = []
    speedups = record.get("speedup_vs_baseline", {})
    for name, row in record["kernels"].items():
        per_sec = next((v for k, v in row.items() if k.endswith("_per_sec")),
                       0)
        rows.append([name, row["wall_s"], per_sec,
                     row["normalized"], speedups.get(name, "-")])
    if "suite" in record:
        rows.append(["suite (smoke)", record["suite"]["wall_s"], "-", "-",
                     speedups.get("suite", "-")])
    print(format_table(
        ["kernel", "wall_s", "units/s", "normalized", "speedup-vs-base"],
        rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time pinned simulator kernels and the smoke suite; "
                    "write BENCH_<date>.json.")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the suite timing")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="output JSON (default: "
                             "benchmarks/results/BENCH_<date>.json)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"only the cheap kernels "
                             f"({', '.join(SMOKE_KERNELS)}) and no "
                             f"suite timing — the CI configuration")
    parser.add_argument("--no-suite", action="store_true",
                        help="skip the full-suite wall-clock kernel")
    parser.add_argument("--check", nargs="?", const="auto", default=None,
                        metavar="FILE",
                        help="compare against a recorded BENCH json "
                             "('auto' = newest dated record) and exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized-time regression for "
                             "--check (default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    kernels = list(SMOKE_KERNELS) if args.smoke else list(KERNELS)
    with_suite = not (args.smoke or args.no_suite)
    record = run_bench(kernels, args.seed, args.jobs, with_suite)

    baseline = _load(os.path.join(RESULTS_DIR, BASELINE_NAME))
    if baseline is not None:
        _attach_speedups(record, baseline)

    output = args.output
    if output is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        date = datetime.date.today().isoformat()
        output = os.path.join(RESULTS_DIR, f"BENCH_{date}.json")
    with open(output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}", file=sys.stderr)
    _print_report(record)

    if args.check is not None:
        ref_path = args.check
        if ref_path == "auto":
            ref_path = latest_record(exclude=output)
        reference = _load(ref_path) if ref_path else None
        if reference is None:
            print("bench --check: no reference record found; passing "
                  "(first run records the reference)", file=sys.stderr)
            return 0
        failures = check_regressions(record, reference, args.tolerance)
        if failures:
            print(f"bench --check vs {ref_path}: REGRESSION",
                  file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"bench --check vs {ref_path}: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
