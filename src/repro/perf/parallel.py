"""Deterministic multiprocessing fan-out.

Every simulation in this repo is hermetic: it builds its own
:class:`~repro.sim.engine.Simulator`, draws from named RNG streams
seeded only by the config, and never touches global state.  That makes
experiment runs, sweep points, and seeds embarrassingly parallel — the
only requirement for determinism is that results (and any captured
stdout) are merged back in *task order*, never completion order, which
:func:`parallel_map` guarantees by using an ordered pool map.

Workers run one task at a time (``chunksize=1``) so a long task (a
fig09 sweep point at high load) does not serialize a whole chunk of
short ones behind it.

The fork start method is preferred: workers inherit the imported
modules and the warmed-up interpreter, so per-task overhead is a few
milliseconds.  On platforms without fork (Windows, macOS spawn default)
the spawn context is used transparently; tasks and results must be
picklable either way.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_jobs() -> int:
    """Worker-process count honouring CPU affinity (cgroup/taskset)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int) -> List[R]:
    """``[fn(item) for item in items]`` fanned out over ``jobs`` processes.

    Results come back in item order regardless of completion order.
    ``jobs <= 1`` (or a single item, or an already-forked worker) runs
    in-process, so callers need no serial/parallel branching — and the
    in-process path is also what makes ``--jobs 1`` trivially
    byte-identical to ``--jobs N``.
    """
    tasks: Sequence[T] = list(items)
    if jobs <= 1 or len(tasks) <= 1 or _inside_worker():
        return [fn(task) for task in tasks]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(fn, tasks, chunksize=1)


def _inside_worker() -> bool:
    """True inside a pool worker (daemonic processes cannot fork again)."""
    return multiprocessing.current_process().daemon
