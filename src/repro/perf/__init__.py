"""Simulator performance infrastructure.

Two concerns live here, both in service of the ROADMAP's "runs as fast
as the hardware allows" applied to the simulator itself:

* :mod:`repro.perf.parallel` — a deterministic multiprocessing fan-out
  used by ``python -m repro --jobs N`` (experiment-level) and by
  :func:`repro.experiments.common.run_colocation_batch` (sweep-level).
  Every simulation already owns its Simulator and seeded RNG streams, so
  runs are independent and results merge in task order: parallel output
  is byte-identical to the serial path under the same seed.

* :mod:`repro.perf.bench` — the wall-clock benchmark harness
  (``python -m repro bench``).  It times a pinned set of experiment
  kernels over fixed seeds, writes ``benchmarks/results/BENCH_<date>.json``
  (events/sec, wall seconds, speedup vs. the recorded baseline), and can
  gate CI with ``--check`` (>25 % regression fails).
"""

from repro.perf.parallel import available_jobs, parallel_map

__all__ = ["available_jobs", "parallel_map"]
