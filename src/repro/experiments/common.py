"""Shared experiment infrastructure.

The paper's testbed (32 hyperthreads, seconds-long runs, up to 16 Mops/s)
is too large for a Python discrete-event simulator to sweep in CI, so
configurations are reduced: the default "smoke" profile uses 8 worker
cores and tens of milliseconds of simulated time, and the "paper" profile
uses 32 workers and longer windows.  Latency percentiles and orderings
transfer across profiles; the efficiency fractions are calibrated at the
smoke scale (with more cores a pooled queue smooths scheduler churn, so
Caladan's modeled waste shrinks below the paper's testbed numbers — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import summarize_ns
from repro.sim.trace import Tracer
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.net import NetConfig, NetFabric
from repro.obs.flight import FlightRecorder, format_breakdown
from repro.obs.ledger import OpLedger
from repro.obs.timeseries import GaugeSeries
from repro.hardware.timing import CostModel
from repro.sched.base import ColocationSystem, SystemReport
from repro.vessel.scheduler import VesselSystem
from repro.baselines.arachne import ArachneSystem
from repro.baselines.caladan import CaladanSystem, caladan_dr_l, caladan_dr_h
from repro.baselines.ideal import IdealSystem
from repro.baselines.linux_cfs import LinuxCfsSystem
from repro.workloads.base import BurstySource, OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.membench import membench_app
from repro.workloads.memcached import (
    memcached_app,
    UsrPayloadSampler,
    UsrServiceSampler,
)
from repro.workloads.silo import TpccPayloadSampler, silo_app, \
    silo_service_sampler


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment."""

    num_workers: int = 8
    sim_ms: int = 30
    warmup_ms: int = 5
    seed: int = 42
    membus_gbps: float = 40.0
    bursty: bool = False
    connections_per_app: int = 10
    costs: CostModel = field(default_factory=CostModel)
    #: print the per-op ledger breakdown after each run
    op_breakdown: bool = False
    #: write a Chrome trace_event JSON file after each run
    trace_out: Optional[str] = None
    #: simulate clients/link/NIC (None = direct submit, the seed-faithful
    #: default); set to a NetConfig to measure client-observed latency
    net: Optional[NetConfig] = None
    #: worker processes for sweep fan-out (run_colocation_batch); results
    #: and captured stdout merge in task order, so any value produces
    #: byte-identical output to jobs=1 under the same seed
    jobs: int = 1
    #: scheduling policy for VESSEL runs (see ``repro.sched.policy``);
    #: None = the stock policy.  Baselines ignore it — their policies
    #: ARE the comparison.
    policy: Optional[str] = None
    #: constructor kwargs for the policy (e.g. MLFQ levels, priorities)
    policy_params: Dict = field(default_factory=dict)
    #: print the per-app per-stage latency decomposition after each run
    #: (turns the per-request FlightRecorder on)
    latency_breakdown: bool = False
    #: capture the K slowest requests' full flight-mark lists
    trace_requests: int = 0
    #: hybrid fluid/event mode: "off" (default, byte-identical to the
    #: historical engine) or "on" (analytic fast-forward where eligible,
    #: with a stderr notice + exact fallback otherwise — see
    #: docs/SIMULATION.md for the approximation contract)
    fluid: str = "off"
    #: discrete-event queue: "heap" (the stock binary heap) or
    #: "calendar" (bucketed calendar queue, identical fire order —
    #: results are byte-identical either way)
    engine: str = "heap"

    @property
    def observability(self) -> bool:
        """True when a run needs a real (non-null) operation ledger."""
        return self.op_breakdown or self.trace_out is not None

    @property
    def flight_on(self) -> bool:
        """True when a run records per-request flights (strictly opt-in:
        default runs stay byte-identical with the recorder off)."""
        return self.latency_breakdown or self.trace_requests > 0

    @property
    def measure_ns(self) -> int:
        return (self.sim_ms - self.warmup_ms) * MS

    def scaled(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)


#: the "paper" profile: closer to the testbed scale (slow; not used in CI)
PAPER_PROFILE = dict(num_workers=32, sim_ms=120, warmup_ms=20)


def system_factory(name: str) -> Callable[..., ColocationSystem]:
    factories = {
        "ideal": IdealSystem,
        "vessel": VesselSystem,
        "caladan": CaladanSystem,
        "caladan-dr-l": caladan_dr_l,
        "caladan-dr-h": caladan_dr_h,
        "arachne": ArachneSystem,
        "linux-cfs": LinuxCfsSystem,
    }
    try:
        return factories[name]
    except KeyError:
        raise ValueError(f"unknown system {name!r}; "
                         f"choose from {sorted(factories)}") from None


def make_l_app(kind: str, name: str, rngs: RngStreams):
    """Returns (app, service_sampler) for an L-app kind."""
    if kind == "memcached":
        return (memcached_app(name),
                UsrServiceSampler(rngs.stream(f"svc/{name}")))
    if kind == "silo":
        return silo_app(name), silo_service_sampler(rngs.stream(f"svc/{name}"))
    raise ValueError(f"unknown L-app kind {kind!r}")


def make_payload_sampler(kind: str, name: str, rngs: RngStreams):
    """Wire-size sampler for an L-app kind (only the net path draws from
    it, on its own ``net/payload/*`` stream, so direct-submit runs see
    unchanged randomness)."""
    if kind == "memcached":
        return UsrPayloadSampler(rngs.stream(f"net/payload/{name}"))
    if kind == "silo":
        return TpccPayloadSampler(rngs.stream(f"net/payload/{name}"))
    raise ValueError(f"unknown L-app kind {kind!r}")


def run_colocation(system_name: str, cfg: ExperimentConfig,
                   l_specs: Sequence[Tuple[str, str, float]],
                   b_specs: Sequence[str] = ("linpack",),
                   bus_sensitivity: float = 0.0,
                   caladan_bw_cap: Optional[Tuple[str, float]] = None,
                   vessel_bw_cap: Optional[Tuple[str, float]] = None,
                   setup_hook: Optional[Callable] = None,
                   admission=None, trace=None, churn=None,
                   fault_plan=None,
                   track_queues: bool = False,
                   rng_namespace: Optional[str] = None) -> SystemReport:
    """Build and run one colocation simulation.

    ``l_specs`` rows are ``(kind, name, rate_mops)``; ``b_specs`` are
    B-app kinds ("linpack" / "membench").  Bandwidth caps (Figure 13) are
    ``(app_name, gbps)`` and are applied with each system's native
    mechanism: core-granular ticks for Caladan, duty-cycling for VESSEL.

    Overload/robustness extras (all picklable, so batch sweeps fan out):
    ``admission`` (an ``AdmissionConfig``) interposes load shedding on
    the submit boundary and NIC ingress; ``trace`` (a ``LoadTrace``)
    shapes every generator's offered rate; ``churn`` (a ``ChurnConfig``)
    runs continuous tenant create/destroy; ``fault_plan`` attaches a
    chaos plan (churn alone also attaches an empty-plan injector, purely
    for the post-run containment audit); ``track_queues`` samples L-app
    queue depths through the measurement window for the
    graceful-degradation signal (``queue_peak`` / ``queue_final``).

    ``rng_namespace`` spawns the run's RNG streams from a named child
    root instead of the raw seed, so many runs sharing one seed (the
    cluster layer's per-server simulations) draw fully independent
    randomness while staying reproducible.  ``None`` — the default —
    is byte-identical to the historical behaviour.
    """
    if cfg.fluid != "off":
        from repro.experiments.fluid_run import fluid_eligibility, \
            run_fluid_colocation
        reasons = fluid_eligibility(
            system_name, cfg, l_specs, b_specs=b_specs,
            bus_sensitivity=bus_sensitivity,
            caladan_bw_cap=caladan_bw_cap, vessel_bw_cap=vessel_bw_cap,
            setup_hook=setup_hook, admission=admission, trace=trace,
            churn=churn, fault_plan=fault_plan,
            track_queues=track_queues, rng_namespace=rng_namespace)
        if not reasons:
            return run_fluid_colocation(system_name, cfg, l_specs,
                                        b_specs=b_specs,
                                        rng_namespace=rng_namespace)
        import sys
        print(f"[fluid] {system_name}: exact-engine fallback: "
              f"{'; '.join(reasons)}", file=sys.stderr)
    if cfg.engine == "calendar":
        from repro.sim.calendar import CalendarSimulator
        sim = CalendarSimulator()
    else:
        sim = Simulator()
    # Observability must be wired before the system is built: layers
    # capture the machine's ledger at construction time.
    ledger = None
    tracer = None
    if cfg.observability:
        tracer = Tracer(sim) if cfg.trace_out is not None else None
        ledger = OpLedger(sim=sim, tracer=tracer,
                          capture_events=cfg.trace_out is not None)
    flight = None
    gauges = None
    if cfg.flight_on:
        flight = FlightRecorder(sim,
                                reservoir_k=max(cfg.trace_requests, 4))
        gauges = GaugeSeries(sim)
    machine = Machine(sim, cfg.costs, cfg.num_workers + 1,
                      membus_gbps=cfg.membus_gbps, ledger=ledger,
                      flight=flight)
    if tracer is not None:
        machine.attach_tracer(tracer)
    rngs = RngStreams(cfg.seed)
    if rng_namespace is not None:
        rngs = rngs.spawn(rng_namespace)
    workers = machine.cores[1:]

    factory = system_factory(system_name)
    kwargs = {}
    if system_name == "vessel" and cfg.policy is not None:
        from repro.sched.policy import make_policy
        kwargs["policy"] = make_policy(cfg.policy, **cfg.policy_params)
    if system_name in ("caladan", "caladan-dr-l", "caladan-dr-h") \
            and caladan_bw_cap is not None:
        if system_name == "caladan":
            kwargs = {"bw_cap_app": caladan_bw_cap[0],
                      "bw_cap_gbps": caladan_bw_cap[1]}
        else:
            raise ValueError("bandwidth caps only wired for plain caladan")
    system = factory(sim, machine, rngs, worker_cores=workers, **kwargs)
    system.bus_sensitivity = bus_sensitivity

    # Admission control must interpose before anything snapshots the
    # system's bound ``submit`` (direct sources and fabric.connect both
    # capture the reference), so it attaches immediately.
    admission_ctl = None
    if admission is not None:
        from repro.overload.admission import AdmissionControl
        admission_ctl = AdmissionControl(sim, admission, ledger=ledger)
        admission_ctl.attach(system)

    # Load delivery: direct submit (the seed-faithful default) or the
    # simulated client/link/NIC fabric (client-observed percentiles).
    fabric = None
    if cfg.net is not None:
        fabric = NetFabric(sim, cfg.net, rngs, num_workers=len(workers),
                           ledger=ledger, flight=flight)
    sources = []
    for kind, name, rate in l_specs:
        app, sampler = make_l_app(kind, name, rngs)
        system.add_app(app)
        if fabric is not None:
            fabric.add_workload(app, rate, sampler,
                                make_payload_sampler(kind, name, rngs),
                                cfg.connections_per_app)
        else:
            source_cls = BurstySource if cfg.bursty else OpenLoopSource
            sources.append(source_cls(
                sim, app, system.submit, rate, sampler,
                rngs.stream(f"arrivals/{name}"),
                connections=cfg.connections_per_app,
            ))
    for kind in b_specs:
        if kind == "linpack":
            system.add_app(linpack_app())
        elif kind == "membench":
            system.add_app(membench_app(machine.membus))
        else:
            raise ValueError(f"unknown B-app kind {kind!r}")

    if fabric is not None:
        fabric.connect(system)
        if admission_ctl is not None:
            fabric.admission = admission_ctl
    system.start()
    injector = None
    if fault_plan is not None or churn is not None:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan
        injector = FaultInjector(fault_plan if fault_plan is not None
                                 else FaultPlan(seed=cfg.seed))
        injector.attach(system)
    churn_driver = None
    if churn is not None:
        from repro.overload.churn import ChurnDriver
        churn_driver = ChurnDriver(sim, system, rngs, churn)
        churn_driver.start()
    if trace is not None:
        from repro.overload.trace import LoadShaper
        shaper = LoadShaper(sim, trace)
        if fabric is not None:
            shaper.attach_fabric(fabric)
        for source in sources:
            shaper.attach_source(source)
        shaper.start()
    queue_peaks: Dict[str, int] = {}
    if track_queues:
        def _sample_queues() -> None:
            for app in system.apps:
                if app.is_latency and \
                        len(app.queue) > queue_peaks.get(app.name, 0):
                    queue_peaks[app.name] = len(app.queue)
            sim.post(50_000, _sample_queues)
        sim.at(cfg.warmup_ms * MS, _sample_queues)
    if vessel_bw_cap is not None and system_name == "vessel":
        from repro.vessel.regulation import VesselBandwidthRegulator
        regulator = VesselBandwidthRegulator(
            sim, system, machine.membus,
            app_name=vessel_bw_cap[0], target_gbps=vessel_bw_cap[1])
        regulator.start()
    if setup_hook is not None:
        setup_hook(sim, machine, system)
    if gauges is not None:
        _wire_gauges(gauges, system, workers, fabric, admission_ctl)
        gauges.start()

    sim.at(cfg.warmup_ms * MS, system.begin_measurement)
    if fabric is not None:
        sim.at(cfg.warmup_ms * MS, fabric.begin_measurement)
    if admission_ctl is not None:
        sim.at(cfg.warmup_ms * MS, admission_ctl.begin_measurement)
    if flight is not None:
        sim.at(cfg.warmup_ms * MS, flight.begin_measurement)
        if gauges is not None:
            sim.at(cfg.warmup_ms * MS, gauges.begin_measurement)
    sim.run(until=cfg.sim_ms * MS)
    if ledger is not None:
        if cfg.op_breakdown:
            print(f"\n[{system_name}] per-op breakdown "
                  f"(measurement window)")
            print(ledger.breakdown_table())
        if cfg.trace_out is not None:
            ledger.write_chrome_trace(cfg.trace_out, flight=flight,
                                      gauges=gauges)
            print(f"[{system_name}] wrote Chrome trace to {cfg.trace_out}")
    report = system.report()
    report.events_fired = sim.events_fired
    if flight is not None:
        report.latency_stages = flight.stage_summaries()
        report.flight_counts = flight.outcome_counts()
        report.slow_traces = flight.slowest_traces()
        report.flight_audit = flight.audit() \
            + _flight_conservation(flight, fabric, system)
        if gauges is not None:
            report.gauges = gauges.summary()
        if cfg.latency_breakdown:
            samples = _authoritative_samples(fabric, system)
            print(format_breakdown(system_name, report.latency_stages,
                                   client_samples=samples))
            if report.flight_audit:
                print(f"[{system_name}] TRACE AUDIT FAILED:")
                for violation in report.flight_audit:
                    print(f"  {violation}")
        if cfg.trace_requests > 0:
            shown = report.slow_traces[:cfg.trace_requests]
            print(f"[{system_name}] {len(shown)} slowest requests:")
            for trace in shown:
                path = " -> ".join(
                    f"{label}@{ts}" + (f"/c{core}" if core is not None
                                       else "")
                    for label, ts, core in trace["marks"])
                print(f"  {trace['app']} "
                      f"{trace['total_ns'] / 1000.0:.1f}us: {path}")
    from repro.obs.hist import LogHistogram
    for app in system.apps:
        if app.is_latency:
            report.latency_hist[app.name] = \
                LogHistogram.from_samples(app.latency.samples)
    if fabric is not None:
        for name, recorder in fabric.client_latency.items():
            report.client_latency[name] = summarize_ns(recorder.samples)
            report.client_hist[name] = \
                LogHistogram.from_samples(recorder.samples)
        report.net_ops = fabric.counters_snapshot()
        report.net_conservation = fabric.conservation()
    if admission_ctl is not None:
        report.admission = admission_ctl.snapshot()
    if injector is not None:
        report.uncontained = injector.uncontained()
        report.fault_injected = {kind.value: count for kind, count
                                 in injector.injected.items() if count}
    if churn_driver is not None:
        report.churn = churn_driver.snapshot()
    if track_queues:
        report.queue_peak = dict(sorted(queue_peaks.items()))
        report.queue_final = {app.name: len(app.queue)
                              for app in system.apps if app.is_latency}
    policy_obj = getattr(system, "policy", None)
    if policy_obj is not None and hasattr(policy_obj, "scaling_snapshot"):
        report.autoscale = policy_obj.scaling_snapshot()
    return report


def _wire_gauges(gauges, system, workers, fabric, admission_ctl) -> None:
    """Register the standard system-state probes on ``gauges``.

    Probes are pure reads over components that already exist, so the
    sampled run differs from an unsampled one only by the tick events.
    """
    gauges.add_probe(
        "busy_cores",
        lambda: sum(1 for core in workers if core.busy))
    for app in system.apps:
        if app.is_latency:
            gauges.add_probe(f"queue:{app.name}",
                             lambda a=app: len(a.queue))
    if fabric is not None:
        gauges.add_probe(
            "net_inflight",
            lambda: sum(fabric.inflight.values()))
    if admission_ctl is not None:
        last_shed = [0]

        def _shed_rate() -> int:
            total = admission_ctl.total_shed()
            delta = total - last_shed[0]
            last_shed[0] = total
            # begin_measurement resets the counter mid-run; clamp the
            # one negative delta that produces.
            return max(0, delta)

        gauges.add_probe("shed_per_tick", _shed_rate)
    policy = getattr(system, "policy", None)
    if policy is not None and hasattr(policy, "be_allowed"):
        gauges.add_probe(
            "be_core_cap",
            lambda: -1 if policy.be_allowed is None else policy.be_allowed)


def _authoritative_samples(fabric, system) -> Dict[str, List[int]]:
    """Per-app latency samples of the independent (non-flight) recorder:
    client-observed when a fabric ran, server-side otherwise."""
    if fabric is not None:
        return {name: recorder.samples
                for name, recorder in fabric.client_latency.items()}
    return {app.name: app.latency.samples
            for app in system.apps if app.is_latency}


def _flight_conservation(flight, fabric, system) -> List[str]:
    """Cross-check flight aggregates against the independent recorders.

    Every ``done`` flight must correspond one-to-one with a sample of
    the authoritative latency recorder, with *exactly* equal integer
    sums — the span-conservation half of the trace-invariant audit (the
    other half, NetFabric's offered/completed/in-flight identity, is
    checked by ``report.net_conservation``).
    """
    violations: List[str] = []
    for name, samples in sorted(_authoritative_samples(fabric,
                                                       system).items()):
        totals = flight.done_totals(name)
        if len(totals) != len(samples):
            violations.append(
                f"{name}: {len(totals)} done flights but "
                f"{len(samples)} recorded latencies")
        elif sum(totals) != sum(samples):
            violations.append(
                f"{name}: flight latency sum {sum(totals)} != "
                f"recorded sum {sum(samples)}")
    return violations


# ----------------------------------------------------------------------
# Sweep fan-out
# ----------------------------------------------------------------------
def _colocation_worker(task):
    """Pool worker: one run_colocation call with stdout captured."""
    import contextlib
    import io

    system_name, cfg, kwargs = task
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        report = run_colocation(system_name, cfg, **kwargs)
    return report, buffer.getvalue()


def run_colocation_batch(tasks: Sequence[Tuple[str, "ExperimentConfig",
                                               Dict]],
                         jobs: int = 1) -> List[SystemReport]:
    """Run independent :func:`run_colocation` calls, fanned out over
    ``jobs`` worker processes.

    ``tasks`` rows are ``(system_name, cfg, kwargs)`` with ``kwargs``
    passed through to :func:`run_colocation` (they must be picklable, so
    no closures as ``setup_hook``).  Reports come back in task order and
    each run's captured stdout is re-printed in task order, so a batch
    is byte-identical to the equivalent serial loop — each run owns its
    Simulator and seeded RNG streams, parallelism only changes wall
    time.  ``jobs <= 1`` runs everything in-process.
    """
    from repro.perf.parallel import parallel_map

    results = parallel_map(_colocation_worker, list(tasks), jobs)
    reports = []
    for report, text in results:
        if text:
            print(text, end="")
        reports.append(report)
    return reports


def merged_latency_summary(reports: Sequence[SystemReport], app_name: str,
                           client: bool = True) -> Dict[str, float]:
    """Latency summary for one app pooled *exactly* across many runs.

    Folds the per-run log-histograms (client-observed when ``client``,
    server-side otherwise) with the exact bucket merge — identical to
    histogramming the concatenated sample streams, with none of the
    percentile-of-percentiles bias that averaging per-run p99s would
    introduce.  This is how batch sweeps and the cluster layer roll a
    fleet of runs into one figure.
    """
    from repro.obs.hist import LogHistogram
    hists = []
    for report in reports:
        source = report.client_hist if client else report.latency_hist
        hist = source.get(app_name)
        if hist is not None:
            hists.append(hist)
    return LogHistogram.merged(hists).summary()


# ----------------------------------------------------------------------
# Normalization helpers (the footnote-1 formula)
# ----------------------------------------------------------------------
def l_capacity_mops(cfg: ExperimentConfig, mean_service_ns: float) -> float:
    """Max throughput of an L-app alone on all workers (ideal RTC)."""
    return cfg.num_workers * 1000.0 / mean_service_ns


def normalized_total(report: SystemReport, cfg: ExperimentConfig,
                     l_mean_service: Dict[str, float],
                     b_alone_useful: Optional[Dict[str, float]] = None) -> float:
    """Sum of per-app T_cur/T_max (footnote 1 of the paper).

    For L-apps T_max is the alone capacity; for B-apps T_max is all
    worker cores busy for the whole window unless ``b_alone_useful``
    supplies a measured alone run (needed for membench, whose alone
    throughput is bus-limited).
    """
    total = 0.0
    for name, mean_ns in l_mean_service.items():
        total += report.throughput_mops(name) / l_capacity_mops(cfg, mean_ns)
    denom_default = report.elapsed_ns * report.num_worker_cores
    for name, useful in report.useful_ns.items():
        alone = (b_alone_useful or {}).get(name, denom_default)
        if alone > 0:
            total += useful / alone
    return total


# ----------------------------------------------------------------------
# Pretty printing
# ----------------------------------------------------------------------
def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table (the bench harness prints these)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(headers))))
    return "\n".join(lines)


def parse_profile(argv: Optional[List[str]] = None) -> ExperimentConfig:
    """--scale smoke|paper command-line handling for __main__ blocks."""
    import argparse
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=["smoke", "paper"],
                        default="smoke")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--op-breakdown", action="store_true",
                        help="print the per-op ledger breakdown")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file")
    parser.add_argument("--net", action="store_true",
                        help="deliver load through the simulated "
                             "client/link/NIC fabric (repro.net)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for sweep fan-out "
                             "(byte-identical output to --jobs 1)")
    parser.add_argument("--policy", default=None, metavar="NAME",
                        help="scheduling policy for VESSEL runs "
                             "(default/mlfq/sjf/trust-group/priority; "
                             "see 'python -m repro policies')")
    parser.add_argument("--latency-breakdown", action="store_true",
                        help="record per-request flights and print the "
                             "per-app per-stage latency decomposition")
    parser.add_argument("--trace-requests", type=int, default=0,
                        metavar="K",
                        help="capture and print the K slowest requests' "
                             "full stage-span lists")
    parser.add_argument("--fluid", choices=["off", "on"], default="off",
                        help="hybrid fluid/event mode: 'on' fast-forwards "
                             "eligible runs analytically (exact fallback "
                             "with a stderr notice otherwise); 'off' is "
                             "byte-identical to the classic engine")
    parser.add_argument("--engine", choices=["heap", "calendar"],
                        default="heap",
                        help="discrete-event queue implementation "
                             "(identical fire order; results are "
                             "byte-identical either way)")
    args = parser.parse_args(argv)
    cfg = ExperimentConfig(seed=args.seed, op_breakdown=args.op_breakdown,
                           trace_out=args.trace_out,
                           net=NetConfig() if args.net else None,
                           jobs=max(1, args.jobs), policy=args.policy,
                           latency_breakdown=args.latency_breakdown,
                           trace_requests=max(0, args.trace_requests),
                           fluid=args.fluid, engine=args.engine)
    if args.scale == "paper":
        cfg = cfg.scaled(**PAPER_PROFILE)
    return cfg
