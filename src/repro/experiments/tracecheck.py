"""Trace-invariant audit: the flight recorder proves itself, with gates.

``python -m repro tracecheck`` runs per-request flight recording across
the systems and load paths that exercise every mark type — direct
submit, the client/link/NIC fabric, admission sheds, autoscaler
preemptions, chaos-injected packet drops/delays — and then *asserts*
the recorder's invariants instead of trusting them:

1. **audit clean** — every arm's trace-invariant audit is empty:
   marks monotonic, transitions legal, per-core service segments
   non-overlapping, per-request stage sums equal to the end-to-end
   latency, and span conservation exact against the independent
   latency recorders (client-side where a fabric ran);
2. **telescoping** — per app, the integer sum of all stage durations
   equals the integer sum of measured latencies (delta exactly 0);
3. **coverage** — across the arms, the recorder observed completions,
   sheds, *and* drops, and decomposed latency into at least the
   net_in / sched_queue / service / net_out stages (a refactor that
   silently unhooks a chokepoint fails here, not in production);
4. **determinism** — the whole suite is byte-identical when re-run
   with ``--jobs 2``.

Any violated gate raises ``RuntimeError`` (non-zero exit), which the
CI ``trace-smoke`` job keys on.  ``--trace-out FILE`` additionally
writes the chaos arm's merged Perfetto/Chrome trace (core spans, op
events, slowest-request stage spans, gauge counter tracks) for the CI
artifact.

Usage::

    PYTHONPATH=src python -m repro tracecheck           # full scenario
    PYTHONPATH=src python -m repro tracecheck --smoke   # CI-sized
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.units import MS, US
from repro.faults.plan import FaultPlan
from repro.net import NetConfig
from repro.experiments import flashcrowd
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

#: stages that must appear somewhere across the arms (coverage gate)
REQUIRED_STAGES = ("net_in", "nic_ring", "sched_queue", "service",
                   "net_out")
#: outcomes that must appear somewhere across the arms (coverage gate)
REQUIRED_OUTCOMES = ("done", "shed", "drop")


def _chaos_plan(cfg: ExperimentConfig) -> FaultPlan:
    """Packet drops + delays + Uintr drops riding through the spike."""
    spike_ns = int(0.5 * cfg.sim_ms * MS)
    return (FaultPlan(seed=cfg.seed)
            .drop_packets(0.02)
            .delay_packets(2 * US, probability=0.05, at_ns=spike_ns)
            .drop_uintr(0.05, at_ns=spike_ns))


def arms(cfg: ExperimentConfig) -> List:
    """(label, system, cfg, run_colocation kwargs) rows.

    Every arm records flights; together they cross direct vs fabric
    delivery, all marks (admit/shed/preempt/ingress), and chaos.
    """
    base_rate = flashcrowd.BASE_LOAD * l_capacity_mops(
        cfg, MEMCACHED_MEAN_SERVICE_NS)
    trace = flashcrowd.flash_crowd_trace(cfg.sim_ms,
                                         flashcrowd.SPIKE_FACTOR)
    flight_cfg = cfg.scaled(latency_breakdown=True,
                            trace_requests=max(cfg.trace_requests, 2))
    return [
        # Direct submit: submit/run_start/preempt/complete marks, the
        # silo heavy-tail triggers VESSEL's long-request preemption.
        ("vessel-direct", "vessel",
         flight_cfg.scaled(net=None),
         dict(l_specs=[("memcached", "mc", 1.5), ("silo", "silo", 0.05)],
              b_specs=("linpack",))),
        # The protected flash-crowd arm under chaos: ingress/admit/shed
        # marks, autoscaler cap preemptions, packet drops and delays.
        ("vessel-net-chaos", "vessel",
         flight_cfg.scaled(net=flashcrowd.hardened_net(cfg.net),
                           policy="autoscale",
                           policy_params={"slo_p99_us":
                                          flashcrowd.SLO_P99_US}),
         dict(l_specs=[("memcached", "mc", base_rate)],
              b_specs=("linpack",), trace=trace,
              admission=flashcrowd.admission_for(cfg),
              fault_plan=_chaos_plan(cfg), track_queues=True)),
        # A baseline over the plain fabric: Caladan's reallocation
        # preemptions and the NIC-ring stage without admission control.
        ("caladan-net", "caladan",
         flight_cfg.scaled(net=cfg.net or NetConfig()),
         dict(l_specs=[("memcached", "mc", base_rate)],
              b_specs=("linpack",))),
        # The kernel-scheduler comparator, direct submit (core-less
        # service segments must not trip the overlap audit).
        ("linux-cfs-direct", "linux-cfs",
         flight_cfg.scaled(net=None),
         dict(l_specs=[("memcached", "mc", 0.5)],
              b_specs=("linpack",))),
    ]


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    rows = arms(cfg)
    reports = run_colocation_batch(
        [(system, arm_cfg, kwargs)
         for _, system, arm_cfg, kwargs in rows],
        jobs=cfg.jobs)
    return {"arms": [(label, report)
                     for (label, _, _, _), report in zip(rows, reports)]}


def _fingerprint(results: Dict) -> str:
    return repr([(label,
                  sorted(report.flight_counts.items()),
                  report.flight_audit,
                  sorted((app, summary["stage_sum_ns"],
                          summary["total_sum_ns"],
                          sorted(summary["stages"]))
                         for app, summary in
                         report.latency_stages.items()),
                  sorted(report.completed.items()),
                  report.events_fired)
                 for label, report in results["arms"]])


def _gate(ok: bool, message: str, failures: List[str]) -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {message}")
    if not ok:
        failures.append(message)


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    results = run(cfg)

    print("\nTrace-invariant audit:")
    rows = []
    seen_stages = set()
    seen_outcomes = set()
    for label, report in results["arms"]:
        outcomes: Dict[str, int] = {}
        for per_app in report.flight_counts.values():
            for outcome, count in per_app.items():
                outcomes[outcome] = outcomes.get(outcome, 0) + count
        seen_outcomes.update(outcomes)
        delta = 0
        for app, summary in report.latency_stages.items():
            seen_stages.update(summary["stages"])
            delta += abs(summary["stage_sum_ns"]
                         - summary["total_sum_ns"])
        rows.append([label, outcomes.get("done", 0),
                     outcomes.get("shed", 0), outcomes.get("drop", 0),
                     outcomes.get("dup", 0), delta,
                     len(report.flight_audit)])
    print(format_table(
        ["arm", "done", "shed", "drop", "dup", "stage delta ns",
         "violations"], rows))

    print("\nGates:")
    failures: List[str] = []
    for label, report in results["arms"]:
        _gate(not report.flight_audit,
              f"{label}: trace-invariant audit clean"
              + ("" if not report.flight_audit
                 else f" — {report.flight_audit[:3]}"), failures)
        for app, summary in sorted(report.latency_stages.items()):
            _gate(summary["stage_sum_ns"] == summary["total_sum_ns"],
                  f"{label}/{app}: stage sums telescope to measured "
                  f"latency exactly", failures)
        done = sum(per.get("done", 0)
                   for per in report.flight_counts.values())
        _gate(done > 0, f"{label}: recorded completed flights ({done})",
              failures)
    missing_stages = [s for s in REQUIRED_STAGES if s not in seen_stages]
    _gate(not missing_stages,
          "stage coverage across arms: "
          + (", ".join(sorted(seen_stages)) or "none")
          + (f" (missing {missing_stages})" if missing_stages else ""),
          failures)
    missing_outcomes = [o for o in REQUIRED_OUTCOMES
                        if o not in seen_outcomes]
    _gate(not missing_outcomes,
          "outcome coverage across arms: "
          + (", ".join(sorted(seen_outcomes)) or "none")
          + (f" (missing {missing_outcomes})" if missing_outcomes
             else ""), failures)

    if failures:
        raise RuntimeError("tracecheck gates failed: "
                           + "; ".join(failures))
    results["fingerprint"] = _fingerprint(results)
    return results


def smoke_config(seed: int = 42, jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(num_workers=4, sim_ms=8, warmup_ms=2,
                            seed=seed, jobs=jobs)


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro tracecheck [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro tracecheck",
        description="Audit the per-request flight recorder's invariants "
                    "across direct/fabric/chaos arms.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run + --jobs 2 determinism gate")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the chaos arm's merged Perfetto/"
                             "Chrome trace (core spans + ops + request "
                             "stage spans + gauges)")
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = smoke_config(seed=args.seed, jobs=max(1, args.jobs))
    else:
        cfg = ExperimentConfig(seed=args.seed, jobs=max(1, args.jobs))
    results = main(cfg)
    jobs2 = run(cfg.scaled(jobs=2))
    if _fingerprint(jobs2) != results["fingerprint"]:
        raise RuntimeError("--jobs 2 rerun was not byte-identical")
    print("[tracecheck] --jobs 2 determinism gate passed")
    if args.trace_out is not None:
        from repro.experiments.common import run_colocation
        _, _, chaos_cfg, chaos_kwargs = arms(cfg)[1]
        run_colocation("vessel",
                       chaos_cfg.scaled(trace_out=args.trace_out),
                       **chaos_kwargs)
        print(f"[tracecheck] wrote merged trace to {args.trace_out}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
