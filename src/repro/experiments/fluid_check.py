"""The fluid-mode CI gate (``python -m repro fluidcheck``).

Three checks, exit non-zero if any fails:

(a) **Exact-engine byte-identity** — the four golden VESSEL scenarios
    (captured at the seed commit, kept under ``tests/sched/``) are
    re-run through the exact engine and compared field-for-field,
    floats included.  The fluid feature landing must not have moved a
    bit of the default path.

(b) **Fallback equality** — a ``--fluid on`` run that is *ineligible*
    for the analytic path (here: queue tracking, which needs a live
    Simulator) must produce a report identical to the same run with
    ``--fluid off``; the fallback notice goes to stderr only.

(c) **Fluid tolerance** — on the pinned smoke scenarios (the fig12
    kernel cells: VESSEL at 42 cores, Caladan at 34, load 0.45, bursty,
    seed 42), fluid-mode p99 must land within the stated tolerance of
    the exact engine — |Δp99| ≤ 50% relative or ≤ 5 µs absolute — and
    throughput within 3%.  These bounds are the documented approximation
    contract (docs/SIMULATION.md), with headroom over the measured gap
    (p99 within ~25% for VESSEL and ~37% for Caladan at record time;
    throughput within 1%).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List

from repro.experiments.common import ExperimentConfig, make_l_app, \
    run_colocation
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS

#: (system, workers, load) — the pinned fig12-class tolerance cells
PINNED = (("vessel", 42, 0.45), ("caladan", 34, 0.45))
#: the stated tolerance: p99 within 50% relative OR 5 us absolute
P99_REL_TOL = 0.50
P99_ABS_TOL_US = 5.0
#: throughput within 3%
TPUT_REL_TOL = 0.03

#: the golden capture's scenarios (mirrors tests/sched/test_byte_identity
#: — duplicated here because the test tree is not an importable package)
GOLDEN_SCENARIOS = {
    "memcached_r1.0": dict(l_specs=[("memcached", "memcached", 1.0)]),
    "memcached_r2.0": dict(l_specs=[("memcached", "memcached", 2.0)]),
    "silo_r0.05": dict(l_specs=[("silo", "silo", 0.05)]),
    "dense_4apps": dict(
        l_specs=[("memcached", f"mc{i}", 0.7) for i in range(4)],
        num_workers=2, batch=False),
}


def _golden_path() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "sched",
                        "golden_vessel_reports.json")


def _run_golden_scenario(l_specs, num_workers=4, sim_ms=10, warmup_ms=2,
                         seed=42, batch=True) -> Dict:
    """One VESSEL run, serialized exactly like the golden capture."""
    from repro.hardware.machine import Machine
    from repro.hardware.timing import CostModel
    from repro.obs.ledger import OpLedger
    from repro.vessel.scheduler import VesselSystem
    from repro.workloads.base import OpenLoopSource
    from repro.workloads.linpack import linpack_app

    sim = Simulator()
    ledger = OpLedger(sim=sim)
    machine = Machine(sim, CostModel(), num_workers + 1, ledger=ledger)
    rngs = RngStreams(seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    pending = []
    for kind, name, rate in l_specs:
        app, sampler = make_l_app(kind, name, rngs)
        system.add_app(app)
        pending.append((app, sampler, name, rate))
    if batch:
        system.add_app(linpack_app())
    system.start()
    for app, sampler, name, rate in pending:
        OpenLoopSource(sim, app, system.submit, rate, sampler,
                       rngs.stream(f"arrivals/{name}"))
    sim.at(warmup_ms * MS, system.begin_measurement)
    sim.run(until=sim_ms * MS)
    report = system.report()
    return {
        "system": report.system,
        "elapsed_ns": report.elapsed_ns,
        "num_worker_cores": report.num_worker_cores,
        "buckets": dict(sorted(report.buckets.items())),
        "latency": {k: dict(sorted(v.items()))
                    for k, v in sorted(report.latency.items())},
        "completed": dict(sorted(report.completed.items())),
        "useful_ns": dict(sorted(report.useful_ns.items())),
        "ledger_ops": dict(sorted(ledger.op_counts().items())),
        "preemptions": system.preemptions,
        "rotations": system.rotations,
        "events_fired": sim.events_fired,
    }


def _serialize(report) -> Dict:
    """Stable view of a report for exact-equality comparison."""
    return {
        "system": report.system,
        "elapsed_ns": report.elapsed_ns,
        "buckets": dict(sorted(report.buckets.items())),
        "latency": {k: dict(sorted(v.items()))
                    for k, v in sorted(report.latency.items())},
        "queue_wait": {k: dict(sorted(v.items()))
                       for k, v in sorted(report.queue_wait.items())},
        "completed": dict(sorted(report.completed.items())),
        "useful_ns": dict(sorted(report.useful_ns.items())),
        "hist": {k: dict(sorted(v.summary().items()))
                 for k, v in sorted(report.latency_hist.items())},
        "queue_peak": dict(sorted(report.queue_peak.items())),
        "events_fired": report.events_fired,
    }


def check_golden(seed: int = 42, scenarios=None) -> List[str]:
    """Gate (a): golden byte-identity.  Returns failure messages."""
    path = _golden_path()
    if not os.path.exists(path):
        return [f"golden file not found: {path}"]
    with open(path) as handle:
        golden = json.load(handle)
    failures = []
    names = scenarios if scenarios is not None else sorted(GOLDEN_SCENARIOS)
    for name in names:
        actual = json.loads(json.dumps(
            _run_golden_scenario(seed=seed, **GOLDEN_SCENARIOS[name])))
        if actual != golden[name]:
            diffs = [key for key in golden[name]
                     if actual.get(key) != golden[name][key]]
            failures.append(f"golden {name}: mismatch in {diffs}")
        else:
            print(f"  golden {name}: byte-identical")
    return failures


def check_fallback(seed: int = 42) -> List[str]:
    """Gate (b): an ineligible --fluid on run equals its --fluid off
    twin exactly (the fallback is the exact engine, not a degraded
    approximation)."""
    cfg = ExperimentConfig(num_workers=8, sim_ms=4, warmup_ms=1,
                           seed=seed, bursty=True)
    specs = [("memcached", "memcached", 2.0)]
    off = run_colocation("vessel", cfg, specs, track_queues=True)
    on = run_colocation("vessel", cfg.scaled(fluid="on"), specs,
                        track_queues=True)
    if _serialize(off) != _serialize(on):
        return ["fallback: --fluid on (ineligible) != --fluid off"]
    print("  fallback run: identical to --fluid off")
    return []


def check_tolerance(seed: int = 42, pinned=PINNED) -> List[str]:
    """Gate (c): fluid vs exact on the pinned scenarios."""
    failures = []
    for system, workers, load in pinned:
        cfg = ExperimentConfig(num_workers=workers, sim_ms=6, warmup_ms=2,
                               seed=seed, bursty=True)
        rate = load * workers  # memcached mean service 1000 ns
        specs = [("memcached", "memcached", rate)]
        exact = run_colocation(system, cfg, specs)
        fluid = run_colocation(system, cfg.scaled(fluid="on"), specs)
        if fluid.events_fired != 0:
            failures.append(f"{system}: fluid run fired "
                            f"{fluid.events_fired} events (expected 0)")
        e_p99 = exact.p99_us("memcached")
        f_p99 = fluid.p99_us("memcached")
        d_rel = abs(f_p99 - e_p99) / e_p99 if e_p99 > 0 else 0.0
        d_abs = abs(f_p99 - e_p99)
        p99_ok = d_rel <= P99_REL_TOL or d_abs <= P99_ABS_TOL_US
        e_tput = exact.throughput_mops("memcached")
        f_tput = fluid.throughput_mops("memcached")
        t_rel = abs(f_tput - e_tput) / e_tput if e_tput > 0 else 0.0
        tput_ok = t_rel <= TPUT_REL_TOL
        print(f"  {system} k={workers} load={load}: "
              f"p99 exact={e_p99:.2f}us fluid={f_p99:.2f}us "
              f"(d={d_rel * 100:.1f}%) "
              f"tput exact={e_tput:.3f} fluid={f_tput:.3f} "
              f"(d={t_rel * 100:.2f}%)")
        if not p99_ok:
            failures.append(
                f"{system}: fluid p99 {f_p99:.2f}us vs exact "
                f"{e_p99:.2f}us exceeds tolerance "
                f"({P99_REL_TOL:.0%} rel / {P99_ABS_TOL_US}us abs)")
        if not tput_ok:
            failures.append(
                f"{system}: fluid throughput {f_tput:.3f} vs exact "
                f"{e_tput:.3f} exceeds {TPUT_REL_TOL:.0%}")
    return failures


def run_checks(seed: int = 42, smoke: bool = False) -> int:
    failures: List[str] = []
    print("[fluidcheck] gate (a): --fluid off byte-identity vs golden")
    scenarios = (["memcached_r1.0", "dense_4apps"] if smoke else None)
    failures += check_golden(seed=seed, scenarios=scenarios)
    print("[fluidcheck] gate (b): ineligible-run fallback equality")
    failures += check_fallback(seed=seed)
    print("[fluidcheck] gate (c): fluid-vs-exact tolerance")
    pinned = PINNED[:1] if smoke else PINNED
    failures += check_tolerance(seed=seed, pinned=pinned)
    if failures:
        print("[fluidcheck] FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("[fluidcheck] all gates passed")
    return 0


def main(cfg: ExperimentConfig) -> None:
    """Experiment-mode entry (``python -m repro fluidcheck`` among
    others): run the full gate; raise on failure so the driver exits
    non-zero."""
    if run_checks(seed=cfg.seed) != 0:
        raise SystemExit(1)


def cli_main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro fluidcheck",
        description="Gate the hybrid fluid/event mode: exact-engine "
                    "byte-identity, fallback equality, and fluid "
                    "tolerance on the pinned scenarios.")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced gate: two golden scenarios and "
                             "the VESSEL tolerance cell only")
    args = parser.parse_args(argv)
    return run_checks(seed=args.seed, smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(cli_main())
