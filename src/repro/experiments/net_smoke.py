"""Network smoke: client-observed latency through the simulated fabric.

This is the ``--net`` counterpart of the chaos gate: a short colocation
sweep where load is delivered by simulated client machines over the
100 Gbps link and multi-queue NIC instead of direct submission, plus a
lossy-link run with injected packet drops/delays.  It exits non-zero if

* any load point reports a zero (or NaN) client-observed P99,
* client-observed P99 falls below server-side P99 anywhere (the network
  path can only add latency), or
* any injected packet fault escapes containment.

Usage::

    PYTHONPATH=src python -m repro net
    PYTHONPATH=src python -m repro net --op-breakdown
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    parse_profile,
    run_colocation,
)
from repro.faults import FaultInjector, FaultPlan
from repro.net import NetConfig
from repro.sim.units import MS, US
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

SYSTEMS = ("vessel", "caladan")
LOADS = (0.2, 0.5)
#: packet-fault intensities for the lossy-link run
DROP_P = 0.02
DELAY_NS = 20 * US
DELAY_P = 0.05


def main(cfg: Optional[ExperimentConfig] = None) -> None:
    cfg = cfg or ExperimentConfig()
    if cfg.net is None:
        cfg = cfg.scaled(net=NetConfig())
    capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)

    rows = []
    violations: List[str] = []
    for system in SYSTEMS:
        for load in LOADS:
            report = run_colocation(
                system, cfg,
                l_specs=[("memcached", "memcached", load * capacity)],
                b_specs=("linpack",))
            server_p99 = report.latency["memcached"]["p99_us"]
            client_p99 = report.client_p99_us("memcached")
            counters = report.net_ops["memcached"]
            rows.append([system, load,
                         f"{server_p99:.1f}", f"{client_p99:.1f}",
                         counters["offered"], counters["completed"],
                         counters["retries"], counters["losses"]])
            if not client_p99 > 0 or math.isnan(client_p99):
                violations.append(
                    f"{system} @ {load}: client P99 not positive "
                    f"({client_p99})")
            if not client_p99 >= server_p99:
                violations.append(
                    f"{system} @ {load}: client P99 {client_p99:.2f} us "
                    f"< server P99 {server_p99:.2f} us")
    print("Client-observed vs server-side tail latency "
          "(memcached + linpack over the simulated fabric):")
    print(format_table(
        ["system", "load", "server p99 us", "client p99 us", "offered",
         "completed", "retries", "losses"], rows))

    # ---- lossy link: packet drops/delays must stay contained ----------
    holder = {}

    def attach_faults(sim, machine, system):
        plan = (FaultPlan(seed=cfg.seed)
                .drop_packets(DROP_P, at_ns=cfg.warmup_ms * MS)
                .delay_packets(DELAY_NS, probability=DELAY_P,
                               at_ns=cfg.warmup_ms * MS))
        injector = FaultInjector(plan)
        injector.attach(system)
        holder["injector"] = injector

    report = run_colocation(
        "vessel", cfg,
        l_specs=[("memcached", "memcached", LOADS[-1] * capacity)],
        b_specs=("linpack",), setup_hook=attach_faults)
    injector = holder["injector"]
    counters = report.net_ops["memcached"]
    injected = {k.value: v for k, v in injector.injected.items() if v}
    print(f"\nLossy link (drop {DROP_P:.0%}, "
          f"+{DELAY_NS / 1000:.0f} us delay on {DELAY_P:.0%}):")
    print(f"  injected faults : {injected}")
    print(f"  fault ops       : {report.fault_ops}")
    print(f"  client counters : {counters}")
    print(f"  client p99      : "
          f"{report.client_p99_us('memcached'):.1f} us")
    if injector.total_injected == 0:
        violations.append("lossy-link run injected no packet faults")
    if counters["retries"] == 0:
        violations.append("clients never retried despite injected drops")
    issues = injector.uncontained()
    for issue in issues:
        violations.append(f"UNCONTAINED: {issue}")
    if violations:
        for violation in violations:
            print(f"  FAIL: {violation}")
        raise RuntimeError(
            f"{len(violations)} network smoke check(s) failed")
    print(f"  containment     : all {injector.total_injected} injected "
          "packet faults contained; client-observed P99 >= server P99 "
          "at every load point")


if __name__ == "__main__":
    main(parse_profile())
