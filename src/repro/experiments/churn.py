"""Churn scenario: continuous uProcess create/destroy under load.

Multi-tenant turnover is where the paper's teardown story earns its
keep: every retirement must release the tenant's SMAS slot, pkey, boot
kProcess, signal handler, and kernel descriptors, and every spawn must
boot cleanly into a recycled slot — while long-lived tenants keep
serving.  The run drives several churn lanes against a VESSEL system
for the whole window, then audits for kernel-side residue with the
fault injector's containment audit (an empty fault plan attaches the
audit without injecting anything).

What to look for:

* ``created``/``destroyed`` in the hundreds with ``slots_in_use`` equal
  to the live population — slots are recycled, not leaked;
* the containment audit is empty (no stale signal handlers, no dead
  boot kProcesses, no leaked descriptors);
* the long-lived tenant's p99 is unaffected by neighbours booting and
  dying (compare against the no-churn control row).

Usage::

    PYTHONPATH=src python -m repro churn            # scenario
    PYTHONPATH=src python -m repro churn --smoke    # CI gate
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    run_colocation_batch,
)
from repro.overload.churn import ChurnConfig

#: offered load for the long-lived tenant (Mops/s)
RESIDENT_RATE_MOPS = 0.4


def churn_config(cfg: ExperimentConfig) -> ChurnConfig:
    """Turnover sized to the run: lanes churn fast enough that a smoke
    window still sees dozens of full create/destroy/create cycles."""
    return ChurnConfig(tenants=3, lifetime_us=400.0, respawn_gap_us=100.0,
                       rate_mops=0.2)


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    l_specs = [("memcached", "resident", RESIDENT_RATE_MOPS)]
    tasks = [
        # Control: the same resident + batch colocation, no churn.
        ("vessel", cfg, dict(l_specs=l_specs, b_specs=("linpack",))),
        # Scenario: three churn lanes spawning/retiring throughout.
        ("vessel", cfg, dict(l_specs=l_specs, b_specs=("linpack",),
                             churn=churn_config(cfg))),
    ]
    reports = run_colocation_batch(tasks, jobs=cfg.jobs)
    control, churned = reports
    return {"control": control, "churned": churned}


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    control, churned = results["control"], results["churned"]
    snap = churned.churn
    print("Churn scenario: 3 lanes of tenants booting and dying next to "
          "a resident memcached + linpack")
    rows: List[List] = []
    for label, report in (("no churn", control), ("churn", churned)):
        rows.append([
            label,
            round(report.p99_us("resident"), 1),
            report.completed.get("resident", 0),
            report.churn.get("created", 0),
            report.churn.get("destroyed", 0),
            report.churn.get("slots_in_use", "-"),
            len(report.uncontained) if report.churn else "-",
        ])
    print(format_table(
        ["run", "resident P99 us", "completed", "created", "destroyed",
         "slots", "leaks"], rows))
    print(f"teardown residue: {snap['signal_handlers']} signal handlers, "
          f"{snap['dead_children']} dead boot kProcesses, "
          f"{snap['kernel_fd_tables']} live fd tables, "
          f"roster {snap['domain_roster']} uProcesses for "
          f"{snap['active']} churning + 2 resident")
    if churned.uncontained:
        for issue in churned.uncontained:
            print(f"  LEAK: {issue}")
    return results


def _fingerprint(results: Dict) -> str:
    """Deterministic digest of everything the scenario measures."""
    churned = results["churned"]
    return repr((
        sorted(churned.completed.items()),
        sorted((k, round(v.get("p99_us", 0.0), 6))
               for k, v in churned.latency.items()),
        sorted(churned.churn.items()),
        churned.uncontained,
        churned.events_fired,
    ))


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro churn [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro churn",
        description="Tenant create/destroy churn against a running "
                    "VESSEL system, with a kernel-residue audit.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run with hard gates (leak audit, "
                             "turnover, byte-identical rerun)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    args = parser.parse_args(argv)
    cfg = ExperimentConfig(seed=args.seed, jobs=max(1, args.jobs))
    if args.smoke:
        cfg = cfg.scaled(num_workers=4, sim_ms=8, warmup_ms=2)
    results = main(cfg)
    if args.smoke:
        churned = results["churned"]
        snap = churned.churn
        if snap["created"] < 10:
            raise RuntimeError(
                f"churn too slow: only {snap['created']} tenants created")
        if snap["created"] - snap["destroyed"] != snap["active"]:
            raise RuntimeError(
                f"turnover accounting broken: created {snap['created']} "
                f"- destroyed {snap['destroyed']} != active "
                f"{snap['active']}")
        if churned.uncontained:
            raise RuntimeError(
                f"{len(churned.uncontained)} teardown leak(s): "
                f"{churned.uncontained}")
        rerun = run(cfg)
        if _fingerprint(rerun) != _fingerprint(results):
            raise RuntimeError("rerun was not byte-identical")
        print("[churn --smoke] gates passed: turnover, zero leaks, "
              "deterministic rerun")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
