"""Figure 7: execution timelines of the two schedulers.

The paper's Figure 7 contrasts Caladan's conservative two-level schedule
(cores spin 2 µs before parking, reallocations every 10 µs) with
VESSEL's packed one-level schedule.  This experiment runs both systems
on identical machines/workloads with an execution tracer attached,
renders the per-core occupancy strips, and reports the quantitative
version: what fraction of worker-core time ran application code vs
runtime spinning vs kernel switching vs idle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer, render_timeline
from repro.sim.units import MS, US
from repro.hardware.machine import Machine
from repro.experiments.common import ExperimentConfig, format_table
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.workloads.memcached import memcached_app, UsrServiceSampler

WINDOW_START_NS = 4 * MS
WINDOW_NS = 200 * US


def _run_traced(system_name: str, cfg: ExperimentConfig):
    from repro.experiments.common import system_factory
    sim = Simulator()
    machine = Machine(sim, cfg.costs, cfg.num_workers + 1)
    tracer = Tracer(sim)
    machine.attach_tracer(tracer)
    rngs = RngStreams(cfg.seed)
    system = system_factory(system_name)(sim, machine, rngs,
                                         worker_cores=machine.cores[1:])
    mc, lp = memcached_app(), linpack_app()
    system.add_app(mc)
    system.add_app(lp)
    system.start()
    OpenLoopSource(sim, mc, system.submit,
                   rate_mops=0.45 * cfg.num_workers,
                   service_sampler=UsrServiceSampler(rngs.stream("svc")),
                   rng=rngs.stream("arr"))
    sim.run(until=WINDOW_START_NS + WINDOW_NS)
    machine.settle_all()
    return tracer, system


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = (cfg or ExperimentConfig()).scaled(num_workers=2)
    results: Dict = {}
    for system_name in ("vessel", "caladan"):
        tracer, system = _run_traced(system_name, cfg)
        t0, t1 = WINDOW_START_NS, WINDOW_START_NS + WINDOW_NS
        cores = [c.id for c in system.worker_cores]
        app = sum(tracer.busy_fraction(c, t0, t1, "app:") for c in cores)
        runtime = sum(tracer.busy_fraction(c, t0, t1, "runtime")
                      for c in cores)
        kernel = sum(tracer.busy_fraction(c, t0, t1, "kernel")
                     for c in cores)
        idle = sum(tracer.busy_fraction(c, t0, t1, "idle") for c in cores)
        n = len(cores)
        results[system_name] = {
            "strip": render_timeline(tracer, t0, t1, cores=cores, width=96),
            "app_fraction": app / n,
            "runtime_fraction": runtime / n,
            "kernel_fraction": kernel / n,
            "idle_fraction": idle / n,
        }
    return results


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    for system_name, data in results.items():
        print(f"== {system_name} ==")
        print(data["strip"])
        print()
    rows = [[name, round(d["app_fraction"], 3),
             round(d["runtime_fraction"], 3), round(d["kernel_fraction"], 3),
             round(d["idle_fraction"], 3)]
            for name, d in results.items()]
    print(format_table(["system", "app", "runtime", "kernel", "idle"], rows))
    print("paper Figure 7: VESSEL fills the cores with application work; "
          "Caladan's timeline shows spins, kernel switches, and gaps")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
