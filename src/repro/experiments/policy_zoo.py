"""Policy zoo: alternative scheduling policies over the VESSEL mechanism.

The mechanism/policy split (``repro.sched.policy``) means every policy
here runs over the *same* Uintr/call-gate switching and containment
machinery, with identical per-op costs — the comparison isolates pure
decision-making.  Two memcached instances (one nominated "hi", one "lo")
colocate with linpack; each policy trades their tails against BE
throughput differently:

* ``default``      — the paper's FIFO + rotation (the reference point);
* ``mlfq``         — backlogged threads sink to longer, cheaper slices;
* ``sjf``          — shortest request first (mean drops, tail risk);
* ``trust-group``  — core-scheduling cookies; forced idle on SMT
  siblings buys isolation with utilization;
* ``priority``     — mc-hi strictly first (mc-lo and the B-app absorb
  the congestion).

Run with ``python -m repro policies`` (``--smoke`` for the CI-sized
version).  Same seed ⇒ same table, per policy — determinism is a policy
contract, enforced by ``tests/sched/test_zoo.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

DEFAULT_LOAD = 0.75

#: (label, registry name, policy constructor kwargs)
ZOO = [
    ("default", "default", {}),
    ("mlfq", "mlfq", {}),
    ("sjf", "sjf", {}),
    ("trust-group", "trust-group", {}),
    ("priority", "priority", {"priorities": {"mc-hi": 1}}),
]


def smoke_config(seed: int = 42) -> ExperimentConfig:
    """The CI-sized profile: small but still exercises rotation,
    BE preemption, and queued (FIFO) placement for every policy."""
    return ExperimentConfig(num_workers=4, sim_ms=8, warmup_ms=2,
                            seed=seed)


def run(cfg: Optional[ExperimentConfig] = None,
        load: float = DEFAULT_LOAD) -> Dict:
    cfg = cfg or ExperimentConfig()
    # Split the offered load across the two instances so the pair
    # together drives the machine to ``load``.
    rate = load * l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS) / 2
    l_specs = [("memcached", "mc-hi", rate), ("memcached", "mc-lo", rate)]
    tasks = [(
        "vessel",
        cfg.scaled(policy=name, policy_params=params),
        dict(l_specs=l_specs, b_specs=("linpack",)),
    ) for _, name, params in ZOO]
    reports = run_colocation_batch(tasks, jobs=cfg.jobs)
    rows: List[Dict] = []
    for (label, _, _), report in zip(ZOO, reports):
        rows.append({
            "policy": label,
            "hi_p99_us": report.p99_us("mc-hi"),
            "hi_p999_us": report.p999_us("mc-hi"),
            "lo_p999_us": report.p999_us("mc-lo"),
            "be_cores": report.useful_ns.get("linpack", 0)
            / report.elapsed_ns,
            "idle_frac": report.buckets.get("idle", 0)
            / (report.elapsed_ns * report.num_worker_cores),
        })
    return {"rows": rows, "load": load}


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    print(f"Policy zoo (mc-hi + mc-lo + linpack at "
          f"{results['load']:.0%} combined load; same mechanism, "
          f"same costs)")
    rows = [[r["policy"], round(r["hi_p99_us"], 1),
             round(r["hi_p999_us"], 1), round(r["lo_p999_us"], 1),
             round(r["be_cores"], 3), round(r["idle_frac"], 3)]
            for r in results["rows"]]
    print(format_table(
        ["policy", "hi P99 us", "hi P999 us", "lo P999 us",
         "BE cores", "idle frac"], rows))
    return results


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro policies [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro policies",
        description="Compare scheduling policies over the VESSEL "
                    "mechanism.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (4 workers, 8 ms)")
    parser.add_argument("--scale", choices=["smoke", "paper"],
                        default="smoke",
                        help="profile for the non---smoke path")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = smoke_config(seed=args.seed)
    else:
        from repro.experiments.common import PAPER_PROFILE
        cfg = ExperimentConfig(seed=args.seed)
        if args.scale == "paper":
            cfg = cfg.scaled(**PAPER_PROFILE)
    cfg = cfg.scaled(jobs=max(1, args.jobs))
    main(cfg)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
