"""Chaos experiment: latency and reallocation throughput under faults.

Two questions the paper's happy-path evaluation never asks:

1. *Graceful degradation* — when the Uintr preemption path misbehaves
   (dropped or delayed notifications), does VESSEL's watchdog keep tail
   latency bounded by falling back to retries and kernel IPIs, and what
   does the degradation cost?  Caladan runs the same sweep as a control:
   its reallocation pipeline never uses Uintr, so injected Uintr faults
   cannot touch it — but its fault-free baseline is already paying the
   kernel-path price on every reallocation.

2. *Containment* — with all four fault classes injected at once (drops,
   a uThread crash, a rogue best-effort thread, a stalled scheduler
   core), does the system reclaim every resource and keep co-located
   uProcesses serving?  The run fails loudly (non-zero exit) if any
   fault escapes containment, which makes it usable as a CI smoke gate.

Usage::

    PYTHONPATH=src python -m repro chaos
    PYTHONPATH=src python -m repro chaos --op-breakdown
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS, US
from repro.hardware.machine import Machine
from repro.obs.ledger import OpLedger
from repro.faults import FaultInjector, FaultPlan
from repro.workloads.base import OpenLoopSource
from repro.workloads.linpack import linpack_app
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_l_app,
    parse_profile,
    system_factory,
)

#: Uintr drop probabilities swept in part 1
DROP_RATES = (0.0, 0.02, 0.05)
#: offered load for the latency app (Mops/s)
L_RATE_MOPS = 0.4


def run_chaos(cfg: ExperimentConfig, system_name: str,
              plan: Optional[FaultPlan] = None,
              containment: bool = True) -> Tuple:
    """One chaos run; returns (report, system, injector, ledger).

    Unlike ``run_colocation`` this always builds a real ledger — the
    fallback rate it reports comes from the ``fallback`` domain rows.
    """
    sim = Simulator()
    ledger = OpLedger(sim=sim)
    machine = Machine(sim, cfg.costs, cfg.num_workers + 1,
                      membus_gbps=cfg.membus_gbps, ledger=ledger)
    rngs = RngStreams(cfg.seed)
    workers = machine.cores[1:]
    factory = system_factory(system_name)
    kwargs = {}
    if system_name == "vessel":
        kwargs["containment"] = containment
    system = factory(sim, machine, rngs, worker_cores=workers, **kwargs)

    app, sampler = make_l_app("memcached", "memcached", rngs)
    system.add_app(app)
    source = OpenLoopSource(sim, app, system.submit, L_RATE_MOPS, sampler,
                            rngs.stream("arrivals/memcached"),
                            connections=cfg.connections_per_app)
    assert source is not None
    if system_name == "vessel":
        silo, silo_sampler = make_l_app("silo", "silo", rngs)
        system.add_app(silo)
        OpenLoopSource(sim, silo, system.submit, L_RATE_MOPS / 2,
                       silo_sampler, rngs.stream("arrivals/silo"),
                       connections=cfg.connections_per_app)
    system.add_app(linpack_app())

    system.start()
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        injector.attach(system)
    sim.at(cfg.warmup_ms * MS, system.begin_measurement)
    sim.run(until=cfg.sim_ms * MS)
    return system.report(), system, injector, ledger


def _fallback_rate(system) -> float:
    """Fraction of preemptions that needed the degraded path."""
    preempts = getattr(system, "preemptions", 0)
    fallbacks = (getattr(system, "fallback_retries", 0)
                 + getattr(system, "fallback_ipis", 0))
    if preempts <= 0:
        return 0.0
    return fallbacks / preempts


def _realloc_per_ms(system, report) -> float:
    """Core reallocations per simulated millisecond."""
    moves = (getattr(system, "preemptions", 0)
             + getattr(system, "rotations", 0)
             + getattr(system, "reallocations", 0))
    if report.elapsed_ns <= 0:
        return 0.0
    return moves * MS / report.elapsed_ns


def main(cfg: ExperimentConfig) -> None:
    # ---- part 1: Uintr fault-rate sweep, VESSEL vs Caladan ------------
    rows = []
    for system_name in ("vessel", "caladan"):
        for drop_p in DROP_RATES:
            plan = None
            if drop_p > 0.0:
                plan = FaultPlan(seed=cfg.seed).drop_uintr(
                    drop_p, at_ns=cfg.warmup_ms * MS)
            report, system, injector, ledger = run_chaos(
                cfg, system_name, plan=plan)
            lat = report.latency.get("memcached", {})
            rows.append([
                system_name,
                f"{drop_p:.2f}",
                f"{lat.get('p50_us', float('nan')):.1f}",
                f"{lat.get('p99_us', float('nan')):.1f}",
                report.completed.get("memcached", 0),
                f"{_realloc_per_ms(system, report):.1f}",
                f"{100.0 * _fallback_rate(system):.2f}%",
                injector.total_injected if injector else 0,
            ])
            if cfg.op_breakdown:
                print(f"\n[{system_name} drop={drop_p}] per-op breakdown")
                print(ledger.breakdown_table())
    print("\nUintr fault-rate sweep "
          f"(memcached @ {L_RATE_MOPS} Mops/s + linpack):")
    print(format_table(
        ["system", "drop_p", "p50_us", "p99_us", "completed",
         "realloc/ms", "fallback", "injected"],
        rows))
    print("(Caladan reallocates through kernel signals, so Uintr faults "
          "cannot touch it; VESSEL absorbs them via watchdog fallback.)")

    # ---- part 2: full chaos + containment audit -----------------------
    mid = (cfg.warmup_ms + (cfg.sim_ms - cfg.warmup_ms) // 3) * MS
    plan = (FaultPlan(seed=cfg.seed)
            .drop_uintr(0.05, at_ns=cfg.warmup_ms * MS)
            .delay_uintr(5 * US, probability=0.05,
                         at_ns=cfg.warmup_ms * MS)
            .crash("silo", at_ns=mid)
            .rogue_thread("linpack", at_ns=mid + 50 * US)
            .stall_scheduler(at_ns=mid + 100 * US))
    report, system, injector, ledger = run_chaos(cfg, "vessel", plan=plan)
    lat = report.latency.get("memcached", {})
    print("\nFull chaos on VESSEL (drops + crash + rogue + stall):")
    injected = {k.value: v for k, v in injector.injected.items() if v}
    print(f"  injected faults : {injected}")
    print(f"  fault ops       : {report.fault_ops}")
    print(f"  fallback ops    : {report.fallback_ops}")
    print(f"  memcached p50/p99: {lat.get('p50_us', float('nan')):.1f} / "
          f"{lat.get('p99_us', float('nan')):.1f} us  "
          f"(completed {report.completed.get('memcached', 0)})")
    print(f"  fallback rate   : {100.0 * _fallback_rate(system):.2f}% "
          f"of {system.preemptions} preemptions")
    if cfg.op_breakdown:
        print("\n[vessel full-chaos] per-op breakdown")
        print(ledger.breakdown_table())
    issues = injector.uncontained()
    if issues:
        for issue in issues:
            print(f"  UNCONTAINED: {issue}")
        raise RuntimeError(
            f"{len(issues)} fault(s) escaped containment")
    print(f"  containment     : all {injector.total_injected} injected "
          "faults contained, zero leaks")


if __name__ == "__main__":
    main(parse_profile())
