"""Sensitivity study: how cheap must switching be for VESSEL to win?

The paper's thesis is that sub-microsecond reallocation *enables* the
aggressive one-level policy.  This study scales every component of the
userspace switch path by a multiplier (1x = the real 0.16 µs up to
~48x ≈ Caladan's cooperative switch) and runs the same colocation under
VESSEL each time, against a stock-Caladan reference.  Two crossovers
fall out:

* efficiency: the load-weighted scheduling waste overtakes Caladan's
  once the switch costs a few microseconds — the one-level policy
  switches ~10x more often, so it must be ~10x cheaper to break even;
* latency: VESSEL's P999 stays below Caladan's much longer, because even
  an expensive direct switch beats the 10 µs allocation tick.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hardware.timing import CostModel
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

DEFAULT_MULTIPLIERS = (1, 4, 8, 16, 32, 48)
DEFAULT_LOAD = 0.5


def scaled_switch_costs(base: CostModel, multiplier: float) -> CostModel:
    """Scale every component of the userspace switch path."""
    return base.copy(
        uctx_save_ns=int(base.uctx_save_ns * multiplier),
        uctx_restore_ns=int(base.uctx_restore_ns * multiplier),
        callgate_enter_ns=int(base.callgate_enter_ns * multiplier),
        callgate_exit_ns=int(base.callgate_exit_ns * multiplier),
        runtime_queue_ns=int(base.runtime_queue_ns * multiplier),
        uintr_send_ns=int(base.uintr_send_ns * multiplier),
        uintr_deliver_ns=int(base.uintr_deliver_ns * multiplier),
        uiret_ns=int(base.uiret_ns * multiplier),
    )


def run(cfg: Optional[ExperimentConfig] = None,
        multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
        load: float = DEFAULT_LOAD) -> Dict:
    cfg = cfg or ExperimentConfig()
    rate = load * l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)

    reference = run_colocation("caladan", cfg,
                               l_specs=[("memcached", "memcached", rate)],
                               b_specs=("linpack",))
    rows: List[Dict] = []
    for multiplier in multipliers:
        variant = cfg.scaled(costs=scaled_switch_costs(cfg.costs,
                                                       multiplier))
        report = run_colocation("vessel", variant,
                                l_specs=[("memcached", "memcached", rate)],
                                b_specs=("linpack",))
        rows.append({
            "multiplier": multiplier,
            "switch_us": variant.costs.vessel_park_switch_ns() / 1000.0,
            "waste": report.waste_fraction(),
            "p999_us": report.p999_us("memcached"),
        })

    caladan_waste = reference.waste_fraction()
    caladan_p999 = reference.p999_us("memcached")
    efficiency_crossover = next(
        (r["switch_us"] for r in rows if r["waste"] >= caladan_waste),
        None)
    latency_crossover = next(
        (r["switch_us"] for r in rows if r["p999_us"] >= caladan_p999),
        None)
    return {
        "rows": rows,
        "caladan_waste": caladan_waste,
        "caladan_p999_us": caladan_p999,
        "efficiency_crossover_us": efficiency_crossover,
        "latency_crossover_us": latency_crossover,
        "load": load,
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[r["multiplier"], round(r["switch_us"], 2),
             f"{r['waste']:.1%}", round(r["p999_us"], 1)]
            for r in results["rows"]]
    print(f"Switch-cost sensitivity (memcached+linpack at "
          f"{results['load']:.0%} load)")
    print(format_table(["cost x", "park switch us", "VESSEL waste",
                        "VESSEL P999 us"], rows))
    print(f"\nstock Caladan reference: waste "
          f"{results['caladan_waste']:.1%}, "
          f"P999 {results['caladan_p999_us']:.1f} us")
    eff = results["efficiency_crossover_us"]
    lat = results["latency_crossover_us"]
    print(f"efficiency crossover: VESSEL's waste reaches Caladan's at a "
          f"~{eff:.1f} us switch" if eff else
          "efficiency crossover: not reached in this range")
    print(f"latency crossover: VESSEL's P999 reaches Caladan's at a "
          f"~{lat:.1f} us switch" if lat else
          "latency crossover: not reached in this range "
          "(even expensive direct switches beat the 10 us tick)")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
