"""Figure 9: colocating an L-app and a B-app across all systems (§6.2.1).

Top row: memcached + Linpack; bottom row: Silo (TPC-C) + Linpack.  For
each system and L-app load we report the total normalized throughput
(footnote-1 formula), the B-app's normalized throughput, and the L-app's
P999 latency.

Paper's headline observations this experiment reproduces:

* VESSEL's total normalized throughput is almost flat (-6.6% on average)
  while Caladan declines 16.1% on average / 32.1% at most;
* VESSEL's P999 is well below every Caladan variant; DR-H approaches
  VESSEL's efficiency but pays ~79% higher P999;
* Arachne collapses beyond ~1 Mops; CFS keeps decent total throughput
  but its L-app latency explodes past 10 ms;
* with Silo (20-280 µs requests) Caladan and VESSEL both approach the
  ideal — reallocation costs amortize over long requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    normalized_total,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS
from repro.workloads.silo import SILO_MEDIAN_SERVICE_NS, SILO_SIGMA
import math

SILO_MEAN_SERVICE_NS = SILO_MEDIAN_SERVICE_NS * math.exp(SILO_SIGMA ** 2 / 2)

DEFAULT_SYSTEMS = ("vessel", "caladan", "caladan-dr-l", "caladan-dr-h")
#: Arachne and CFS are only driven to low loads, as in the paper
#: (absolute Mops: the paper stops at ~1 Mops for Arachne, 0.3 for CFS,
#: because both collapse there regardless of machine size)
LOW_LOAD_SYSTEMS = ("arachne", "linux-cfs")
DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)
LOW_LOAD_MOPS = (0.5, 1.2)


def _sweep(cfg: ExperimentConfig, l_kind: str, mean_service_ns: float,
           systems: Sequence[str], loads: Sequence[float]) -> List[Dict]:
    capacity = l_capacity_mops(cfg, mean_service_ns)
    points = [(system, load) for system in systems for load in loads]
    # Every (system, load) point is an independent hermetic simulation,
    # so the sweep fans out over cfg.jobs worker processes; reports come
    # back in point order, keeping rows (and stdout) byte-identical to
    # the serial loop.
    reports = run_colocation_batch(
        [(system, cfg, dict(l_specs=[(l_kind, l_kind, load * capacity)],
                            b_specs=("linpack",)))
         for system, load in points],
        jobs=cfg.jobs)
    rows = []
    for (system, load), report in zip(points, reports):
        rows.append({
            "system": system,
            "load": load,
            "rate_mops": load * capacity,
            "l_tput_mops": report.throughput_mops(l_kind),
            "total_normalized": normalized_total(
                report, cfg, {l_kind: mean_service_ns}),
            "b_normalized": report.useful_ns.get("linpack", 0)
            / (report.elapsed_ns * report.num_worker_cores),
            "p999_us": report.p999_us(l_kind),
        })
    return rows


def run(cfg: Optional[ExperimentConfig] = None,
        systems: Sequence[str] = DEFAULT_SYSTEMS,
        loads: Sequence[float] = DEFAULT_LOADS,
        include_slow_systems: bool = True,
        include_silo: bool = True) -> Dict:
    cfg = cfg or ExperimentConfig()
    results: Dict = {"memcached": _sweep(cfg, "memcached",
                                         MEMCACHED_MEAN_SERVICE_NS,
                                         systems, loads)}
    if include_slow_systems:
        capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
        low_loads = tuple(mops / capacity for mops in LOW_LOAD_MOPS)
        results["memcached"] += _sweep(cfg, "memcached",
                                       MEMCACHED_MEAN_SERVICE_NS,
                                       LOW_LOAD_SYSTEMS, low_loads)
    if include_silo:
        results["silo"] = _sweep(cfg, "silo", SILO_MEAN_SERVICE_NS,
                                 systems, loads)
    # Summary statistics matching the paper's prose.
    summary = {}
    for system in systems:
        declines = [1.0 - r["total_normalized"]
                    for r in results["memcached"] if r["system"] == system]
        summary[system] = {
            "avg_decline": sum(declines) / len(declines),
            "max_decline": max(declines),
        }
    results["summary"] = summary
    return results


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    for workload in ("memcached", "silo"):
        if workload not in results:
            continue
        rows = [[r["system"], r["load"], round(r["rate_mops"], 2),
                 round(r["l_tput_mops"], 2), round(r["total_normalized"], 3),
                 round(r["b_normalized"], 3), round(r["p999_us"], 1)]
                for r in results[workload]]
        print(f"Figure 9 ({workload} + Linpack)")
        print(format_table(
            ["system", "load", "offered Mops", "L tput", "total norm",
             "B norm", "P999 us"], rows))
        print()
    print("average decline in total normalized throughput "
          "(paper: VESSEL 6.6%, Caladan 16.1% avg / 32.1% max):")
    for system, stats in results["summary"].items():
        print(f"  {system:14s} avg {stats['avg_decline']:.1%}  "
              f"max {stats['max_decline']:.1%}")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
