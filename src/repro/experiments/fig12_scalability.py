"""Figure 12: CPU core scalability (§6.3.3).

Goodput = the highest throughput a system sustains within a P999 limit
of 60 µs, as the number of managed cores grows.  The binding constraint
is the *control plane*: one VESSEL scheduler pass costs
``vessel_sched_per_core_ns`` per managed core, so past ~42 cores the
scan interval stretches and reaction latency rises; Caladan's IOKernel
pays ~12x more per core (it also forwards packets), so it stops scaling
at ~34 cores.

Paper: VESSEL's goodput rises ~25.4% from 32 to 42 cores and the gain
drops back to ~22.8% at 44; Caladan gains only ~1.45% from 32 to 34 and
declines beyond.

This is by far the heaviest experiment; the default (smoke) profile uses
short windows and a coarse load grid, so goodput values are quantized to
the grid.  It is also the headline beneficiary of ``--fluid on``: every
grid cell here is fluid-eligible (single memcached L-app, linpack batch,
no fabric), so the whole sweep runs through the analytic fast-forward —
several times faster at the cost of approximate tails (the tolerance is
pinned by ``python -m repro fluidcheck``; see docs/SIMULATION.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

P999_LIMIT_US = 60.0
DEFAULT_VESSEL_CORES = (32, 42, 44)
DEFAULT_CALADAN_CORES = (32, 34, 36)
DEFAULT_LOADS = (0.2, 0.3, 0.45, 0.6, 0.75)


def goodput_from_reports(rates: Sequence[float], reports: Sequence) -> Dict:
    """Highest sustained throughput within the P999 limit on this grid."""
    best = 0.0
    best_p999 = float("nan")
    for rate, report in zip(rates, reports):
        p999 = report.p999_us("memcached")
        tput = report.throughput_mops("memcached")
        # Must sustain the offered load AND meet the SLO.
        if p999 <= P999_LIMIT_US and tput >= 0.95 * rate and tput > best:
            best = tput
            best_p999 = p999
    return {"goodput_mops": best, "p999_us": best_p999}


def run(cfg: Optional[ExperimentConfig] = None,
        vessel_cores: Sequence[int] = DEFAULT_VESSEL_CORES,
        caladan_cores: Sequence[int] = DEFAULT_CALADAN_CORES,
        loads: Sequence[float] = DEFAULT_LOADS) -> Dict:
    base = cfg or ExperimentConfig(sim_ms=6, warmup_ms=2)
    # Bursty clients (as in the paper's dense/bursty setups): reaction
    # latency to burst onsets is what the control plane limits.
    base = base.scaled(bursty=True)
    # Every (system, cores, load) cell is independent, so the whole grid
    # fans out at once; goodput is then folded per (system, cores) curve
    # in the original load order.
    grid: List[Dict] = []
    tasks = []
    for system, counts in (("vessel", vessel_cores),
                           ("caladan", caladan_cores)):
        for cores in counts:
            scaled = base.scaled(num_workers=cores)
            capacity = l_capacity_mops(scaled, MEMCACHED_MEAN_SERVICE_NS)
            rates = [load * capacity for load in loads]
            grid.append({"system": system, "cores": cores, "rates": rates})
            tasks.extend(
                (system, scaled,
                 dict(l_specs=[("memcached", "memcached", rate)],
                      b_specs=("linpack",)))
                for rate in rates)
    reports = run_colocation_batch(tasks, jobs=base.jobs)
    points: List[Dict] = []
    offset = 0
    for cell in grid:
        rates = cell.pop("rates")
        cell_reports = reports[offset:offset + len(rates)]
        offset += len(rates)
        points.append({**cell, **goodput_from_reports(rates, cell_reports)})
    gains = {}
    for system in ("vessel", "caladan"):
        series = [p for p in points if p["system"] == system]
        baseline = series[0]["goodput_mops"]
        for p in series:
            p["gain_vs_first"] = (p["goodput_mops"] / baseline - 1.0
                                  if baseline > 0 else float("nan"))
        gains[system] = {p["cores"]: p["gain_vs_first"] for p in series}
    return {"points": points, "gains": gains,
            "p999_limit_us": P999_LIMIT_US}


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[p["system"], p["cores"], round(p["goodput_mops"], 2),
             round(p["p999_us"], 1), f"{p['gain_vs_first']:+.1%}"]
            for p in results["points"]]
    print(f"Figure 12: goodput at P999 <= {results['p999_limit_us']:.0f} us "
          f"vs managed cores")
    print(format_table(["system", "cores", "goodput Mops", "P999 us",
                        "gain vs fewest"], rows))
    print("paper: VESSEL +25.4% from 32 to 42 cores (dips at 44); "
          "Caladan +1.45% from 32 to 34, declining beyond")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    cfg = parse_profile()
    main(cfg.scaled(sim_ms=6, warmup_ms=2))
