"""Fleet experiment: N servers behind a balancer, three LB policies.

Every server colocates memcached with a membench tenant on a
deliberately narrow memory bus (the Figure-13 interference channel
turned up): while best-effort work streams, latency requests starting
in that window run several times slower.  That gives the fleet two
distinct failure modes — *overload* (a server offered more than its
capacity) and *interference* (best-effort streaming fattening the
tail) — and the front-end arms differ in which one they can fix.

Part A — **hot-key skew**.  ``hot_fraction`` of the load sits on a few
key classes; the placement policy decides which servers eat it:

* round-robin balances batch *counts* and is blind to weights — the
  server that drew the hot classes saturates, requests time out and
  retransmit, the cluster p99 explodes;
* consistent-hash pins every key class to its ring successor — same
  story, and no feedback can ever move a hot key off the hot arc;
* least-loaded starts from the round-robin deal but migrates batches
  away from (stale) queue buildup — the fleet re-levels and p99 falls
  back to the interference floor;
* least-loaded + the fleet **coordinator** also harvests best-effort
  cores on servers whose modeled utilization runs hot, buying the
  latency tier its memory bus back — the interference floor itself
  drops.  Migration fixes overload; harvesting fixes interference;
  the combined arm needs both to beat the others.

Part B — **fleet capacity at SLO**.  A uniform population under
least-loaded, offered-load sweep, VESSEL fleet vs Caladan fleet: the
highest load at which cluster p99 stays within the SLO *at every step
up to it*.  VESSEL's Uintr preemption evicts best-effort work the
instant a request arrives, so its colocated p99 rides near the
no-interference floor; Caladan pays its core-allocation granularity
on every interference window and its colocated floor sits above the
SLO outright.

Part C — **determinism**.  ``--smoke`` reruns one arm with the fleet
fanned out over 2 worker processes and requires byte-identical merged
fingerprints (the ``--jobs`` contract of the whole repo, extended
across servers).

Usage::

    PYTHONPATH=src python -m repro cluster            # full fleet
    PYTHONPATH=src python -m repro cluster --smoke    # CI-sized + gates
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.cluster import ClusterReport
from repro.experiments.common import ExperimentConfig, format_table

#: cluster-wide client-observed p99 budget.  Deliberately tight — a
#: handful of mean service times over the ~3 us network floor — so it
#: separates the systems' *colocated* latency floors, not just their
#: saturation knees (which coincide at smoke scale).
SLO_P99_US = 15.0

#: the narrow shared memory bus (GB/s) and how hard best-effort
#: streaming inflates latency service times while it saturates
BUS_GBPS = 14.0
BUS_SENSITIVITY = 16.0

#: Part A skew arms: (label, lb_policy, coordinator)
SKEW_ARMS: List[Tuple[str, str, bool]] = [
    ("round-robin", "round-robin", False),
    ("consistent-hash", "consistent-hash", False),
    ("least-loaded", "least-loaded", False),
    ("ll+coordinator", "least-loaded", True),
]

#: Part B sweep: offered load as a fraction of fleet nominal capacity
SWEEP_LOADS = (0.75, 0.83, 0.90)
SWEEP_SYSTEMS = ("vessel", "caladan")


def base_cluster(cfg: ExperimentConfig, **overrides) -> ClusterConfig:
    """The experiment's fleet shape (shared by every arm)."""
    params = dict(
        num_servers=4,
        batches=32,
        connections=2_000_000,
        hot_fraction=0.60,
        hot_batches=3,
        load_fraction=0.65,
        epoch_ms=0.25,
        staleness_epochs=1,
        migrate_per_epoch=2,
        bus_sensitivity=BUS_SENSITIVITY,
        harvest_util=0.65,
        interference_capacity=0.72,
    )
    params.update(overrides)
    return ClusterConfig(**params)


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = (cfg or ExperimentConfig()).scaled(membus_gbps=BUS_GBPS)
    skew_arms: List[Tuple[str, ClusterReport]] = []
    for label, lb_policy, coordinator in SKEW_ARMS:
        cluster = base_cluster(cfg, lb_policy=lb_policy,
                               coordinator=coordinator)
        report = Cluster("vessel", cfg, cluster).run(jobs=cfg.jobs)
        skew_arms.append((label, report))

    sweep: List[Tuple[str, float, ClusterReport]] = []
    for system in SWEEP_SYSTEMS:
        for load in SWEEP_LOADS:
            cluster = base_cluster(cfg, lb_policy="least-loaded",
                                   hot_fraction=0.0,
                                   load_fraction=load)
            report = Cluster(system, cfg, cluster).run(jobs=cfg.jobs)
            sweep.append((system, load, report))
    return {"skew_arms": skew_arms, "sweep": sweep}


def sustained_load(results: Dict, system: str) -> float:
    """Highest swept load the fleet served within the p99 SLO at every
    step up to and including it (monotone closure from the bottom, so
    a mid-sweep miss is never papered over by a lucky higher point)."""
    best = 0.0
    for sys_name, load, report in results["sweep"]:
        if sys_name != system:
            continue
        if report.p99_us() > SLO_P99_US:
            break
        best = max(best, load)
    return best


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    results = run(cfg)

    first = results["skew_arms"][0][1]
    plan = first.plan
    connections = sum(b.connections for b in plan.batches)
    print(f"Fleet: {first.cluster.num_servers} servers x "
          f"{cfg.num_workers} workers, {connections:,} modeled "
          f"connections in {len(plan.batches)} batches, "
          f"{first.cluster.hot_fraction:.0%} of "
          f"{plan.total_rate_mops:.1f} Mops/s on "
          f"{first.cluster.hot_batches} hot key classes, "
          f"membench colocated on a {BUS_GBPS:.0f} GB/s bus")
    rows: List[List] = []
    for label, report in results["skew_arms"]:
        ops = report.net_ops.get("mc", {})
        stats = report.plan.coordinator_stats
        rows.append([
            label,
            round(report.p99_us(), 1),
            round(max(report.per_server_p99_us.get("mc", [0.0])), 1),
            round(report.plan.hottest_initial, 3),
            round(report.plan.hottest_final, 3),
            len(report.plan.migrations),
            stats.get("harvests", 0),
            report.completed.get("mc", 0),
            ops.get("losses", 0),
            round(report.useful_ns.get("membench", 0) / 1e6, 1),
        ])
    print(format_table(
        ["arm", "P99 us", "worst srv", "hot share", "-> final",
         "migr", "harvest", "done", "lost", "BE ms"], rows))
    print("(count-balanced and hash-pinned placements leave one server "
          "overloaded; migration re-levels the fleet; harvesting then "
          "buys back the interference floor — at the BE ms cost shown)")

    print(f"\nFleet capacity at SLO (p99 <= {SLO_P99_US:.0f} us), "
          f"uniform population, least-loaded front-end:")
    rows = []
    for system, load, report in results["sweep"]:
        rows.append([
            system, load,
            round(report.p99_us(), 1),
            round(report.throughput_mops(), 2),
            report.net_ops.get("mc", {}).get("losses", 0),
            "ok" if report.p99_us() <= SLO_P99_US else "MISS",
        ])
    print(format_table(
        ["system", "load", "P99 us", "Mops", "lost", "SLO"], rows))
    for system in SWEEP_SYSTEMS:
        floor = min(report.p99_us()
                    for sys_name, _, report in results["sweep"]
                    if sys_name == system)
        print(f"  {system}: sustains "
              f"{sustained_load(results, system):.2f} of fleet nominal "
              f"capacity (best colocated p99 {floor:.1f} us)")
    return results


def _fingerprint(results: Dict) -> str:
    return repr([(label, report.fingerprint())
                 for label, report in results["skew_arms"]]
                + [(system, load, report.fingerprint())
                   for system, load, report in results["sweep"]])


def smoke_config(seed: int = 42, jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(num_workers=4, sim_ms=6, warmup_ms=2,
                            seed=seed, jobs=jobs)


def _gate(ok: bool, message: str, failures: List[str]) -> None:
    print(("PASS " if ok else "FAIL ") + message)
    if not ok:
        failures.append(message)


def check_gates(results: Dict) -> List[str]:
    failures: List[str] = []
    p99 = {label: report.p99_us()
           for label, report in results["skew_arms"]}
    _gate(p99["least-loaded"] < p99["round-robin"],
          f"least-loaded beats round-robin under skew "
          f"({p99['least-loaded']:.1f} < {p99['round-robin']:.1f} us)",
          failures)
    _gate(p99["ll+coordinator"] < p99["round-robin"],
          f"coordinator arm beats round-robin under skew "
          f"({p99['ll+coordinator']:.1f} < {p99['round-robin']:.1f} us)",
          failures)
    _gate(p99["ll+coordinator"] < p99["least-loaded"],
          f"harvesting beats migration alone "
          f"({p99['ll+coordinator']:.1f} < {p99['least-loaded']:.1f} us)",
          failures)
    vessel = sustained_load(results, "vessel")
    caladan = sustained_load(results, "caladan")
    _gate(vessel > caladan,
          f"VESSEL fleet sustains more load at SLO "
          f"({vessel:.2f} > {caladan:.2f})", failures)
    return failures


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro cluster [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Multi-server fleet behind a load balancer: "
                    "LB policies under hot-key skew, fleet capacity "
                    "at SLO, byte-identical --jobs fan-out.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run + skew/capacity/determinism "
                             "gates")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = smoke_config(seed=args.seed, jobs=max(1, args.jobs))
    else:
        cfg = ExperimentConfig(num_workers=8, sim_ms=16, warmup_ms=4,
                               seed=args.seed, jobs=max(1, args.jobs))
    results = main(cfg)
    if args.smoke:
        print("\n[cluster --smoke] gates:")
        failures = check_gates(results)
        # Part C: the same fleet, servers sharded two ways, must merge
        # to the same bytes.
        gate_cfg = cfg.scaled(membus_gbps=BUS_GBPS)
        serial = Cluster("vessel", gate_cfg,
                         base_cluster(gate_cfg, lb_policy="round-robin")) \
            .run(jobs=1).fingerprint()
        fanned = Cluster("vessel", gate_cfg,
                         base_cluster(gate_cfg, lb_policy="round-robin")) \
            .run(jobs=2).fingerprint()
        _gate(serial == fanned,
              "--jobs 2 fleet merge byte-identical to serial", failures)
        if failures:
            raise RuntimeError(
                f"cluster smoke gates failed: {failures}")
        print("[cluster --smoke] all gates passed")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
