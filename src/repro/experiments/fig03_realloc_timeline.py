"""Figure 3: the timeline of core reallocation with Caladan.

The paper's breakdown: the scheduler issues an ioctl, the kernel IPIs the
victim core, the victim traps and receives a SIGUSR so its runtime saves
state, the kernel switches page tables and task structures, and the core
restores into the new application — 5.3 µs on average, during which the
core runs no application work.

The experiment executes the pipeline on a simulated core and reports the
per-phase cumulative timeline plus where the time is accounted.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import Simulator
from repro.hardware.machine import Machine
from repro.kernel.kschedule import KernelReallocPipeline
from repro.experiments.common import ExperimentConfig, format_table

PAPER_TOTAL_US = 5.3


def run(cfg: ExperimentConfig = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 1)
    pipeline = KernelReallocPipeline(cfg.costs)
    done_at = []
    pipeline.run(machine.cores[0], lambda: done_at.append(sim.now))
    sim.run()
    machine.cores[0].settle()

    phases = pipeline.phases()
    timeline = []
    cursor = 0
    for phase in phases:
        timeline.append({
            "phase": phase.name,
            "start_us": cursor / 1000.0,
            "duration_us": phase.duration_ns / 1000.0,
            "category": phase.category,
        })
        cursor += phase.duration_ns
    return {
        "timeline": timeline,
        "measured_total_us": done_at[0] / 1000.0,
        "paper_total_us": PAPER_TOTAL_US,
        "accounting": dict(machine.cores[0].acct.buckets),
    }


def main(cfg: ExperimentConfig = None) -> Dict:
    results = run(cfg)
    rows = [[p["phase"], round(p["start_us"], 2), round(p["duration_us"], 2),
             p["category"]] for p in results["timeline"]]
    print("Figure 3: Caladan core-reallocation timeline")
    print(format_table(["phase", "start (us)", "duration (us)", "charged to"],
                       rows))
    print(f"total: measured {results['measured_total_us']:.2f} us, "
          f"paper {results['paper_total_us']:.2f} us")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
