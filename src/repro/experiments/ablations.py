"""Ablations: which part of VESSEL buys what (DESIGN.md §7).

The paper's design couples a *mechanism* (userspace switches via MPK +
Uintr) with a *policy* (one-level global scheduling).  Because every
nanosecond flows through one :class:`CostModel`, we can cross both axes:

* ``vessel``                — full system (mechanism + policy);
* ``vessel-no-uintr``       — one-level policy, but preemption goes
  through kernel IPIs + signals (MPK alone, no Uintr);
* ``vessel-kernel-switch``  — one-level policy over kernel-priced
  switches (policy alone, no uProcess mechanism);
* ``caladan``               — two-level policy over kernel switches;
* ``caladan-fast-switch``   — two-level policy over uProcess-priced
  switches (mechanism alone, conservative policy kept).

Also quantifies the §4.2 call-gate defense cost (stack switch + PKRU
recheck) on the park-switch path, and sweeps the scheduler's two
quantum knobs (BE rotation quantum, §4.4 long-request preemption
threshold) now that they are policy parameters rather than module
constants — ``vessel-q5us`` / ``vessel-q80us`` bracket the stock 20 µs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.timing import CostModel
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

DEFAULT_LOAD = 0.5


def _no_uintr_costs(base: CostModel) -> CostModel:
    """Preemption falls back to kernel IPI + signal delivery."""
    return base.copy(
        uintr_send_ns=base.syscall_ns,          # trap to request the IPI
        uintr_deliver_ns=base.ipi_deliver_ns + base.signal_deliver_ns,
        uiret_ns=base.syscall_ns,               # sigreturn
    )


def _kernel_switch_costs(base: CostModel) -> CostModel:
    """Every 'userspace' switch priced like a kernel context switch."""
    return base.copy(
        uctx_save_ns=300,
        uctx_restore_ns=300,
        callgate_enter_ns=base.syscall_ns,
        callgate_exit_ns=base.syscall_ns,
        runtime_queue_ns=base.kernel_ctx_switch_ns,
    )


def _fast_caladan_costs(base: CostModel) -> CostModel:
    """Caladan's transitions priced like uProcess switches."""
    park = base.vessel_park_switch_ns()
    preempt = base.vessel_preempt_switch_ns()
    return base.copy(
        caladan_park_yield_ns=max(1, park // 4),
        caladan_park_switch_ns=park - max(1, park // 4),
        caladan_ioctl_ns=preempt // 6, caladan_ipi_ns=preempt // 6,
        caladan_trap_sigusr_ns=preempt // 6,
        caladan_user_save_ns=preempt // 6,
        caladan_kernel_switch_ns=preempt // 6,
        caladan_restore_ns=preempt - 5 * (preempt // 6),
    )


VARIANTS = {
    "vessel": ("vessel", lambda c: c),
    "vessel-no-uintr": ("vessel", _no_uintr_costs),
    "vessel-kernel-switch": ("vessel", _kernel_switch_costs),
    "caladan": ("caladan", lambda c: c),
    "caladan-fast-switch": ("caladan", _fast_caladan_costs),
}

#: rotation/long-request quantum sweep (µs); the stock value is 20
QUANTUM_SWEEP_US = (5, 20, 80)


def run(cfg: Optional[ExperimentConfig] = None,
        load: float = DEFAULT_LOAD) -> Dict:
    cfg = cfg or ExperimentConfig()
    rate = load * l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    rows: List[Dict] = []
    for label, (system, transform) in VARIANTS.items():
        variant_cfg = cfg.scaled(costs=transform(cfg.costs))
        report = run_colocation(system, variant_cfg,
                                l_specs=[("memcached", "memcached", rate)],
                                b_specs=("linpack",))
        rows.append({
            "variant": label,
            "app_fraction": report.app_fraction(),
            "waste_fraction": report.waste_fraction(),
            "p999_us": report.p999_us("memcached"),
        })
    # Quantum sweep: rotation only fires when run queues form, so this
    # uses the dense shape (4 L-apps on 2 cores, no B-app).  Short
    # quanta buy fairness with switch overhead; 20 µs is the stock
    # default, 5/80 bracket it.
    for quantum_us in QUANTUM_SWEEP_US:
        quantum_ns = quantum_us * 1_000
        variant_cfg = cfg.scaled(num_workers=2, policy="default",
                                 policy_params={
                                     "rotation_quantum_ns": quantum_ns,
                                     "l_preempt_quantum_ns": quantum_ns,
                                 })
        report = run_colocation(
            "vessel", variant_cfg,
            l_specs=[("memcached", f"mc{i}", 0.7) for i in range(4)],
            b_specs=())
        rows.append({
            "variant": f"vessel-q{quantum_us}us",
            "app_fraction": report.app_fraction(),
            "waste_fraction": report.waste_fraction(),
            "p999_us": report.p999_us("mc0"),
        })
    gate = gate_defense_costs(cfg.costs)
    return {"rows": rows, "gate_defense": gate, "load": load}


def gate_defense_costs(costs: CostModel) -> Dict[str, int]:
    """Park-switch cost with the §4.2 defenses individually removed."""
    full = costs.vessel_park_switch_ns()
    no_recheck = costs.copy(callgate_exit_ns=costs.wrpkru_ns)
    no_stack_switch = costs.copy(
        callgate_enter_ns=costs.wrpkru_ns + 5)  # no stack swap, no vector
    bare = costs.copy(callgate_exit_ns=costs.wrpkru_ns,
                      callgate_enter_ns=costs.wrpkru_ns + 5)
    return {
        "full_defenses_ns": full,
        "no_pkru_recheck_ns": no_recheck.vessel_park_switch_ns(),
        "no_stack_switch_ns": no_stack_switch.vessel_park_switch_ns(),
        "no_defenses_ns": bare.vessel_park_switch_ns(),
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[r["variant"], round(r["app_fraction"], 3),
             round(r["waste_fraction"], 3), round(r["p999_us"], 1)]
            for r in results["rows"]]
    print(f"Ablations (memcached+linpack at {results['load']:.0%} load; "
          f"vessel-qNus rows sweep the rotation/long-request quanta over "
          f"the dense 4-apps-on-2-cores shape)")
    print(format_table(["variant", "app fraction", "waste", "P999 us"],
                       rows))
    gate = results["gate_defense"]
    print("\ncall-gate defense cost on the park switch:")
    for key, value in gate.items():
        print(f"  {key:22s} {value} ns")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
