"""Figure 11: cache friendliness (§6.3.2).

Two single-threaded object-copy applications timeshare one core.  Under
VESSEL both live in one SMAS, so the manager's allocator places their
working sets in *disjoint* address ranges — they occupy disjoint cache
sets and survive each other's timeslices.  Under Caladan each app is a
separate kProcess: the same virtual working set maps to arbitrary
physical pages, so the two working sets alias pseudo-randomly in the
physically-indexed cache and evict each other.

Paper numbers: miss rate 4.6% -> ~0.0415%; VESSEL completion time 6-24%
lower.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.hardware.cache import CacheSim
from repro.workloads.objcopy import ObjCopyApp
from repro.experiments.common import ExperimentConfig, format_table

CACHE_BYTES = 2 << 20
CACHE_WAYS = 16
LINE_BYTES = 64
PAGE_BYTES = 4096
WS_BYTES = 832 << 10           # per-app working set (two fit in the cache)
OPS_PER_SLICE = 40             # ops between context switches
TOTAL_OPS = 60_000

PAPER_CALADAN_MISS = 0.046
PAPER_VESSEL_MISS = 0.000415


def _random_page_mapping(ws_base: int, ws_size: int, rng: random.Random,
                         phys_space: int = 1 << 34):
    """Per-page pseudo-random physical placement (separate kProcess)."""
    pages = ws_size // PAGE_BYTES
    mapping = {i: rng.randrange(phys_space // PAGE_BYTES)
               for i in range(pages)}

    def translate(addr: int) -> int:
        offset = addr - ws_base
        page, rest = divmod(offset, PAGE_BYTES)
        return mapping[page] * PAGE_BYTES + rest

    return translate


def _identity(addr: int) -> int:
    return addr


def _run_mode(mode: str, cfg: ExperimentConfig, total_ops: int,
              rng: random.Random) -> Dict:
    cache = CacheSim(CACHE_BYTES, ways=CACHE_WAYS, line_bytes=LINE_BYTES)
    costs = cfg.costs
    if mode == "vessel":
        # One SMAS: the two uProcess regions are disjoint ranges.
        bases = [0x1000_0000, 0x1000_0000 + WS_BYTES]
        translate = [_identity, _identity]
        switch_ns = costs.vessel_park_switch_ns()
    else:
        # Two kProcesses: same virtual layout, random physical pages.
        bases = [0x1000_0000, 0x1000_0000]
        translate = [
            _random_page_mapping(0x1000_0000, WS_BYTES, rng),
            _random_page_mapping(0x1000_0000, WS_BYTES, rng),
        ]
        switch_ns = (costs.caladan_park_yield_ns
                     + costs.caladan_park_switch_ns)

    apps = [ObjCopyApp(f"{mode}-app{i}", bases[i], WS_BYTES)
            for i in range(2)]

    class _TranslatingCache:
        """Applies the app's address translation before the cache."""

        def __init__(self, index: int) -> None:
            self.index = index

        def access_range(self, start: int, length: int, tag: str) -> int:
            misses = 0
            first = start // LINE_BYTES
            last = (start + length - 1) // LINE_BYTES
            fn = translate[self.index]
            for line in range(first, last + 1):
                phys = fn(line * LINE_BYTES)
                if not cache.access(phys, tag):
                    misses += 1
            return misses

    views = [_TranslatingCache(0), _TranslatingCache(1)]

    def phase(ops: int) -> int:
        nonlocal current
        elapsed = 0
        done = 0
        while done < ops:
            for _ in range(OPS_PER_SLICE):
                duration, _misses = apps[current].run_op(views[current], rng)
                elapsed += duration
                done += 1
                if done >= ops:
                    break
            elapsed += switch_ns
            current = 1 - current
        return elapsed

    current = 0
    # Warmup: fill the cache so cold (compulsory) misses don't pollute
    # the steady-state miss rate the paper reports.
    phase(total_ops // 2)
    cache.stats.hits = 0
    cache.stats.misses = 0
    cache.stats.by_tag.clear()
    elapsed_ns = phase(total_ops)

    return {
        "miss_rate": cache.stats.miss_rate(),
        "completion_ms": elapsed_ns / 1e6,
        "mean_op_ns": elapsed_ns / total_ops,
    }


def run(cfg: Optional[ExperimentConfig] = None,
        total_ops: int = TOTAL_OPS) -> Dict:
    cfg = cfg or ExperimentConfig()
    rng = random.Random(cfg.seed)
    vessel = _run_mode("vessel", cfg, total_ops, rng)
    caladan = _run_mode("caladan", cfg, total_ops, rng)
    return {
        "vessel": vessel,
        "caladan": caladan,
        "completion_reduction": 1.0 - (vessel["completion_ms"]
                                       / caladan["completion_ms"]),
        "paper": {"caladan_miss": PAPER_CALADAN_MISS,
                  "vessel_miss": PAPER_VESSEL_MISS,
                  "completion_reduction": "6-24%"},
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [
        ["vessel", f"{results['vessel']['miss_rate']:.4%}",
         round(results["vessel"]["completion_ms"], 2)],
        ["  (paper)", f"{PAPER_VESSEL_MISS:.4%}", "-"],
        ["caladan", f"{results['caladan']['miss_rate']:.4%}",
         round(results["caladan"]["completion_ms"], 2)],
        ["  (paper)", f"{PAPER_CALADAN_MISS:.2%}", "-"],
    ]
    print("Figure 11: cache friendliness (two objcopy apps, one core)")
    print(format_table(["system", "miss rate", "completion ms"], rows))
    print(f"completion time reduction: "
          f"{results['completion_reduction']:.1%} (paper: 6-24%)")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
