"""Fluid-mode orchestration: pre-drawn schedules through analytic adapters.

``run_colocation`` hands a run over to :func:`run_fluid_colocation` when
``cfg.fluid == "on"`` *and* :func:`fluid_eligibility` returns no
objections.  The fluid path never approximates randomness: arrivals and
service times are pre-drawn through the vectorized replays
(``repro.sim.vectorized`` / ``repro.workloads.vectorized``), which are
integer-identical to the per-event sources on the same named streams.
What *is* approximate is the scheduler dynamics — the analytic adapters
in ``repro.sim.fluid`` — and that approximation is gated by
``python -m repro fluidcheck`` (see docs/SIMULATION.md for the
contract).

Eligibility is conservative by design: any feature the adapters do not
model (net fabric, observability, custom policies, faults, churn,
admission, bandwidth caps, bus coupling, multi-L Caladan partitions)
falls back to the exact engine with a notice on *stderr* — stdout stays
byte-identical for the comparisons CI makes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.fluid import FluidCaladan, FluidVessel
from repro.sim.rng import RngStreams
from repro.sim.stats import summarize_ns
from repro.sim.units import MS
from repro.sim.vectorized import draw_bursty, draw_open_loop
from repro.sched.base import SystemReport
from repro.workloads.vectorized import batch_services

#: systems with a registered analytic adapter
_FLUID_SYSTEMS = ("vessel", "caladan")
#: L-app kinds whose samplers have exact batch replays
_FLUID_L_KINDS = ("memcached", "silo")


def fluid_eligibility(system_name: str, cfg,
                      l_specs: Sequence[Tuple[str, str, float]],
                      b_specs: Sequence[str] = ("linpack",),
                      bus_sensitivity: float = 0.0,
                      caladan_bw_cap=None, vessel_bw_cap=None,
                      setup_hook=None, admission=None, trace=None,
                      churn=None, fault_plan=None,
                      track_queues: bool = False,
                      rng_namespace: Optional[str] = None) -> List[str]:
    """Why this run can NOT take the fluid path (empty list == it can).

    Mirrors :func:`repro.experiments.common.run_colocation`'s signature
    so the dispatch site forwards its own arguments verbatim.
    """
    reasons: List[str] = []
    if system_name not in _FLUID_SYSTEMS:
        reasons.append(f"no fluid adapter for system {system_name!r}")
    if cfg.net is not None:
        reasons.append("net fabric runs are event-exact only")
    if cfg.observability:
        reasons.append("op ledger / tracing needs per-event charges")
    if cfg.flight_on:
        reasons.append("flight recording needs per-event marks")
    if cfg.policy is not None:
        reasons.append("custom policies are event-exact only")
    for kind, name, _rate in l_specs:
        if kind not in _FLUID_L_KINDS:
            reasons.append(f"no batch replay for L-app kind {kind!r}")
    if system_name == "caladan" and len(l_specs) != 1:
        reasons.append("fluid Caladan models a single L-app partition")
    if any(kind != "linpack" for kind in b_specs):
        reasons.append("only linpack B-apps (membench is bus-coupled)")
    if bus_sensitivity:
        reasons.append("bus-sensitivity coupling is event-exact only")
    if caladan_bw_cap is not None or vessel_bw_cap is not None:
        reasons.append("bandwidth caps are event-exact only")
    if setup_hook is not None:
        reasons.append("setup hooks need a live Simulator")
    if admission is not None or trace is not None or churn is not None \
            or fault_plan is not None:
        reasons.append("overload/fault features are event-exact only")
    if track_queues:
        reasons.append("queue tracking samples a live Simulator")
    return reasons


def run_fluid_colocation(system_name: str, cfg,
                         l_specs: Sequence[Tuple[str, str, float]],
                         b_specs: Sequence[str] = ("linpack",),
                         rng_namespace: Optional[str] = None
                         ) -> SystemReport:
    """One colocation run through the analytic adapters.

    Draws every source's full schedule up front on the run's own named
    streams (identical integers to the exact engine), then walks the
    merged arrival sequence through the system's adapter.  Only requests
    *completing* inside the measurement window are recorded, matching
    the exact engine's accounting; overhead charges are clipped to the
    window by the adapters themselves.
    """
    from repro.experiments.common import make_l_app

    warmup_ns = cfg.warmup_ms * MS
    end_ns = cfg.sim_ms * MS
    rngs = RngStreams(cfg.seed)
    if rng_namespace is not None:
        rngs = rngs.spawn(rng_namespace)

    # Pre-draw each source's schedule.  Draw order per stream matches
    # the exact engine (arrivals and services live on disjoint streams).
    per_app: List[Tuple[str, List[int], List[int]]] = []
    for kind, name, rate in l_specs:
        _app, sampler = make_l_app(kind, name, rngs)
        arr_rng = rngs.stream(f"arrivals/{name}")
        if cfg.bursty:
            arrivals = draw_bursty(arr_rng, rate, end_ns)
        else:
            arrivals = draw_open_loop(arr_rng, rate, end_ns)
        per_app.append((name, arrivals, batch_services(sampler,
                                                       len(arrivals))))

    # Merge to one time-ordered sequence (stable: spec order at ties,
    # like source construction order in the exact engine).
    merged: List[Tuple[int, int, int]] = []
    for idx, (_name, arrivals, services) in enumerate(per_app):
        merged.extend((t, idx, svc)
                      for t, svc in zip(arrivals, services))
    merged.sort(key=lambda row: row[0])

    has_batch = len(b_specs) > 0
    adapter_cls = FluidVessel if system_name == "vessel" else FluidCaladan
    adapter = adapter_cls(cfg.num_workers, cfg.costs,
                          rngs.stream(f"fluid/{system_name}"),
                          warmup_ns, end_ns, has_batch=has_batch)

    names = [name for name, _a, _s in per_app]
    latency: Dict[str, List[int]] = {name: [] for name in names}
    queue_wait: Dict[str, List[int]] = {name: [] for name in names}
    completed: Dict[str, int] = {name: 0 for name in names}
    busy_ns: Dict[str, int] = {name: 0 for name in names}
    clip = adapter.acct.clip
    for t, idx, svc in merged:
        start, done = adapter.serve(t, svc)
        if done > end_ns:
            # The exact engine never fires this completion: the run ends
            # with the request in flight (its core time still accrues).
            busy_ns[names[idx]] += clip(start, done)
            continue
        name = names[idx]
        busy_ns[name] += clip(start, done)
        if done >= warmup_ns:
            completed[name] += 1
            latency[name].append(done - t)
            if start >= warmup_ns:
                queue_wait[name].append(start - t)
    adapter.finish(end_ns)

    elapsed = end_ns - warmup_ns
    window_total = elapsed * cfg.num_workers
    acct = adapter.acct
    buckets: Dict[str, int] = {}
    for name in names:
        buckets[f"app:{name}"] = busy_ns[name]
    buckets["runtime"] = acct.runtime_ns
    buckets["kernel"] = acct.kernel_ns
    l_total = sum(busy_ns.values())
    overhead = acct.runtime_ns + acct.kernel_ns
    if has_batch:
        # Batch apps soak everything the L side and the schedulers do
        # not use (core-time conservation); split evenly across them.
        buckets["idle"] = acct.idle_ns
        useful_total = max(0, window_total - l_total - overhead
                           - acct.idle_ns)
    else:
        buckets["idle"] = max(0, window_total - l_total - overhead)
        useful_total = 0

    report = SystemReport(system=system_name, elapsed_ns=elapsed,
                          num_worker_cores=cfg.num_workers,
                          buckets=buckets)
    for name in names:
        report.latency[name] = summarize_ns(latency[name])
        report.queue_wait[name] = summarize_ns(queue_wait[name])
        report.completed[name] = completed[name]
    from repro.obs.hist import LogHistogram
    for name in names:
        report.latency_hist[name] = LogHistogram.from_samples(latency[name])
    for kind in b_specs:
        report.useful_ns[kind] = useful_total // len(b_specs)
    # The whole point: no discrete events fired.
    report.events_fired = 0
    return report
