"""Oversubscription: 2-4x more runnable uProcesses than cores.

The paper's evaluation colocates a handful of tenants on a machine with
cores to spare for each; dense multi-tenancy inverts that — many small
latency tenants, each entitled to less than a core, all runnable at
once.  With the offered load summing to ~1.3x capacity the system can
never drain; the question is whether congestion stays *fair and
bounded* (every tenant sheds a little, keeps a watermark-bounded queue)
or *accumulates* (queues grow for the whole run and the slowest tenants
starve).

Each oversubscription factor runs twice on VESSEL: unprotected, and
with admission control at the submit boundary.  The worst-tenant
columns tell the story — admission converts an ever-growing backlog
(worst queue ≈ thousands, p99 ≈ milliseconds) into per-tenant shedding
with microsecond-scale tails.

Usage::

    PYTHONPATH=src python -m repro oversub
    PYTHONPATH=src python -m repro oversub --smoke
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.units import US
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation_batch,
)
from repro.overload.admission import AdmissionConfig
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

#: tenants per worker core for each arm (the oversubscription factors)
FACTORS = (2, 3)
#: combined offered load as a fraction of capacity (> 1: never drains)
TOTAL_LOAD = 1.3


def admission_for(tenants: int) -> AdmissionConfig:
    """Per-tenant watermarks: a short queue (the per-tenant fair share
    of the machine is under a core) and a tight age cap."""
    return AdmissionConfig(max_queue_depth=24, max_oldest_wait_ns=100 * US)


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    # SMAS holds 13 uProcesses; factor * workers tenants + linpack must
    # fit, so oversubscription runs on a 4-worker slice.
    cfg = cfg.scaled(num_workers=min(cfg.num_workers, 4))
    capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    tasks = []
    labels = []
    for factor in FACTORS:
        tenants = factor * cfg.num_workers
        rate = TOTAL_LOAD * capacity / tenants
        l_specs = [("memcached", f"t{i:02d}", rate) for i in range(tenants)]
        for protected in (False, True):
            kwargs = dict(l_specs=l_specs, b_specs=("linpack",),
                          track_queues=True)
            if protected:
                kwargs["admission"] = admission_for(tenants)
            tasks.append(("vessel", cfg, kwargs))
            labels.append((factor, tenants, protected))
    reports = run_colocation_batch(tasks, jobs=cfg.jobs)
    return {"arms": list(zip(labels, reports)), "cfg": cfg,
            "capacity": capacity}


def _worst(values: Dict[str, float]) -> float:
    return max(values.values()) if values else float("nan")


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    cfg = results["cfg"]
    print(f"Oversubscription: N tenants on {cfg.num_workers} workers at "
          f"{TOTAL_LOAD:.0%} combined load (open loop, never drains)")
    rows: List[List] = []
    for (factor, tenants, protected), report in results["arms"]:
        p99s = {name: report.p99_us(name) for name in report.completed}
        shed_total = sum(sum(per.values()) for per in
                         report.admission.get("shed", {}).values())
        rows.append([
            f"{factor}x" + (" +admission" if protected else ""),
            tenants,
            sum(report.completed.values()),
            round(_worst(p99s), 1),
            shed_total,
            _worst(report.queue_peak) if report.queue_peak else 0,
            _worst(report.queue_final) if report.queue_final else 0,
        ])
    print(format_table(
        ["arm", "tenants", "done", "worst P99 us", "shed",
         "worst q peak", "worst q end"], rows))
    print("(admission bounds every tenant's queue at the watermark; "
          "unprotected queues keep growing for the whole window)")
    return results


def _fingerprint(results: Dict) -> str:
    return repr([(label,
                  sorted(report.completed.items()),
                  sorted(report.queue_peak.items()),
                  sorted(report.queue_final.items()),
                  sorted((k, round(v.get("p99_us", 0.0), 9))
                         for k, v in report.latency.items()),
                  report.admission.get("by_stage", {}),
                  report.events_fired)
                 for label, report in results["arms"]])


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro oversub [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro oversub",
        description="2-4x more runnable uProcesses than cores, with "
                    "and without admission control.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run + deterministic-rerun gate")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    args = parser.parse_args(argv)
    cfg = ExperimentConfig(seed=args.seed, jobs=max(1, args.jobs))
    if args.smoke:
        cfg = cfg.scaled(num_workers=4, sim_ms=8, warmup_ms=2)
    results = main(cfg)
    if args.smoke:
        if _fingerprint(run(cfg)) != _fingerprint(results):
            raise RuntimeError("rerun was not byte-identical")
        print("[oversub --smoke] deterministic rerun gate passed")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
