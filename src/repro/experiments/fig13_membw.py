"""Figure 13: memory-bandwidth regulation (§6.3.4).

(a) Colocating memcached with the memory-intensive *membench* under a
    bandwidth budget for the B-app.  Both schedulers enforce the budget
    with their own mechanism — VESSEL duty-cycles cores at tens of
    microseconds (switches cost 0.16 µs), Caladan revokes/regrants whole
    cores at its 10 µs tick through the 5.3 µs kernel pipeline — and the
    memcached service time inflates with bus utilization, so imprecise
    regulation shows up as tail latency *and* lost B-app throughput.
    Paper: VESSEL achieves up to 43% higher total normalized throughput.

(b) Regulation accuracy: a single membench thread throttled to
    10%..100% of its solo bandwidth by VESSEL duty-cycling, Intel MBA,
    and a cgroup CPU quota.  Paper: MBA and the cgroup approach consume
    far more bandwidth than desired; VESSEL tracks the target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MS
from repro.hardware.machine import Machine
from repro.baselines.cgroup_bw import CgroupBandwidthRegulator
from repro.baselines.mba import MbaRegulator
from repro.workloads.membench import MembenchWork, membench_app
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    normalized_total,
    run_colocation,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

BUS_SENSITIVITY = 4.0
#: the bandwidth threshold both schedulers enforce on membench
BW_CAP_GBPS = 20.0
P999_SLO_US = 30.0
DEFAULT_LOADS = (0.2, 0.4, 0.6)
TARGETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


# ----------------------------------------------------------------------
# (a) colocation under a bandwidth budget
# ----------------------------------------------------------------------
def _membench_alone_useful(cfg: ExperimentConfig) -> int:
    """membench running alone on all workers (T_max for normalization)."""
    report = run_colocation("ideal", cfg, l_specs=[],
                            b_specs=("membench",))
    return max(1, report.useful_ns.get("membench", 1))


def run_colocation_part(cfg: Optional[ExperimentConfig] = None,
                        loads: Sequence[float] = DEFAULT_LOADS,
                        cap_gbps: float = BW_CAP_GBPS,
                        slo_us: float = P999_SLO_US) -> Dict:
    """Fixed bandwidth threshold for the B-app, enforced by each system's
    own mechanism.  VESSEL duty-cycles cores to the exact budget;
    Caladan's core-granular control quantizes down to whole cores, losing
    B-app throughput, and its kernel-mediated switching keeps the L-app's
    tail higher."""
    cfg = cfg or ExperimentConfig()
    capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    alone = _membench_alone_useful(cfg)
    points = [(load, system) for load in loads
              for system in ("vessel", "caladan")]
    tasks = []
    for load, system in points:
        kwargs: Dict = {}
        if system == "vessel":
            kwargs["vessel_bw_cap"] = ("membench", cap_gbps)
        else:
            kwargs["caladan_bw_cap"] = ("membench", cap_gbps)
        kwargs.update(
            l_specs=[("memcached", "memcached", load * capacity)],
            b_specs=("membench",),
            bus_sensitivity=BUS_SENSITIVITY)
        tasks.append((system, cfg, kwargs))
    reports = run_colocation_batch(tasks, jobs=cfg.jobs)
    rows: List[Dict] = []
    for (load, system), report in zip(points, reports):
        p999 = report.p999_us("memcached")
        rows.append({
            "system": system,
            "load": load,
            "cap": cap_gbps,
            "total_normalized": normalized_total(
                report, cfg, {"memcached": MEMCACHED_MEAN_SERVICE_NS},
                b_alone_useful={"membench": alone}),
            "p999_us": p999,
            "meets_slo": p999 <= slo_us,
        })
    advantage = []
    for load in loads:
        vessel = next(r for r in rows if r["load"] == load
                      and r["system"] == "vessel")
        caladan = next(r for r in rows if r["load"] == load
                       and r["system"] == "caladan")
        if caladan["total_normalized"] > 0:
            advantage.append(vessel["total_normalized"]
                             / caladan["total_normalized"] - 1.0)
    return {"rows": rows, "max_advantage": max(advantage, default=0.0),
            "slo_us": slo_us}


# ----------------------------------------------------------------------
# (b) regulation accuracy
# ----------------------------------------------------------------------
def _measure_vessel(cfg: ExperimentConfig, target_fraction: float) -> float:
    from repro.vessel.scheduler import VesselSystem
    from repro.vessel.regulation import VesselBandwidthRegulator
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 2, membus_gbps=cfg.membus_gbps)
    rngs = RngStreams(cfg.seed)
    system = VesselSystem(sim, machine, rngs,
                          worker_cores=machine.cores[1:])
    app = membench_app(machine.membus)
    system.add_app(app)
    system.start()
    solo = app.batch_work.solo_gbps()
    regulator = VesselBandwidthRegulator(
        sim, system, machine.membus, "membench",
        target_gbps=target_fraction * solo)
    regulator.start()
    sim.run(until=10 * MS)
    meter_bytes = machine.membus.consumed_bytes("membench")
    return meter_bytes / (10 * MS) / solo


def _measure_mba(cfg: ExperimentConfig, target_fraction: float) -> float:
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 1, membus_gbps=cfg.membus_gbps)
    app = membench_app(machine.membus)
    work: MembenchWork = app.batch_work
    regulator = MbaRegulator(machine.membus, "membench",
                             full_rate_gbps=work.demand_gbps)
    regulator.set_target(target_fraction * 100.0)

    def loop() -> None:
        work.start(machine.cores[0], on_done=loop)

    loop()
    sim.run(until=10 * MS)
    return (machine.membus.consumed_bytes("membench")
            / (10 * MS) / work.solo_gbps())


def _measure_cgroup(cfg: ExperimentConfig, target_fraction: float) -> float:
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 1, membus_gbps=cfg.membus_gbps)
    app = membench_app(machine.membus)
    regulator = CgroupBandwidthRegulator(
        sim, machine.cores[0], app.batch_work, target_fraction)
    regulator.start()
    horizon = 10 * regulator.period_ns
    sim.run(until=horizon)
    return (machine.membus.consumed_bytes("membench")
            / horizon / app.batch_work.solo_gbps())


def run_accuracy_part(cfg: Optional[ExperimentConfig] = None,
                      targets: Sequence[float] = TARGETS) -> Dict:
    cfg = cfg or ExperimentConfig()
    rows = []
    for target in targets:
        rows.append({
            "target": target,
            "vessel": _measure_vessel(cfg, target),
            "mba": _measure_mba(cfg, target),
            "cgroup": _measure_cgroup(cfg, target),
        })
    def max_err(key: str) -> float:
        return max(abs(r[key] - r["target"]) for r in rows)
    return {"rows": rows,
            "max_error": {k: max_err(k) for k in ("vessel", "mba",
                                                  "cgroup")}}


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    return {
        "colocation": run_colocation_part(cfg),
        "accuracy": run_accuracy_part(cfg),
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    colo = results["colocation"]
    rows = [[r["system"], r["load"], round(r["cap"], 1),
             round(r["total_normalized"], 3), round(r["p999_us"], 1),
             "yes" if r["meets_slo"] else "NO"] for r in colo["rows"]]
    print(f"Figure 13a: memcached + membench, best budget at "
          f"P999 <= {colo['slo_us']:.0f} us")
    print(format_table(["system", "L load", "budget GB/s", "total norm",
                        "P999 us", "meets SLO"], rows))
    print(f"VESSEL advantage: up to {colo['max_advantage']:.1%} "
          f"(paper: up to 43%)\n")

    acc = results["accuracy"]
    rows = [[f"{r['target']:.0%}", f"{r['vessel']:.1%}",
             f"{r['mba']:.1%}", f"{r['cgroup']:.1%}"]
            for r in acc["rows"]]
    print("Figure 13b: bandwidth-regulation accuracy (fraction of solo bw)")
    print(format_table(["target", "vessel", "MBA", "cgroup"], rows))
    print("max |error|: " + ", ".join(
        f"{k} {v:.1%}" for k, v in acc["max_error"].items()))
    print("paper: MBA and the cgroup approach use far more bandwidth than "
          "desired; VESSEL is accurate")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
