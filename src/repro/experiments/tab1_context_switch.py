"""Table 1: the latency of core reallocation.

Paper setup: "bind two single-threaded applications on the same core and
let them park() themselves repeatedly", so each measured sample is one
one-way switch between two applications.

Paper numbers (µs):

    |         | Avg.  | P50   | P90   | P99   | P999  |
    | VESSEL  | 0.161 | 0.160 | 0.162 | 0.173 | 0.706 |
    | Caladan | 2.103 | 2.063 | 2.091 | 2.420 | 5.461 |

The VESSEL path executes the real functional switch (call gate + PKRU
write + CPUID_TO_TASK_MAP update) per sample; Caladan's path is the
cooperative yield + IOKernel rebind.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import summarize_ns
from repro.hardware.machine import Machine
from repro.obs.ledger import OpLedger
from repro.uprocess.loader import ProgramImage
from repro.uprocess.manager import Manager
from repro.uprocess.threads import UThread
from repro.experiments.common import ExperimentConfig, format_table

PAPER_ROWS = {
    "vessel": {"avg_us": 0.161, "p50_us": 0.160, "p90_us": 0.162,
               "p99_us": 0.173, "p999_us": 0.706},
    "caladan": {"avg_us": 2.103, "p50_us": 2.063, "p90_us": 2.091,
                "p99_us": 2.420, "p999_us": 5.461},
}


def measure_vessel(cfg: ExperimentConfig, iterations: int,
                   ledger: Optional[OpLedger] = None) -> List[int]:
    """Ping-pong two uProcess threads on one core via park switches.

    When ``ledger`` is supplied every switch charges its constituent
    operations into it, so the per-op rows (uctx_save, callgate_enter,
    runtime_queue, uctx_restore, callgate_exit, switch_noise,
    switch_jitter) sum exactly to the end-to-end sample costs — the
    invariant ``benchmarks/test_tab1.py`` checks.
    """
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 1, ledger=ledger)
    rngs = RngStreams(cfg.seed)
    manager = Manager(costs=cfg.costs, rng=rngs.stream("switch"),
                      ledger=machine.ledger)
    domain = manager.create_domain(machine.cores)
    app_a = manager.create_uprocess(domain, ProgramImage("app-a"))
    app_b = manager.create_uprocess(domain, ProgramImage("app-b"))
    thread_a = UThread(app_a)
    thread_b = UThread(app_b)
    core = machine.cores[0]
    domain.switcher.install(core, thread_a)
    samples = []
    current, other = thread_a, thread_b
    for _ in range(iterations):
        domain.switcher.park_current(core)
        cost = domain.switcher.switch(core, other, preempt=False)
        samples.append(cost)
        current, other = other, current
        # The mechanism must leave the core with the right permissions.
        assert core.pkru.value == current.uproc.pkru().value
    return samples


def measure_caladan(cfg: ExperimentConfig, iterations: int) -> List[int]:
    """Cooperative park + IOKernel rebind, with kernel-path jitter."""
    rngs = RngStreams(cfg.seed)
    rng = rngs.stream("caladan-switch")
    costs = cfg.costs
    samples = []
    for _ in range(iterations):
        cost = (costs.caladan_park_yield_ns + costs.caladan_park_switch_ns
                + costs.caladan_switch_noise_ns(rng)
                + costs.kernel_jitter_ns(rng))
        samples.append(cost)
    return samples


def run(cfg: ExperimentConfig, iterations: int = 20_000) -> Dict[str, Dict]:
    ledger = OpLedger() if cfg.op_breakdown else None
    results = {
        "vessel": summarize_ns(measure_vessel(cfg, iterations,
                                              ledger=ledger)),
        "caladan": summarize_ns(measure_caladan(cfg, iterations)),
        "paper": PAPER_ROWS,
    }
    if ledger is not None:
        results["vessel_ledger"] = ledger
    return results


def main(cfg: ExperimentConfig = None) -> Dict[str, Dict]:
    cfg = cfg or ExperimentConfig()
    results = run(cfg)
    headers = ["system", "avg", "P50", "P90", "P99", "P999"]
    rows = []
    for name in ("vessel", "caladan"):
        measured = results[name]
        paper = PAPER_ROWS[name]
        rows.append([name] + [round(measured[k], 3) for k in
                              ("avg_us", "p50_us", "p90_us", "p99_us",
                               "p999_us")])
        rows.append([f"  (paper)"] + [paper[k] for k in
                                      ("avg_us", "p50_us", "p90_us",
                                       "p99_us", "p999_us")])
    print("Table 1: core reallocation latency (us)")
    print(format_table(headers, rows))
    ledger = results.get("vessel_ledger")
    if ledger is not None:
        print("\nVESSEL switch-path per-op breakdown (sums to the "
              "end-to-end cost above):")
        print(ledger.breakdown_table(domain="uproc"))
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
