"""Figure 10: dense colocation of memcached instances on one core (§6.2.2).

1 instance vs 10 instances share a single worker core, with bursty
clients (10 connections per instance).  The paper compares VESSEL with
Caladan-DR-L only (the other systems are orders of magnitude worse):

* with 1 instance both systems have similar peak throughput and tails;
* with 10 instances Caladan's peak throughput drops ~25% and its P999
  rises ~20%, while VESSEL is almost unchanged, because inter-app
  switches cost VESSEL the same 0.16 µs as intra-app ones instead of a
  kernel-mediated reallocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    run_colocation_batch,
)

DEFAULT_SYSTEMS = ("vessel", "caladan-dr-l")
DEFAULT_COUNTS = (1, 10)
#: aggregate offered load on the single core, fraction of capacity
DEFAULT_LOADS = (0.3, 0.5, 0.7, 0.85)
P999_LIMIT_US = 100.0


def run(cfg: Optional[ExperimentConfig] = None,
        systems: Sequence[str] = DEFAULT_SYSTEMS,
        counts: Sequence[int] = DEFAULT_COUNTS,
        loads: Sequence[float] = DEFAULT_LOADS) -> Dict:
    cfg = (cfg or ExperimentConfig()).scaled(num_workers=1, bursty=True)
    capacity_mops = 1.0  # one worker core at ~1 us mean service
    points = [(system, count, load) for system in systems
              for count in counts for load in loads]
    tasks = []
    for system, count, load in points:
        per_app = load * capacity_mops / count
        l_specs = [("memcached", f"mc{i}", per_app) for i in range(count)]
        tasks.append((system, cfg, dict(l_specs=l_specs, b_specs=())))
    reports = run_colocation_batch(tasks, jobs=cfg.jobs)
    curves: List[Dict] = []
    for (system, count, load), (_, _, kwargs), report in zip(points, tasks,
                                                             reports):
        l_specs = kwargs["l_specs"]
        agg_tput = sum(report.throughput_mops(s[1]) for s in l_specs)
        worst_p999 = max(report.p999_us(s[1]) for s in l_specs)
        curves.append({
            "system": system,
            "instances": count,
            "load": load,
            "agg_tput_mops": agg_tput,
            "p999_us": worst_p999,
        })
    summary = {}
    for system in systems:
        for count in counts:
            points = [c for c in curves if c["system"] == system
                      and c["instances"] == count]
            ok = [c for c in points if c["p999_us"] <= P999_LIMIT_US]
            summary[(system, count)] = {
                "peak_tput_mops": max((c["agg_tput_mops"] for c in ok),
                                      default=0.0),
                "p999_at_peak_us": max((c["p999_us"] for c in ok),
                                       default=float("nan")),
            }
    return {"curves": curves, "summary": summary,
            "p999_limit_us": P999_LIMIT_US}


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[c["system"], c["instances"], c["load"],
             round(c["agg_tput_mops"], 3), round(c["p999_us"], 1)]
            for c in results["curves"]]
    print("Figure 10: dense colocation on one core (bursty clients)")
    print(format_table(["system", "#apps", "load", "agg tput Mops",
                        "worst P999 us"], rows))
    print(f"\npeak throughput at P999 <= {results['p999_limit_us']:.0f} us:")
    for (system, count), stats in results["summary"].items():
        print(f"  {system:13s} x{count:2d}: "
              f"{stats['peak_tput_mops']:.3f} Mops "
              f"(P999 {stats['p999_at_peak_us']:.1f} us)")
    print("paper: Caladan's peak declines ~25% and P999 rises ~20% from "
          "1 to 10 instances; VESSEL is almost unchanged")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
