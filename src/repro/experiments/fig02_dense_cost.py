"""Figure 2: the cost of dense colocation (§2.1).

Several memcached instances share a *single* core under Caladan; as the
instance count grows, the share of cycles spent in the kernel (switch
pipelines, park/rebind) grows with it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    run_colocation,
)

DEFAULT_COUNTS = (1, 2, 4, 8)
#: combined offered load on the single core, fraction of its capacity
DEFAULT_TOTAL_LOAD = 0.5


def run(cfg: Optional[ExperimentConfig] = None,
        counts: Sequence[int] = DEFAULT_COUNTS,
        total_load: float = DEFAULT_TOTAL_LOAD,
        system: str = "caladan") -> Dict:
    cfg = (cfg or ExperimentConfig()).scaled(num_workers=1)
    capacity_mops = 1.0  # one worker, ~1 us service
    points = []
    for count in counts:
        per_app = total_load * capacity_mops / count
        l_specs = [("memcached", f"mc{i}", per_app) for i in range(count)]
        report = run_colocation(system, cfg, l_specs=l_specs, b_specs=())
        points.append({
            "instances": count,
            "app_fraction": report.app_fraction(),
            "kernel_fraction": report.buckets.get("kernel", 0)
            / max(1, report.elapsed_ns),
            "runtime_fraction": report.buckets.get("runtime", 0)
            / max(1, report.elapsed_ns),
            "p999_us": max(report.p999_us(s[1]) for s in l_specs),
        })
    return {"system": system, "points": points, "total_load": total_load}


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[p["instances"], round(p["app_fraction"], 3),
             round(p["kernel_fraction"], 3), round(p["runtime_fraction"], 3),
             round(p["p999_us"], 1)]
            for p in results["points"]]
    print("Figure 2: dense colocation on one core (Caladan)")
    print(format_table(["# L-apps", "app frac", "kernel frac",
                        "runtime frac", "worst P999 us"], rows))
    print("paper: CPU cycles spent in the kernel increase with the number "
          "of colocated applications")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
