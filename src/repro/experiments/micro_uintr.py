"""§2.2 microbenchmark: Uintr vs kernel-signal (IPI) latency.

"Uintr enables two kernel threads to ... send and receive interrupts
directly in userspace, achieving up to 15x lower latencies than
IPI-based signals."  We measure both paths end to end on the simulated
machine: sender fires, receiver's handler runs.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import Simulator
from repro.hardware.machine import Machine
from repro.experiments.common import ExperimentConfig, format_table

PAPER_RATIO = 15.0


def run(cfg: ExperimentConfig = None, iterations: int = 1000) -> Dict:
    cfg = cfg or ExperimentConfig()

    # --- Uintr path --------------------------------------------------
    sim = Simulator()
    machine = Machine(sim, cfg.costs, 2)
    latencies_uintr = []
    fired = {}
    machine.uintr.register_handler(1, lambda vec: latencies_uintr.append(
        sim.now - fired["t"]))
    machine.uintr.on_user_resume(1)
    index = machine.uintr.register_sender(0, 1, vector=3)
    for _ in range(iterations):
        fired["t"] = sim.now
        machine.uintr.senduipi(0, index)
        sim.run()

    # --- IPI + signal path -------------------------------------------
    sim2 = Simulator()
    machine2 = Machine(sim2, cfg.costs, 2)
    latencies_ipi = []
    fired2 = {}

    def kernel_handler(vector: int) -> None:
        # The kernel handler posts a signal to the userspace handler.
        sim2.after(cfg.costs.signal_deliver_ns,
                   lambda: latencies_ipi.append(sim2.now - fired2["t"]))

    machine2.ipi.register_handler(1, kernel_handler)
    for _ in range(iterations):
        fired2["t"] = sim2.now
        # The sender must trap into the kernel to issue the IPI.
        sim2.after(cfg.costs.syscall_ns, machine2.ipi.send, 1)
        sim2.run()

    uintr_ns = sum(latencies_uintr) / len(latencies_uintr)
    ipi_ns = sum(latencies_ipi) / len(latencies_ipi)
    return {
        "uintr_us": uintr_ns / 1000.0,
        "ipi_signal_us": ipi_ns / 1000.0,
        "ratio": ipi_ns / uintr_ns,
        "paper_ratio": PAPER_RATIO,
        "delivered": machine.uintr.delivered,
    }


def main(cfg: ExperimentConfig = None) -> Dict:
    results = run(cfg)
    print("2.2 microbenchmark: user-interrupt vs IPI-signal latency")
    print(format_table(
        ["path", "latency (us)"],
        [["uintr", round(results["uintr_us"], 3)],
         ["IPI + signal", round(results["ipi_signal_us"], 3)]]))
    print(f"ratio: {results['ratio']:.1f}x "
          f"(paper: up to {results['paper_ratio']:.0f}x)")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
