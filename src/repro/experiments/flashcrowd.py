"""Flash crowd: a 10x diurnal load spike against a colocated server.

The offered load follows a trace (calm morning, buildup, a 10x flash
crowd through the middle of the run, slow decay).  At the spike the
clients offer ~2.5x the machine's capacity, so *something* has to give;
the experiment compares what gives:

* **vessel+overload** — VESSEL under the SLO autoscaler policy, with
  admission control shedding above the watermarks and hardened clients
  (exponential backoff + retry budget).  Excess load is rejected at the
  NIC; admitted requests keep a bounded p99; clients back off.
* **vessel** (plain), **caladan**, **linux-cfs** — no admission, no
  backoff hardening: the queue absorbs the whole crowd, latency grows
  with the backlog, and after ``timeout_ns`` every unanswered request
  is retransmitted into the congestion (the retry storm).

The signature of graceful degradation vs collapse is in the queue
columns: the protected arm's peak queue stays at the admission
watermark and drains by the end of the run; the unprotected arms' peaks
track the whole crowd and are still draining at the horizon.

Usage::

    PYTHONPATH=src python -m repro flashcrowd           # full scenario
    PYTHONPATH=src python -m repro flashcrowd --smoke   # CI-sized
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.sim.units import US
from repro.net import NetConfig
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    run_colocation_batch,
)
from repro.overload.admission import AdmissionConfig
from repro.overload.trace import flash_crowd_trace
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

#: p99 budget for the protected arm (client-observed, admitted requests)
SLO_P99_US = 200.0
#: baseline offered load as a fraction of capacity (spike multiplies it)
BASE_LOAD = 0.25
#: the flash crowd's peak multiplier
SPIKE_FACTOR = 10.0

FLAGSHIP = "vessel+overload"


def hardened_net(net: Optional[NetConfig]) -> NetConfig:
    """Client-side overload hardening: exponential backoff with seeded
    jitter, and a retry budget that converts storms into suppressions."""
    return replace(net or NetConfig(),
                   backoff_base_ns=20 * US, backoff_jitter=0.5,
                   retry_budget=0.1)


def admission_for(cfg: ExperimentConfig) -> AdmissionConfig:
    """Watermarks sized to the machine: the queue cap is ~16 requests
    per worker (≈16 µs of backlog each), the age cap under the SLO."""
    return AdmissionConfig(max_queue_depth=16 * cfg.num_workers,
                           max_oldest_wait_ns=150 * US)


def run(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    base_rate = BASE_LOAD * l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    trace = flash_crowd_trace(cfg.sim_ms, SPIKE_FACTOR)
    l_specs = [("memcached", "mc", base_rate)]
    plain_net = cfg.net or NetConfig()
    common = dict(l_specs=l_specs, b_specs=("linpack",), trace=trace,
                  track_queues=True)
    tasks = [
        (FLAGSHIP, "vessel",
         cfg.scaled(net=hardened_net(cfg.net), policy="autoscale",
                    policy_params={"slo_p99_us": SLO_P99_US}),
         dict(common, admission=admission_for(cfg))),
        ("vessel", "vessel", cfg.scaled(net=plain_net), dict(common)),
        ("caladan", "caladan", cfg.scaled(net=plain_net), dict(common)),
        ("linux-cfs", "linux-cfs", cfg.scaled(net=plain_net), dict(common)),
    ]
    reports = run_colocation_batch(
        [(system, arm_cfg, kwargs) for _, system, arm_cfg, kwargs in tasks],
        jobs=cfg.jobs)
    return {
        "arms": [(label, report)
                 for (label, _, _, _), report in zip(tasks, reports)],
        "base_rate": base_rate,
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    cfg = cfg or ExperimentConfig()
    print(f"Flash crowd: memcached + linpack, {SPIKE_FACTOR:.0f}x spike "
          f"over a {results['base_rate']:.2f} Mops/s baseline "
          f"(peak ≈ {SPIKE_FACTOR * BASE_LOAD:.1f}x capacity)")
    rows: List[List] = []
    for label, report in results["arms"]:
        ops = report.net_ops.get("mc", {})
        rows.append([
            label,
            round(report.client_p99_us("mc"), 1),
            report.completed.get("mc", 0),
            ops.get("sheds", 0),
            ops.get("retries", 0),
            ops.get("retries_suppressed", 0),
            ops.get("losses", 0),
            report.queue_peak.get("mc", 0),
            report.queue_final.get("mc", 0),
        ])
    print(format_table(
        ["arm", "cli P99 us", "done", "shed", "retry", "suppr",
         "lost", "q peak", "q end"], rows))
    flagship = results["arms"][0][1]
    if flagship.autoscale:
        a = flagship.autoscale
        print(f"autoscaler: {a['harvests']} harvests / {a['returns']} "
              f"returns, BE cap {a['be_allowed']}/{a['total_cores']} at "
              f"the horizon")
    print("(bounded 'q peak' + drained 'q end' = graceful degradation; "
          "a peak tracking the whole crowd = collapse into the backlog)")
    return results


def _fingerprint(results: Dict) -> str:
    return repr([(label,
                  sorted(report.net_ops.get("mc", {}).items()),
                  sorted(report.queue_peak.items()),
                  sorted(report.queue_final.items()),
                  report.completed.get("mc", 0),
                  round(report.client_p99_us("mc"), 9),
                  report.events_fired)
                 for label, report in results["arms"]])


def smoke_config(seed: int = 42, jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(num_workers=4, sim_ms=8, warmup_ms=2,
                            seed=seed, jobs=jobs)


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro flashcrowd [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro flashcrowd",
        description="Trace-driven 10x flash crowd: VESSEL+overload "
                    "machinery vs unprotected baselines.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run + deterministic-rerun gate")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument("--latency-breakdown", action="store_true",
                        help="record per-request flights and print the "
                             "per-stage latency decomposition per arm")
    parser.add_argument("--trace-requests", type=int, default=0,
                        metavar="K",
                        help="print the K slowest requests' stage spans")
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = smoke_config(seed=args.seed, jobs=max(1, args.jobs))
    else:
        cfg = ExperimentConfig(seed=args.seed, jobs=max(1, args.jobs))
    cfg = cfg.scaled(latency_breakdown=args.latency_breakdown,
                     trace_requests=max(0, args.trace_requests))
    results = main(cfg)
    if args.smoke:
        if _fingerprint(run(cfg)) != _fingerprint(results):
            raise RuntimeError("rerun was not byte-identical")
        print("[flashcrowd --smoke] deterministic rerun gate passed")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
