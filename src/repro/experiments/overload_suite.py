"""The overload acceptance suite: flash crowd + chaos, with hard gates.

``python -m repro overload`` is the closed-loop robustness demo and CI
gate in one.  It runs the flash-crowd comparison and then *asserts* the
graceful-degradation claims instead of just printing them:

1. **SLO hold** — the protected arm (VESSEL + autoscaler + admission +
   hardened clients) keeps admitted-request client p99 within the
   200 µs budget through a 10x spike, while shedding the excess;
2. **baseline collapse** — at least one unprotected baseline exhibits
   unbounded queue growth or a retry-storm through the same trace;
3. **faults × overload** — the same protected arm re-runs with a chaos
   plan (Uintr drops + packet delays) active through the spike; the
   containment audit must come back empty and the request-conservation
   ledger must balance exactly (offered == completed + losses +
   in-flight for every app — shed attempts retry or convert to counted
   losses, never vanish);
4. **determinism** — the chaos run is byte-identical across reruns, and
   the flash-crowd arms are byte-identical under ``--jobs 2``.

Any violated gate raises ``RuntimeError`` (non-zero exit), which is
what the CI job keys on.

Usage::

    PYTHONPATH=src python -m repro overload
    PYTHONPATH=src python -m repro overload --smoke
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.sim.units import MS, US
from repro.faults.plan import FaultPlan
from repro.experiments import flashcrowd
from repro.experiments.common import (
    ExperimentConfig,
    l_capacity_mops,
    run_colocation,
)
from repro.experiments.flashcrowd import FLAGSHIP, SLO_P99_US
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS


def chaos_run(cfg: ExperimentConfig):
    """The protected flash-crowd arm with a chaos plan riding along.

    ``warmup_ms=0`` so the conservation identity is exact: the
    in-flight gauge is never reset, and every request offered in the
    window either completed, was counted lost, or is still in flight at
    the horizon.
    """
    cfg = cfg.scaled(warmup_ms=0,
                     net=flashcrowd.hardened_net(cfg.net),
                     policy="autoscale",
                     policy_params={"slo_p99_us": SLO_P99_US})
    spike_ns = int(0.5 * cfg.sim_ms * MS)
    plan = (FaultPlan(seed=cfg.seed)
            .drop_uintr(0.05, at_ns=spike_ns)
            .delay_packets(2 * US, probability=0.05, at_ns=spike_ns))
    base_rate = flashcrowd.BASE_LOAD * l_capacity_mops(
        cfg, MEMCACHED_MEAN_SERVICE_NS)
    return run_colocation(
        "vessel", cfg,
        l_specs=[("memcached", "mc", base_rate)],
        b_specs=("linpack",),
        admission=flashcrowd.admission_for(cfg),
        trace=flashcrowd.flash_crowd_trace(cfg.sim_ms,
                                           flashcrowd.SPIKE_FACTOR),
        fault_plan=plan,
        track_queues=True)


def _chaos_fingerprint(report) -> str:
    return repr((sorted(report.net_ops.get("mc", {}).items()),
                 sorted(report.net_conservation.items()),
                 sorted(report.fault_injected.items()),
                 report.uncontained,
                 report.completed.get("mc", 0),
                 report.events_fired))


def _gate(ok: bool, message: str, failures: List[str]) -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {message}")
    if not ok:
        failures.append(message)


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    cfg = cfg or ExperimentConfig()
    failures: List[str] = []

    # ---- part 1+2: the flash-crowd comparison and its gates -----------
    results = flashcrowd.main(cfg)
    arms = dict(results["arms"])
    flagship = arms[FLAGSHIP]
    print("\nGates:")
    p99 = flagship.client_p99_us("mc")
    shed = flagship.net_ops.get("mc", {}).get("sheds", 0)
    _gate(p99 <= SLO_P99_US,
          f"{FLAGSHIP} admitted-request p99 {p99:.1f} us within the "
          f"{SLO_P99_US:.0f} us SLO", failures)
    _gate(shed > 0, f"{FLAGSHIP} shed the excess ({shed} rejections)",
          failures)
    flag_peak = max(flagship.queue_peak.values(), default=0)
    collapse = []
    for label, report in results["arms"]:
        if label == FLAGSHIP:
            continue
        peak = max(report.queue_peak.values(), default=0)
        retries = report.net_ops.get("mc", {}).get("retries", 0)
        flag_retries = flagship.net_ops.get("mc", {}).get("retries", 0)
        if peak > 5 * max(1, flag_peak) or retries > 5 * (flag_retries + 1):
            collapse.append(f"{label} (q peak {peak}, retries {retries})")
    _gate(bool(collapse),
          "unprotected baseline collapses under the same trace: "
          + (", ".join(collapse) or "none"), failures)

    # ---- part 3: chaos during the spike -------------------------------
    print("\nFaults x overload: Uintr drops + packet delays through the "
          "spike, protected arm")
    report = chaos_run(cfg)
    print(f"  injected: {report.fault_injected}")
    _gate(sum(report.fault_injected.values()) > 0,
          "chaos plan actually fired during the spike", failures)
    _gate(not report.uncontained,
          "containment audit empty under overload + chaos "
          + (f"(violations: {report.uncontained})"
             if report.uncontained else ""), failures)
    imbalance = {name: row["balance"]
                 for name, row in report.net_conservation.items()
                 if row["balance"] != 0}
    _gate(not imbalance,
          "request conservation exact: offered == completed + losses "
          "+ in-flight" + (f" (imbalance: {imbalance})"
                           if imbalance else ""), failures)
    fabric_sheds = report.net_ops.get("mc", {}).get("sheds", 0)
    admitted_sheds = sum(sum(per.values()) for per in
                         report.admission.get("shed", {}).values())
    _gate(fabric_sheds == admitted_sheds,
          f"shed accounting consistent across layers "
          f"(fabric {fabric_sheds} == admission {admitted_sheds})",
          failures)

    # ---- part 4: determinism ------------------------------------------
    _gate(_chaos_fingerprint(chaos_run(cfg)) == _chaos_fingerprint(report),
          "chaos run byte-identical across reruns", failures)
    jobs_cfg = replace(cfg, jobs=2)
    _gate(flashcrowd._fingerprint(flashcrowd.run(jobs_cfg))
          == flashcrowd._fingerprint(results),
          "flash-crowd arms byte-identical under --jobs 2", failures)

    if failures:
        raise RuntimeError(
            f"{len(failures)} overload gate(s) failed: {failures}")
    print("\nAll overload gates passed.")
    return {"flashcrowd": results, "chaos": report}


def cli_main(argv: Optional[List[str]] = None) -> int:
    """Entry for ``python -m repro overload [--smoke]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro overload",
        description="Gated overload acceptance suite: flash crowd, "
                    "chaos composition, determinism.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (4 workers, 8 ms)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = flashcrowd.smoke_config(seed=args.seed,
                                      jobs=max(1, args.jobs))
    else:
        cfg = ExperimentConfig(seed=args.seed, jobs=max(1, args.jobs))
    main(cfg)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(cli_main())
