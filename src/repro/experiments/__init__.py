"""Experiment harness: one module per table/figure in the paper (§6).

Every module exposes ``run(cfg)`` returning a plain dict of series (so
tests and benchmarks can assert on shapes) and ``main()`` which prints
the paper-style rows.  Run any of them directly::

    python -m repro.experiments.fig09_colocation
    python -m repro.experiments.tab1_context_switch --scale paper

| Module                  | Reproduces                                    |
|-------------------------|-----------------------------------------------|
| fig01_colocation_cost   | Fig. 1: cost of colocation under Caladan      |
| fig02_dense_cost        | Fig. 2: cycles breakdown, dense colocation    |
| fig03_realloc_timeline  | Fig. 3: Caladan core-reallocation timeline    |
| fig07_timeline          | Fig. 7: traced execution timelines            |
| tab1_context_switch     | Table 1: switch-latency distribution          |
| fig09_colocation        | Fig. 9: L+B colocation across all systems     |
| fig10_dense             | Fig. 10: 1 vs 10 memcached on one core        |
| fig11_cache             | Fig. 11: cache friendliness                   |
| fig12_scalability       | Fig. 12: goodput vs managed cores             |
| fig13_membw             | Fig. 13: bandwidth-aware colocation + reg.    |
| micro_uintr             | §2.2: Uintr vs IPI signal latency             |
| ablations               | DESIGN §7: mechanism-vs-policy ablations      |
"""

from repro.experiments.common import ExperimentConfig, run_colocation

__all__ = ["ExperimentConfig", "run_colocation"]
