"""Figure 1: the cost of application colocation under Caladan (§2.1).

(a) Total normalized throughput of memcached (L) + Linpack (B) as the
    L-app's load rises — an ideal scheduler holds 1.0, Caladan declines
    by up to 18%.
(b) Where the CPU cores actually go: application logic vs kernel+runtime
    ("up to 17% of CPU cycles are not spent on executing the application
    logic").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    normalized_total,
    run_colocation_batch,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

PAPER_MAX_DECLINE = 0.18
PAPER_MAX_WASTE = 0.17

#: L-app load as a fraction of its alone capacity
DEFAULT_LOAD_POINTS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)


def run(cfg: Optional[ExperimentConfig] = None,
        load_points=DEFAULT_LOAD_POINTS,
        system: str = "caladan") -> Dict:
    cfg = cfg or ExperimentConfig()
    capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    reports = run_colocation_batch(
        [(system, cfg,
          dict(l_specs=[("memcached", "memcached", load * capacity)],
               b_specs=("linpack",)))
         for load in load_points],
        jobs=cfg.jobs)
    points: List[Dict] = []
    for load, report in zip(load_points, reports):
        rate = load * capacity
        total_norm = normalized_total(
            report, cfg, {"memcached": MEMCACHED_MEAN_SERVICE_NS})
        points.append({
            "load": load,
            "rate_mops": rate,
            "total_normalized": total_norm,
            "app_cores": report.cores_equivalent("app"),
            "kernel_cores": report.cores_equivalent("kernel"),
            "runtime_cores": report.cores_equivalent("runtime"),
            "waste_fraction": report.waste_fraction(),
            "p999_us": report.p999_us("memcached"),
        })
    max_decline = max(1.0 - p["total_normalized"] for p in points)
    max_waste = max(p["waste_fraction"] for p in points)
    return {
        "system": system,
        "points": points,
        "max_decline": max_decline,
        "max_waste": max_waste,
        "paper_max_decline": PAPER_MAX_DECLINE,
        "paper_max_waste": PAPER_MAX_WASTE,
    }


def main(cfg: Optional[ExperimentConfig] = None) -> Dict:
    results = run(cfg)
    rows = [[p["load"], round(p["rate_mops"], 2),
             round(p["total_normalized"], 3), round(p["app_cores"], 2),
             round(p["kernel_cores"], 2), round(p["runtime_cores"], 2)]
            for p in results["points"]]
    print("Figure 1: cost of colocation (Caladan, memcached + Linpack)")
    print(format_table(
        ["L load", "rate Mops", "total norm tput", "app cores",
         "kernel cores", "runtime cores"], rows))
    print(f"max decline: measured {results['max_decline']:.1%}, "
          f"paper up to {results['paper_max_decline']:.0%}")
    print(f"max kernel+runtime share: measured {results['max_waste']:.1%}, "
          f"paper up to {results['paper_max_waste']:.0%}")
    return results


if __name__ == "__main__":
    from repro.experiments.common import parse_profile
    main(parse_profile())
