"""Cluster-scale client/network simulation (``repro.net``).

Models the part of the testbed the experiments used to bypass: client
machines generating load over a serializing 100 Gbps link into a
multi-queue RSS NIC, with latency measured where the paper measures it —
at the client.  See DESIGN.md §11 ("Network model").
"""

from repro.net.client import ClientMachine
from repro.net.config import NetConfig
from repro.net.fabric import NetFabric
from repro.net.link import LINK_DROP, Link
from repro.net.nic import Nic

__all__ = [
    "ClientMachine",
    "LINK_DROP",
    "Link",
    "NetConfig",
    "NetFabric",
    "Nic",
]
