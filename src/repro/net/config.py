"""Configuration of the simulated client/network testbed.

The defaults mirror the paper's evaluation setup: four client machines
driving the server over a single 100 Gbps ConnectX-5 port.  One
:class:`NetConfig` parameterizes the whole fabric — both link directions,
the multi-queue NIC, and the client generators — so an experiment turns
the network on with ``cfg.scaled(net=NetConfig())`` (or ``--net``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MS, US


@dataclass(frozen=True)
class NetConfig:
    """Knobs of the simulated cluster fabric."""

    #: port bandwidth per direction (the ConnectX-5 testbed link)
    gbps: float = 100.0
    #: one-way wire + switch propagation (each direction)
    propagation_ns: int = 500
    #: per-packet NIC processing + DMA into an RX ring
    nic_ns: int = 600
    #: Ethernet + IP + TCP framing added to every payload
    header_bytes: int = 66
    #: RX rings on the server NIC; 0 means one ring per worker core
    rings: int = 0
    #: per-ring capacity (packets) before RSS overflow drops
    ring_capacity: int = 256
    #: number of client machines the offered load is spread over
    clients: int = 4
    #: client-side response timeout before a retransmission
    timeout_ns: int = 2 * MS
    #: retransmissions per logical request before it counts as lost
    max_retries: int = 1
    #: backoff before retransmitting an *observed* drop (loss callbacks
    #: fire long before the timeout would)
    drop_retry_backoff_ns: int = 5 * US
    #: exponential retry backoff: attempt k waits
    #: ``backoff_base_ns * backoff_factor**(k-1)`` (clamped to
    #: ``backoff_max_ns``) plus up to ``backoff_jitter`` of itself in
    #: seeded jitter.  0 disables it and preserves the legacy behavior
    #: (immediate retry on timeout, fixed ``drop_retry_backoff_ns`` on
    #: an observed drop) byte-for-byte.
    backoff_base_ns: int = 0
    backoff_factor: float = 2.0
    backoff_max_ns: int = 1 * MS
    backoff_jitter: float = 0.0
    #: per-machine retry budget (token bucket): each *new* logical
    #: request earns ``retry_budget`` tokens (capped at
    #: ``retry_budget_cap``); a retransmission spends one.  An empty
    #: bucket converts the retry into a loss (counted
    #: ``retries_suppressed``) — this is what stops retry storms from
    #: amplifying overload.  0 disables budgeting (legacy behavior).
    retry_budget: float = 0.0
    retry_budget_cap: float = 10.0
    #: closed-loop clients: each connection keeps one request in flight
    #: and thinks for ``think_ns`` between response and next send
    closed_loop: bool = False
    think_ns: int = 0
    #: identity of the server machine this fabric fronts.  ``None`` (the
    #: single-server default) keeps the historical global stream names
    #: (``net/rss``, ``net/arrivals/...``) byte-for-byte; a fleet run
    #: (``repro.cluster``) must set a distinct id per server so that two
    #: fabrics sharing one ``RngStreams`` never collide on a stream name
    #: (colliding names would entangle the servers' randomness).
    server_id: Optional[int] = None

    def num_rings(self, num_workers: int) -> int:
        return self.rings if self.rings > 0 else max(1, num_workers)

    def stream_prefix(self) -> str:
        """Namespace for this fabric's RNG stream names."""
        if self.server_id is None:
            return "net"
        return f"net/server{self.server_id}"
