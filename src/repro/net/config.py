"""Configuration of the simulated client/network testbed.

The defaults mirror the paper's evaluation setup: four client machines
driving the server over a single 100 Gbps ConnectX-5 port.  One
:class:`NetConfig` parameterizes the whole fabric — both link directions,
the multi-queue NIC, and the client generators — so an experiment turns
the network on with ``cfg.scaled(net=NetConfig())`` (or ``--net``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MS, US


@dataclass(frozen=True)
class NetConfig:
    """Knobs of the simulated cluster fabric."""

    #: port bandwidth per direction (the ConnectX-5 testbed link)
    gbps: float = 100.0
    #: one-way wire + switch propagation (each direction)
    propagation_ns: int = 500
    #: per-packet NIC processing + DMA into an RX ring
    nic_ns: int = 600
    #: Ethernet + IP + TCP framing added to every payload
    header_bytes: int = 66
    #: RX rings on the server NIC; 0 means one ring per worker core
    rings: int = 0
    #: per-ring capacity (packets) before RSS overflow drops
    ring_capacity: int = 256
    #: number of client machines the offered load is spread over
    clients: int = 4
    #: client-side response timeout before a retransmission
    timeout_ns: int = 2 * MS
    #: retransmissions per logical request before it counts as lost
    max_retries: int = 1
    #: backoff before retransmitting an *observed* drop (loss callbacks
    #: fire long before the timeout would)
    drop_retry_backoff_ns: int = 5 * US
    #: closed-loop clients: each connection keeps one request in flight
    #: and thinks for ``think_ns`` between response and next send
    closed_loop: bool = False
    think_ns: int = 0

    def num_rings(self, num_workers: int) -> int:
        return self.rings if self.rings > 0 else max(1, num_workers)
