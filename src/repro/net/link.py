"""One direction of the testbed link, with bandwidth serialization.

A 100 Gbps port is not a constant per-packet delay: packets serialize
one at a time at ``8 / gbps`` ns per byte, so a burst queues behind the
wire and the queueing shows up in client-observed latency.  The model is
a single FIFO serializer per direction (the server port is the shared
bottleneck for all four client machines, exactly as on the testbed)
followed by a fixed propagation delay.

Transfer costs are charged to the operation ledger under the ``net``
domain (op ``link_tx``, cost = serialization time), so ``--op-breakdown``
shows per-packet wire costs next to the scheduler's switch costs.

Fault injection: an installed ``inject`` hook is consulted per packet and
may return :data:`LINK_DROP` (the packet is lost; the sender-side
``on_drop`` callback fires so clients can retransmit) or a non-negative
extra delay in nanoseconds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.sim.engine import Simulator
from repro.workloads.base import Request

#: ``inject`` return value meaning "lose this packet"
LINK_DROP = -1


class Link:
    """A one-directional serializing link (one side of the full-duplex
    port)."""

    def __init__(self, sim: Simulator, name: str, gbps: float = 100.0,
                 propagation_ns: int = 500,
                 ledger: Optional[OpLedger] = None,
                 on_drop: Optional[Callable[[Request], None]] = None) -> None:
        if gbps <= 0:
            raise ValueError(f"bandwidth must be positive: {gbps}")
        if propagation_ns < 0:
            raise ValueError(f"negative propagation {propagation_ns}")
        self.sim = sim
        self.name = name
        self.gbps = gbps
        self.propagation_ns = propagation_ns
        self.ledger = ledger or NULL_LEDGER
        self.on_drop = on_drop
        #: fault hook: fn(request, nbytes) -> None | LINK_DROP | delay_ns
        self.inject: Optional[Callable[[Request, int], Optional[int]]] = None
        #: when the serializer finishes its current backlog
        self._busy_until = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def serialization_ns(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at this link's bandwidth (>= 1 ns)."""
        return max(1, round(nbytes * 8 / self.gbps))

    def queue_ns(self) -> int:
        """Current serializer backlog (how long a new packet would wait)."""
        return max(0, self._busy_until - self.sim.now)

    # ------------------------------------------------------------------
    def send(self, request: Request, nbytes: int,
             deliver: Callable[[Request], None]) -> bool:
        """Put one packet on the wire; ``deliver`` fires at the far end.

        Returns False when a fault disposition dropped the packet (the
        ``on_drop`` callback has already run by then).
        """
        extra = 0
        if self.inject is not None:
            disposition = self.inject(request, nbytes)
            if disposition == LINK_DROP:
                self.dropped += 1
                if self.ledger.enabled:
                    self.ledger.count_op("link_drop", domain="net")
                if self.on_drop is not None:
                    self.on_drop(request)
                return False
            if disposition is not None:
                extra = disposition
        ser = self.serialization_ns(nbytes)
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + ser
        self.tx_packets += 1
        self.tx_bytes += nbytes
        if self.ledger.enabled:
            self.ledger.charge("link_tx", ser, domain="net")
        self.sim.at(self._busy_until + self.propagation_ns + extra,
                    deliver, request)
        return True
