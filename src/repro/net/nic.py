"""The server's multi-queue NIC with RSS connection steering.

Instead of one software queue per application, the NIC owns a set of
per-core RX rings (reusing :class:`~repro.vessel.dataplane.NicRxQueue`,
so each ring keeps the depth / oldest-arrival signals the scheduler
reads).  A connection is steered onto a ring by an RSS-style hash of
``(app, conn_id)`` keyed with a value drawn from the run's seeded RNG
streams — identical seeds steer identically, different seeds spread
connections differently, and one connection's packets never reorder
across rings.

Ring operations charge the ledger under the ``net`` domain (``nic_rx``
per delivered packet, ``nic_drop`` per overflow), and overflow drops are
surfaced to the fabric's drop callback so clients observe the loss.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional

from repro.obs.ledger import OpLedger
from repro.sim.engine import Simulator
from repro.vessel.dataplane import NicRxQueue
from repro.workloads.base import Request


class Nic:
    """RSS steering over a fixed set of bounded RX rings."""

    def __init__(self, sim: Simulator, deliver: Callable[[Request], None],
                 num_rings: int, ring_capacity: int = 256,
                 nic_ns: int = 600, rss_key: int = 0,
                 ledger: Optional[OpLedger] = None,
                 on_drop: Optional[Callable[[Request], None]] = None) -> None:
        if num_rings <= 0:
            raise ValueError(f"need at least one ring: {num_rings}")
        self.sim = sim
        self.rss_key = rss_key
        self.rings: List[NicRxQueue] = [
            NicRxQueue(sim, deliver, latency_ns=nic_ns,
                       capacity=ring_capacity, ledger=ledger,
                       on_drop=on_drop, domain="net")
            for _ in range(num_rings)
        ]
        #: (app_name, conn_id) -> ring index, memoized (flows are sticky)
        self._steering: dict = {}

    # ------------------------------------------------------------------
    def ring_for(self, app_name: str, conn_id: int) -> int:
        """Deterministic RSS hash of the connection's flow tuple."""
        flow = (app_name, conn_id)
        ring = self._steering.get(flow)
        if ring is None:
            digest = hashlib.sha256(
                f"{self.rss_key}/{app_name}/{conn_id}".encode("utf-8")
            ).digest()
            ring = int.from_bytes(digest[:8], "big") % len(self.rings)
            self._steering[flow] = ring
        return ring

    def rx(self, request: Request) -> bool:
        """Steer one arriving packet onto its ring; False on overflow."""
        ring = self.rings[self.ring_for(request.app.name, request.conn_id)]
        return ring.client_submit(request)

    # ------------------------------------------------------------------
    # Aggregate signals and counters
    # ------------------------------------------------------------------
    def ring_depth(self, index: int) -> int:
        return self.rings[index].depth

    def oldest_wait_ns(self, now: int) -> int:
        """Age of the oldest packet across every ring."""
        waits = [ring.oldest_wait_ns(now) for ring in self.rings]
        return max(waits) if waits else 0

    @property
    def received(self) -> int:
        return sum(ring.received for ring in self.rings)

    @property
    def dropped(self) -> int:
        return sum(ring.dropped for ring in self.rings)
