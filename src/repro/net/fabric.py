"""Glue between client machines, the link, the NIC, and a server system.

``NetFabric`` assembles the simulated testbed: N client machines, a
full-duplex serializing :class:`~repro.net.link.Link` (one serializer
per direction — the server's port is the shared bottleneck), and the
server's multi-queue :class:`~repro.net.nic.Nic`, whose RSS rings
deliver into the scheduling system's intake.  Responses travel back over
the server→clients direction and are recorded by per-app client-side
latency recorders, so the fabric's percentiles are *client-observed*
(send to response received), strictly including everything the
server-side recorder sees.

Determinism: every random decision (arrival gaps, payload sizes, the
RSS key) draws from the run's :class:`~repro.sim.rng.RngStreams`, so two
runs with the same seed produce byte-identical reports.

Fault injection: the fabric's links are listed in :attr:`links`; the
fault injector installs packet drop/delay dispositions there, and every
loss is surfaced to the owning client, which retries — loss never
silently vanishes from the accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.client import ClientMachine, _ClientWorkload
from repro.net.config import NetConfig
from repro.net.link import Link
from repro.net.nic import Nic
from repro.obs.flight import NULL_FLIGHT
from repro.obs.ledger import NULL_LEDGER, OpLedger
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import LatencyRecorder
from repro.workloads.base import App, Request

#: per-app counters the fabric tracks (report rows are in this order)
COUNTER_KEYS = ("offered", "completed", "retries", "timeouts", "losses",
                "drops_observed", "dup_responses", "sheds",
                "retries_suppressed", "backoff_ns")


class NetFabric:
    """The simulated cluster around one server machine."""

    def __init__(self, sim: Simulator, cfg: NetConfig, rngs: RngStreams,
                 num_workers: int,
                 ledger: Optional[OpLedger] = None,
                 flight=None) -> None:
        self.sim = sim
        self.cfg = cfg
        self.rngs = rngs
        self.ledger = ledger or NULL_LEDGER
        self.flight = flight or NULL_FLIGHT
        self.link_in = Link(sim, "clients->server", cfg.gbps,
                            cfg.propagation_ns, ledger=self.ledger,
                            on_drop=self._on_drop)
        self.link_out = Link(sim, "server->clients", cfg.gbps,
                             cfg.propagation_ns, ledger=self.ledger,
                             on_drop=self._on_drop)
        rss_key = rngs.stream(f"{cfg.stream_prefix()}/rss").getrandbits(64)
        self.nic = Nic(sim, self._server_intake,
                       num_rings=cfg.num_rings(num_workers),
                       ring_capacity=cfg.ring_capacity, nic_ns=cfg.nic_ns,
                       rss_key=rss_key, ledger=self.ledger,
                       on_drop=self._on_drop)
        self.machines = [ClientMachine(sim, i, self, cfg)
                         for i in range(max(1, cfg.clients))]
        #: client-observed latency per app (send -> response received)
        self.client_latency: Dict[str, LatencyRecorder] = {}
        #: per-app reliability counters (see COUNTER_KEYS)
        self.stats: Dict[str, Dict[str, int]] = {}
        self._specs: List[Tuple[App, float, Callable, Optional[Callable],
                                int]] = []
        self.submit: Optional[Callable[[Request], None]] = None
        #: logical requests sent but not yet completed or lost.  Unlike
        #: ``stats`` this gauge is *not* reset at ``begin_measurement``
        #: (a request in flight across the warmup boundary still has to
        #: terminate); the reset instead snapshots it, so the identity
        #: ``offered + in_flight_at_reset == completed + losses +
        #: in_flight`` holds exactly for any warmup window.
        self.inflight: Dict[str, int] = {}
        self._inflight_at_reset: Dict[str, int] = {}
        #: optional server-side admission control
        #: (:class:`repro.overload.admission.AdmissionControl`); when set
        #: the fabric consults it before a packet occupies an RX ring.
        self.admission = None

    @property
    def links(self) -> List[Link]:
        return [self.link_in, self.link_out]

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def add_workload(self, app: App, rate_mops: float,
                     service_sampler: Callable[[], int],
                     payload_sampler: Optional[Callable[[], Tuple[int, int]]],
                     connections: int) -> None:
        """Register one L-app the clients will drive."""
        if rate_mops < 0:
            raise ValueError(f"negative rate {rate_mops}")
        self._specs.append((app, rate_mops, service_sampler,
                            payload_sampler, max(1, connections)))
        self.client_latency[app.name] = LatencyRecorder(
            f"client/{app.name}")
        self.stats[app.name] = {key: 0 for key in COUNTER_KEYS}
        self.inflight[app.name] = 0

    def connect(self, system) -> None:
        """Wire the fabric into ``system`` and start the generators."""
        if self.submit is not None:
            raise RuntimeError("fabric already connected")
        self.submit = system.submit
        system.net_fabric = self
        num_machines = len(self.machines)
        for app, rate, service_sampler, payload_sampler, conns \
                in self._specs:
            for machine in self.machines:
                conn_ids = [c for c in range(conns)
                            if c % num_machines == machine.index]
                if not conn_ids:
                    continue
                machine.add_workload(_ClientWorkload(
                    app, service_sampler, payload_sampler, conn_ids,
                    rate * len(conn_ids) / conns,
                    self.rngs.stream(
                        f"{self.cfg.stream_prefix()}/arrivals/"
                        f"{app.name}/{machine.index}")))
        for machine in self.machines:
            machine.start()

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def send_to_server(self, request: Request) -> None:
        request.on_complete = self._server_done
        if self.flight.enabled:
            self.flight.begin(request)
        self.link_in.send(request, request.bytes_in + self.cfg.header_bytes,
                          self._nic_rx)

    def _nic_rx(self, request: Request) -> None:
        if self.flight.enabled:
            self.flight.mark(request, "ingress")
        if self.admission is not None:
            reason = self.admission.reason_to_shed(request.app,
                                                   self.sim.now)
            if reason is not None:
                # Rejected before it occupies an RX ring slot: the
                # cheapest point to shed, and the rejection flows back to
                # the client like any response.
                self.admission.count_shed(request.app.name, reason,
                                          stage="ingress")
                self.shed_response(request)
                return
        self.nic.rx(request)

    def _server_intake(self, request: Request) -> None:
        # The ring restamped arrival_ns; from here the request follows
        # the exact direct-submit path through the scheduling system.
        self.submit(request)

    def _server_done(self, request: Request, now: int) -> None:
        """App.complete hook: ship the response back to its client."""
        # The "complete" mark lands here (not in the system's
        # ``flight.on_complete``) so a fault-injected drop inside
        # ``link_out.send`` finalizes a flight whose last mark is
        # already "complete" — the net_out stage exists even for
        # responses the link loses.
        if self.flight.enabled:
            self.flight.mark(request, "complete")
        self.link_out.send(request,
                           request.bytes_out + self.cfg.header_bytes,
                           self._deliver_response)

    def _deliver_response(self, request: Request) -> None:
        pending = request.net_token
        outcome = "dup" if pending.done else "done"
        pending.machine.on_response(request)
        if self.flight.enabled:
            self.flight.finalize(request, outcome)

    def shed_response(self, request: Request) -> None:
        """Admission control rejected ``request``; tell its client.

        The rejection is a tiny response riding the server->clients
        direction, so clients observe sheds with realistic delay and the
        accounting (``sheds`` counter, ``shed_response`` op) is exact.
        """
        self.bump(request.app.name, "sheds", op="shed_response")
        if self.flight.enabled:
            self.flight.mark(request, "shed")
        self.link_out.send(request, self.cfg.header_bytes,
                           self._deliver_shed)

    def _deliver_shed(self, request: Request) -> None:
        pending = request.net_token
        if pending is not None:
            pending.machine.on_shed(request)
        if self.flight.enabled:
            self.flight.finalize(request, "shed")

    def _on_drop(self, request: Request) -> None:
        """A link or NIC ring lost this packet; tell the owning client."""
        pending = request.net_token
        if pending is not None:
            pending.machine.on_drop(request)
        if self.flight.enabled:
            self.flight.finalize(request, "drop")

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def bump(self, app_name: str, key: str,
             op: Optional[str] = None) -> None:
        stats = self.stats.get(app_name)
        if stats is not None:
            stats[key] += 1
        if op is not None and self.ledger.enabled:
            self.ledger.count_op(op, domain="net")

    def add(self, app_name: str, key: str, amount: int) -> None:
        """Accumulate ``amount`` into a counter (e.g. ``backoff_ns``)."""
        stats = self.stats.get(app_name)
        if stats is not None:
            stats[key] += amount

    def inflight_inc(self, app_name: str) -> None:
        if app_name in self.inflight:
            self.inflight[app_name] += 1

    def inflight_dec(self, app_name: str) -> None:
        if app_name in self.inflight:
            self.inflight[app_name] -= 1

    def conservation(self) -> Dict[str, Dict[str, int]]:
        """Per-app accounting identity over the counted window.

        Every request offered in the window — plus every request already
        in flight when the window opened — terminates as exactly one of
        completed / lost, or is still in flight at the horizon, so
        ``balance`` is always 0.  (Sheds, timeouts, and retries are
        intermediate outcomes of attempts, not of logical requests, so
        they don't enter the identity.)
        """
        rows: Dict[str, Dict[str, int]] = {}
        for app, stats in self.stats.items():
            in_flight = self.inflight.get(app, 0)
            carried = self._inflight_at_reset.get(app, 0)
            rows[app] = {
                "offered": stats["offered"],
                "in_flight_at_reset": carried,
                "completed": stats["completed"],
                "losses": stats["losses"],
                "in_flight": in_flight,
                "balance": stats["offered"] + carried
                - stats["completed"] - stats["losses"] - in_flight,
            }
        return rows

    def record_latency(self, app_name: str, latency_ns: int) -> None:
        recorder = self.client_latency.get(app_name)
        if recorder is not None:
            recorder.record(latency_ns)

    def begin_measurement(self) -> None:
        """Drop warmup-phase client statistics (in-flight state stays)."""
        for recorder in self.client_latency.values():
            recorder.clear()
        for stats in self.stats.values():
            for key in stats:
                stats[key] = 0
        self._inflight_at_reset = dict(self.inflight)

    def counters_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {app: dict(stats) for app, stats in self.stats.items()}
