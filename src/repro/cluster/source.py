"""The aggregated open-loop client population.

Millions of connections cannot be objects — a fleet experiment would
spend all its time constructing clients.  Instead the population is
collapsed into *connection batches*: each batch stands for
``connections / batches`` real connections sharing a key class, and
carries the aggregate open-loop rate those connections offer.  The
balancer places batches (the way an L4 front-end places connections,
not requests), the per-server data plane replays each server's summed
batch rate as an ordinary open-loop arrival process, and the batch
weights are the *only* thing that distinguishes a uniform population
from a hot-key one.

Weights are drawn once, deterministically, from the run's named RNG
streams: a lognormal base weight per batch (real key popularity is
heavy-tailed even before skew), plus a ``hot_fraction`` of the total
load concentrated on ``hot_batches`` designated hot key classes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.config import ClusterConfig
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class ConnectionBatch:
    """One placed unit: a bundle of connections on one key class."""

    index: int
    #: stable key-class identity (what consistent hashing hashes)
    key: str
    #: real connections this batch aggregates
    connections: int
    #: fraction of the cluster's total offered load this batch carries
    weight: float

    def ring_hash(self) -> int:
        """Position of this batch's key class on the hash ring."""
        digest = hashlib.sha256(self.key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")


def make_batches(cluster: ClusterConfig,
                 rngs: RngStreams) -> List[ConnectionBatch]:
    """Draw the batch population (weights normalized to sum to 1).

    The hot batch indices are *sampled* from the run's RNG stream, not
    laid out on a stride, so round-robin's weakness is the honest one —
    it balances batch counts while staying blind to weights — and never
    an artifact of hot batches aligning with one ``index % N`` class.
    """
    rng = rngs.stream("cluster/batches")
    base: List[float] = [rng.lognormvariate(0.0, 0.5)
                         for _ in range(cluster.batches)]
    hot: List[int] = []
    if cluster.hot_fraction > 0:
        hot = sorted(rng.sample(range(cluster.batches),
                                cluster.hot_batches))
    cold_total = sum(w for i, w in enumerate(base) if i not in hot)
    hot_total = sum(base[i] for i in hot)
    batches: List[ConnectionBatch] = []
    for index in range(cluster.batches):
        if index in hot:
            weight = cluster.hot_fraction * base[index] / hot_total
        elif cold_total > 0:
            weight = ((1.0 - cluster.hot_fraction)
                      * base[index] / cold_total)
        else:  # pragma: no cover - all batches hot is rejected by config
            weight = 0.0
        batches.append(ConnectionBatch(
            index=index,
            key=f"key{index}",
            connections=cluster.connections_per_batch(),
            weight=weight,
        ))
    return batches


def assignment_rates(batches: List[ConnectionBatch],
                     assignment: List[int], num_servers: int,
                     total_rate_mops: float) -> List[float]:
    """Per-server offered rate implied by a batch->server assignment."""
    rates = [0.0] * num_servers
    for batch, server in zip(batches, assignment):
        rates[server] += batch.weight * total_rate_mops
    return rates


def hottest_share(batches: List[ConnectionBatch],
                  assignment: List[int], num_servers: int) -> float:
    """Largest per-server share of the total load (1/N == perfect)."""
    rates = assignment_rates(batches, assignment, num_servers, 1.0)
    return max(rates) if rates else 0.0


def describe_population(batches: List[ConnectionBatch]) -> Tuple[int, float]:
    """(total modeled connections, weight share of the top 10% batches)."""
    connections = sum(b.connections for b in batches)
    top = sorted((b.weight for b in batches), reverse=True)
    top_k = max(1, len(top) // 10)
    return connections, sum(top[:top_k])
