"""Configuration of a simulated server fleet.

One :class:`ClusterConfig` describes everything above a single server:
how many servers, how the aggregated client population is shaped (batch
count, connections, hot-key skew), which balancer policy fronts the
fleet, the control-plane epoch, and the coordinator's thresholds.  The
per-server simulation inherits the experiment's
:class:`~repro.experiments.common.ExperimentConfig` (workers, sim
window, seed, cost model) unchanged, so fleet runs stay comparable with
single-server runs of the same profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MS


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the fleet control plane (frozen, picklable)."""

    #: server machines behind the balancer
    num_servers: int = 4
    #: front-end policy: "round-robin" | "least-loaded" | "consistent-hash"
    lb_policy: str = "round-robin"
    #: total offered load as a fraction of the fleet's nominal L capacity
    #: (num_servers * per-server alone capacity)
    load_fraction: float = 0.6
    #: modeled client connections (aggregated — never per-object)
    connections: int = 2_000_000
    #: connection batches the balancer actually places (the aggregation
    #: unit: each batch stands for connections/batches real connections)
    batches: int = 64
    #: fraction of total load concentrated on the hot key classes
    #: (0 = uniform); the skew knob of the hot-key arms
    hot_fraction: float = 0.0
    #: number of batches carrying the hot keys
    hot_batches: int = 4
    #: client machines fronting each server's fabric (fewer than the
    #: single-server default of 4 — a fleet run simulates N fabrics)
    clients_per_server: int = 2
    #: control-plane epoch: LB feedback, load reports, coordinator law
    epoch_ms: float = 1.0
    #: epochs of lag on queue-depth feedback (staleness of reports)
    staleness_epochs: int = 1
    #: least-loaded: batch migrations allowed per epoch
    migrate_per_epoch: int = 2
    #: consistent-hash: virtual nodes per server on the ring
    vnodes: int = 8
    #: cluster-wide core-harvesting coordinator on/off
    coordinator: bool = False
    #: coordinator control law: harvest one BE core when a server's
    #: modeled utilization exceeds ``harvest_util``; return one when it
    #: has sat below ``return_util`` for ``hysteresis_epochs`` epochs
    harvest_util: float = 0.75
    return_util: float = 0.5
    hysteresis_epochs: int = 2
    #: memory-bus interference: how strongly BE work inflates L service
    #: times (the fig13 ``bus_sensitivity`` channel, per server)
    bus_sensitivity: float = 1.5
    #: fluid-model efficiency: fraction of nominal capacity a server
    #: sustains while best-effort work shares the memory bus (the
    #: control plane's planning estimate, not a measured quantity)
    interference_capacity: float = 0.72

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError(f"need >= 1 server, got {self.num_servers}")
        if self.batches < self.num_servers:
            raise ValueError(
                f"need >= 1 batch per server ({self.batches} batches, "
                f"{self.num_servers} servers)")
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1): {self.hot_fraction}")
        if self.hot_fraction > 0 and self.hot_batches < 1:
            raise ValueError("hot_fraction needs hot_batches >= 1")
        if self.staleness_epochs < 1:
            raise ValueError("staleness_epochs must be >= 1 (the balancer "
                             "never sees the current epoch's queues)")

    def epoch_ns(self) -> int:
        return int(self.epoch_ms * MS)

    def num_epochs(self, sim_ms: int) -> int:
        return max(1, int(round(sim_ms / self.epoch_ms)))

    def connections_per_batch(self) -> int:
        return max(1, self.connections // self.batches)
