"""Cluster-wide core harvesting.

Single-server core allocation already exists twice in this repo: the
Caladan-style 5 us allocator and the SLO autoscaler policy.  Both act
on *local* signals.  The fleet coordinator is the missing third level:
it watches every server's (stale) load reports and decides, per
server, how many cores best-effort work may hold — harvesting cores on
servers the balancer has overloaded so their latency tier regains the
full memory bus, and returning cores once a server has cooled.

The split mirrors the rest of the repo's control/data-plane design:

* :class:`Coordinator` is pure control plane.  It runs inside the
  serial fleet planner, consumes one `ServerLoadReport` per server per
  epoch (lagged by the report staleness), applies the control law

      util > harvest_util            ->  cap -= 1   (immediately)
      util < return_util, sustained  ->  cap += 1   (after
                                         ``hysteresis_epochs``)

  and records, per server, a ``(t_ns, cap)`` step schedule.
* :class:`ClusterCapPolicy` is the data-plane half: an ordinary
  registered scheduling policy (name ``"cluster-cap"``) that replays a
  precomputed schedule inside one server's simulation.  It subclasses
  the SLO autoscaler purely for its capped best-effort admission and
  eviction machinery — the *decisions* come from the schedule, not
  from local p99 measurements, which is what makes the servers
  independent and the fleet fan-out byte-identical under ``--jobs``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.fluid import ServerLoadReport
from repro.overload.autoscaler import SloAutoscalePolicy
from repro.sched.policy import Decision, SchedPolicy, register_policy

#: one server's cap timeline: (effective-from ns, best-effort core cap)
CapSchedule = Tuple[Tuple[int, int], ...]


class Coordinator:
    """The fleet-level harvest/return control law (control plane)."""

    def __init__(self, cluster: ClusterConfig, max_be_cores: int) -> None:
        self.cluster = cluster
        self.max_be_cores = max_be_cores
        self.caps: List[int] = [max_be_cores] * cluster.num_servers
        self._calm: List[int] = [0] * cluster.num_servers
        self._timelines: List[List[Tuple[int, int]]] = [
            [(0, max_be_cores)] for _ in range(cluster.num_servers)]
        self.harvests = 0
        self.returns = 0

    def on_reports(self, effective_ns: int,
                   reports: Sequence[ServerLoadReport]) -> None:
        """Apply one epoch of (stale) telemetry; cap changes take
        effect at ``effective_ns`` (the start of the next epoch)."""
        for report in reports:  # fixed server order: deterministic
            server = report.server
            cap = self.caps[server]
            if report.util > self.cluster.harvest_util:
                self._calm[server] = 0
                if cap > 0:
                    self._change(server, cap - 1, effective_ns)
                    self.harvests += 1
            elif report.util < self.cluster.return_util:
                self._calm[server] += 1
                if self._calm[server] >= self.cluster.hysteresis_epochs \
                        and cap < self.max_be_cores:
                    self._change(server, cap + 1, effective_ns)
                    self.returns += 1
                    self._calm[server] = 0
            else:
                self._calm[server] = 0

    def _change(self, server: int, cap: int, effective_ns: int) -> None:
        self.caps[server] = cap
        self._timelines[server].append((effective_ns, cap))

    def schedule(self, server: int) -> CapSchedule:
        """The ``(t_ns, cap)`` step timeline recorded for one server."""
        return tuple(self._timelines[server])

    def snapshot(self) -> dict:
        """JSON-friendly summary for the cluster report."""
        return {
            "harvests": self.harvests,
            "returns": self.returns,
            "final_caps": list(self.caps),
        }


@register_policy
class ClusterCapPolicy(SloAutoscalePolicy):
    """Replay a coordinator cap schedule inside one server (data plane).

    Inherits the autoscaler's capped ``on_core_idle`` admission and
    over-cap eviction; replaces its local p99 control law with the
    fleet schedule.  With the default schedule (uncapped forever) the
    policy admits best-effort work exactly like the base scheduler.
    """

    name = "cluster-cap"

    def __init__(self,
                 schedule: Sequence[Sequence[int]] = ((0, 1_000_000),),
                 **kwargs) -> None:
        super().__init__(**kwargs)
        #: normalized (t_ns, cap) steps, in time order
        self.schedule: CapSchedule = tuple(
            (int(t_ns), int(cap)) for t_ns, cap in schedule)
        last = -1
        for t_ns, cap in self.schedule:
            if t_ns <= last:
                raise ValueError("schedule steps must have increasing t_ns")
            if cap < 0:
                raise ValueError(f"negative cap {cap} at {t_ns} ns")
            last = t_ns
        self._next_step = 0

    def on_tick(self) -> Iterator[Decision]:
        if self.be_allowed is None:
            self._total_cores = sum(1 for _ in self.ctx.core_states())
            self.be_allowed = self._total_cores
        now = self.ctx.now
        while self._next_step < len(self.schedule) \
                and self.schedule[self._next_step][0] <= now:
            cap = min(self.schedule[self._next_step][1], self._total_cores)
            self._next_step += 1
            if cap == self.be_allowed:
                continue
            ledger = getattr(self.ctx, "ledger", None)
            if cap < self.be_allowed:
                self.harvests += self.be_allowed - cap
                self.be_allowed = cap
                if ledger is not None and ledger.enabled:
                    ledger.count_op("cluster:harvest", domain="policy")
                yield from self._evict_excess_be()
            else:
                self.returns += cap - self.be_allowed
                self.be_allowed = cap
                if ledger is not None and ledger.enabled:
                    ledger.count_op("cluster:return", domain="policy")
        # The grandparent's tick: default dispatch without the
        # autoscaler's local p99 control law.
        yield from SchedPolicy.on_tick(self)
