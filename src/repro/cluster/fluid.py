"""The control plane's fluid model of per-server load.

The balancer and the coordinator cannot see inside the per-server
simulations — those run later, possibly in other processes.  What a
real front-end sees is coarse feedback: per-server queue depths and
utilizations, sampled each control epoch and delivered late.  This
module is that feedback: a deterministic fluid approximation

    queue += (offered_rate - effective_capacity) * epoch

per server, where effective capacity shrinks to
``interference_capacity`` of nominal while best-effort work still
holds cores on the box (the planning-side view of the memory-bus
interference the detailed simulation models per request).

The model is intentionally crude — it is the *controller's estimate*,
not ground truth.  The detailed data-plane simulation is what actually
decides latencies; the fluid model only has to be good enough for the
balancer and coordinator to make sane decisions, exactly like a real
control plane acting on sampled telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.config import ClusterConfig


@dataclass(frozen=True)
class ServerLoadReport:
    """One server's telemetry for one control epoch."""

    server: int
    #: offered rate that epoch (Mops)
    rate_mops: float
    #: fluid queue estimate at epoch end (requests)
    queue: float
    #: offered rate / effective capacity (> 1 means falling behind)
    util: float
    #: best-effort cores the server was allowed that epoch
    be_cap: int


class FleetModel:
    """Per-server fluid queues, stepped once per control epoch."""

    def __init__(self, cluster: ClusterConfig,
                 capacity_mops: float) -> None:
        self.cluster = cluster
        #: nominal per-server L capacity with no BE interference (Mops)
        self.capacity_mops = capacity_mops
        self.queues = [0.0] * cluster.num_servers
        self._epoch_us = cluster.epoch_ns() / 1000.0

    def effective_capacity(self, be_cap: int) -> float:
        """Capacity while ``be_cap`` best-effort cores share the bus."""
        if be_cap > 0:
            return self.capacity_mops * self.cluster.interference_capacity
        return self.capacity_mops

    def step(self, rates_mops: Sequence[float],
             be_caps: Sequence[int]) -> List[ServerLoadReport]:
        """Advance one epoch; returns this epoch's telemetry."""
        reports: List[ServerLoadReport] = []
        for server in range(self.cluster.num_servers):
            capacity = self.effective_capacity(be_caps[server])
            rate = rates_mops[server]
            # rate/capacity are Mops == requests per microsecond.
            delta = (rate - capacity) * self._epoch_us
            self.queues[server] = max(0.0, self.queues[server] + delta)
            reports.append(ServerLoadReport(
                server=server,
                rate_mops=rate,
                queue=self.queues[server],
                util=rate / capacity if capacity > 0 else float("inf"),
                be_cap=be_caps[server],
            ))
        return reports
