"""The front-end load-balancer tier.

Three pluggable policies decide which server each connection batch
lands on, mirroring the front-end choices a real fleet has:

* **round-robin** — the L4 baseline: batches are dealt out cyclically.
  It balances batch *counts* and is blind to *weights*, so a hot-key
  population leaves one server carrying far more than 1/N of the load.
* **least-loaded** — an L7 balancer with feedback.  It starts from the
  same count-balanced deal (at t=0 it has observed nothing), then each
  control epoch it sees per-server load and per-batch request rates
  *lagged by* ``staleness_epochs`` and migrates up to
  ``migrate_per_epoch`` batches from the most- to the least-loaded
  server.  A migration happens only when the (stale) rates say it
  shrinks the spread, so the policy converges instead of oscillating —
  but staleness means it chases where the load *was*.
* **consistent-hash** — keys hash onto a ring of ``vnodes`` virtual
  nodes per server.  Placement is stable under server add/remove (only
  the arcs owned by the changed server move), which is exactly why it
  cannot react to skew: a hot key class stays pinned to its ring
  successor no matter how hot it gets.

Policies are pure functions of their inputs — no RNG, no wall clock —
so the control plane that drives them is deterministic by
construction.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple, Type

from repro.cluster.config import ClusterConfig
from repro.cluster.source import ConnectionBatch

#: one migration: (batch index, source server, destination server)
Migration = Tuple[int, int, int]


class LBPolicy:
    """Interface of a front-end placement policy."""

    name = "abstract"

    def __init__(self, cluster: ClusterConfig) -> None:
        self.cluster = cluster
        self.num_servers = cluster.num_servers

    def assign(self, batches: Sequence[ConnectionBatch]) -> List[int]:
        """Initial placement: server index for each batch, in order."""
        raise NotImplementedError

    def rebalance(self, assignment: List[int],
                  server_loads: Sequence[float],
                  batch_rates: Sequence[float]) -> List[Migration]:
        """One control epoch of feedback-driven migration.

        ``server_loads`` and ``batch_rates`` are the balancer's *stale*
        view (lagged by ``staleness_epochs``); ``assignment`` is the
        live placement and is mutated in place for each migration
        returned.  The default is the static policies' answer: none.
        """
        return []


class RoundRobinLB(LBPolicy):
    """Deal batches out cyclically — counts balanced, weights ignored."""

    name = "round-robin"

    def assign(self, batches: Sequence[ConnectionBatch]) -> List[int]:
        return [batch.index % self.num_servers for batch in batches]


class LeastLoadedLB(LBPolicy):
    """Feedback-driven migration on top of the round-robin deal.

    Cold start is count-balanced (nothing has been observed yet); from
    then on every epoch greedily moves the heaviest batch whose move
    strictly shrinks the load spread between the most- and
    least-loaded servers, up to ``migrate_per_epoch`` moves.  All
    tie-breaks are by lowest index, so two runs of the same fleet make
    identical decisions.
    """

    name = "least-loaded"

    #: relative spread below which the fleet counts as balanced
    SPREAD_TOLERANCE = 0.02

    def assign(self, batches: Sequence[ConnectionBatch]) -> List[int]:
        return [batch.index % self.num_servers for batch in batches]

    def rebalance(self, assignment: List[int],
                  server_loads: Sequence[float],
                  batch_rates: Sequence[float]) -> List[Migration]:
        # The balancer plans against what it *observed* — the stale
        # ``server_loads`` — updated only by its own hypothetical moves
        # this epoch.  With a large staleness lag a server it already
        # drained still looks hot for several epochs, so the policy
        # over-corrects; that is the intended fidelity, not a bug.
        loads = list(server_loads)
        mean_load = sum(loads) / self.num_servers
        migrations: List[Migration] = []
        for _ in range(self.cluster.migrate_per_epoch):
            src = min(range(self.num_servers), key=lambda s: (-loads[s], s))
            dst = min(range(self.num_servers), key=lambda s: (loads[s], s))
            gap = loads[src] - loads[dst]
            if mean_load <= 0 or gap < self.SPREAD_TOLERANCE * mean_load:
                break
            # Heaviest batch on src whose move strictly improves the
            # pairwise max: any rate below the gap qualifies.
            candidate = -1
            candidate_rate = 0.0
            for batch_idx, server in enumerate(assignment):
                rate = batch_rates[batch_idx]
                if server == src and 0.0 < rate < gap \
                        and rate > candidate_rate:
                    candidate = batch_idx
                    candidate_rate = rate
            if candidate < 0:
                break
            assignment[candidate] = dst
            loads[src] -= candidate_rate
            loads[dst] += candidate_rate
            migrations.append((candidate, src, dst))
        return migrations


class ConsistentHashLB(LBPolicy):
    """SHA-256 ring with virtual nodes; stable, skew-oblivious."""

    name = "consistent-hash"

    def __init__(self, cluster: ClusterConfig) -> None:
        super().__init__(cluster)
        self.servers: List[int] = list(range(cluster.num_servers))
        self._build_ring()

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _build_ring(self) -> None:
        points: List[Tuple[int, int]] = []
        for server in self.servers:
            for vnode in range(self.cluster.vnodes):
                points.append((self._point(f"server{server}/vnode{vnode}"),
                               server))
        points.sort()
        self._ring_points = [p for p, _ in points]
        self._ring_servers = [s for _, s in points]

    def add_server(self, server: int) -> None:
        """Grow the fleet; only arcs now owned by ``server`` move."""
        if server in self.servers:
            raise ValueError(f"server {server} already on the ring")
        self.servers.append(server)
        self.servers.sort()
        self._build_ring()

    def remove_server(self, server: int) -> None:
        """Shrink the fleet; only ``server``'s arcs are reassigned."""
        if len(self.servers) == 1 and server in self.servers:
            raise ValueError("cannot remove the last server")
        self.servers.remove(server)
        self._build_ring()

    def lookup(self, ring_hash: int) -> int:
        """Clockwise successor of a key's position on the ring."""
        idx = bisect.bisect_right(self._ring_points, ring_hash)
        if idx == len(self._ring_points):
            idx = 0
        return self._ring_servers[idx]

    def assign(self, batches: Sequence[ConnectionBatch]) -> List[int]:
        return [self.lookup(batch.ring_hash()) for batch in batches]


LB_POLICIES: Dict[str, Type[LBPolicy]] = {
    policy.name: policy
    for policy in (RoundRobinLB, LeastLoadedLB, ConsistentHashLB)
}


def make_lb(cluster: ClusterConfig) -> LBPolicy:
    """Instantiate the policy named by ``cluster.lb_policy``."""
    try:
        policy = LB_POLICIES[cluster.lb_policy]
    except KeyError:
        raise ValueError(
            f"unknown lb_policy {cluster.lb_policy!r}; "
            f"choose from {sorted(LB_POLICIES)}") from None
    return policy(cluster)
