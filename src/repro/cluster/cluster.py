"""The fleet orchestrator: plan serially, simulate in parallel, merge.

A :class:`Cluster` run happens in three strictly separated stages:

1. **Plan** (serial, cheap, pure): draw the connection-batch
   population, place it with the configured LB policy, then walk the
   run epoch by epoch — the fluid model produces per-server telemetry,
   the balancer and coordinator act on it ``staleness_epochs`` late,
   and every decision is recorded as data: a per-server offered-rate
   timeline and a per-server ``(t_ns, cap)`` core-cap schedule.
2. **Simulate** (parallel): each server becomes one ordinary
   ``run_colocation`` task — its own Simulator, spawned RNG root,
   ``server_id``-namespaced NIC fabric, its rate timeline replayed as
   a ``LoadTrace`` and its cap schedule replayed by the
   ``cluster-cap`` policy.  The tasks share nothing, so
   ``run_colocation_batch`` fans them out over ``--jobs`` processes
   with byte-identical results.
3. **Merge** (serial, in server order): per-server latency recorders
   fold through the exact log-histogram merge into cluster-wide
   percentiles; reliability counters and throughput sum.

The plan stage is the only place cross-server coupling exists, and it
finishes before any server simulation starts — that ordering, not
luck, is why the fleet is deterministic under any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.coordinator import CapSchedule, Coordinator
from repro.cluster.fluid import FleetModel, ServerLoadReport
from repro.cluster.lb import make_lb
from repro.cluster.source import (
    ConnectionBatch, assignment_rates, hottest_share, make_batches)
from repro.net import NetConfig
from repro.obs.hist import LogHistogram
from repro.overload.trace import LoadTrace
from repro.sim.rng import RngStreams
from repro.sched.base import SystemReport
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

#: the latency app every server runs (one tenant, fleet-wide keyspace)
L_APP_NAME = "mc"


@dataclass
class ClusterPlan:
    """Everything the control plane decided, as replayable data."""

    batches: List[ConnectionBatch]
    #: final batch -> server placement (after all migrations)
    assignment: List[int]
    #: per-server offered rate (Mops) for each control epoch
    rate_timelines: List[List[float]]
    #: (epoch, batch, src, dst) for every feedback-driven migration
    migrations: List[Tuple[int, int, int, int]]
    #: per-server BE core-cap schedules (None without a coordinator)
    cap_schedules: Optional[List[CapSchedule]]
    #: fleet-wide offered rate (Mops)
    total_rate_mops: float
    #: largest per-server load share before / after feedback
    hottest_initial: float
    hottest_final: float
    #: fluid-model telemetry per epoch (the controllers' world view)
    fluid_history: List[List[ServerLoadReport]] = field(repr=False,
                                                        default_factory=list)
    coordinator_stats: Dict = field(default_factory=dict)


@dataclass
class ClusterReport:
    """One fleet run, merged (all aggregation is exact, never
    percentile-of-percentiles)."""

    system: str
    cluster: ClusterConfig
    plan: ClusterPlan = field(repr=False, default=None)
    server_reports: List[SystemReport] = field(repr=False,
                                               default_factory=list)
    #: cluster-wide client-observed latency summary per app (merged
    #: log-histograms across every server's recorder)
    client_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: cluster-wide server-side latency summary per app
    latency_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: summed per-app completions across servers
    completed: Dict[str, int] = field(default_factory=dict)
    #: summed per-app client reliability counters
    net_ops: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: summed per-B-app useful nanoseconds
    useful_ns: Dict[str, int] = field(default_factory=dict)
    #: total discrete events across the fleet's simulators
    events_fired: int = 0
    #: per-app, per-server client p99 (diagnosis: where the tail lives)
    per_server_p99_us: Dict[str, List[float]] = field(default_factory=dict)

    def p99_us(self, app_name: str = L_APP_NAME) -> float:
        return self.client_summary.get(app_name, {}).get("p99_us",
                                                         float("nan"))

    def throughput_mops(self, app_name: str = L_APP_NAME) -> float:
        elapsed = max((r.elapsed_ns for r in self.server_reports),
                      default=0)
        if elapsed <= 0:
            return 0.0
        return self.completed.get(app_name, 0) * 1000.0 / elapsed

    def loss_fraction(self, app_name: str = L_APP_NAME) -> float:
        ops = self.net_ops.get(app_name, {})
        offered = ops.get("offered", 0)
        return ops.get("losses", 0) / offered if offered else 0.0

    def fingerprint(self) -> str:
        """Canonical repr of every merged figure — two runs are 'the
        same run' iff these strings match byte-for-byte."""
        net_ops = sorted((app, sorted(counters.items()))
                         for app, counters in self.net_ops.items())
        parts = [
            f"system={self.system}",
            f"lb={self.cluster.lb_policy}",
            f"coordinator={self.cluster.coordinator}",
            f"client={sorted(self.client_summary.items())!r}",
            f"server={sorted(self.latency_summary.items())!r}",
            f"completed={sorted(self.completed.items())!r}",
            f"net_ops={net_ops!r}",
            f"useful={sorted(self.useful_ns.items())!r}",
            f"events={self.events_fired}",
            f"per_server_p99={sorted(self.per_server_p99_us.items())!r}",
            f"migrations={self.plan.migrations!r}",
            f"caps={self.plan.cap_schedules!r}",
            f"hottest={self.plan.hottest_initial:.6f}"
            f"->{self.plan.hottest_final:.6f}",
        ]
        return "; ".join(parts)


class Cluster:
    """N servers behind one balancer, run as one deterministic unit."""

    def __init__(self, system: str, cfg, cluster: ClusterConfig) -> None:
        from repro.experiments.common import l_capacity_mops
        self.system = system
        self.cfg = cfg
        self.cluster = cluster
        #: nominal per-server L capacity, no interference (Mops)
        self.server_capacity_mops = l_capacity_mops(
            cfg, MEMCACHED_MEAN_SERVICE_NS)
        self.total_rate_mops = (cluster.load_fraction
                                * cluster.num_servers
                                * self.server_capacity_mops)

    # -- stage 1: the serial control plane ------------------------------
    def plan(self) -> ClusterPlan:
        cfg, cluster = self.cfg, self.cluster
        rngs = RngStreams(cfg.seed).spawn("cluster")
        batches = make_batches(cluster, rngs)
        lb = make_lb(cluster)
        assignment = lb.assign(batches)
        hottest_initial = hottest_share(batches, assignment,
                                        cluster.num_servers)
        model = FleetModel(cluster, self.server_capacity_mops)
        coordinator = Coordinator(cluster, max_be_cores=cfg.num_workers) \
            if cluster.coordinator else None
        batch_rates = [b.weight * self.total_rate_mops for b in batches]
        epoch_us = cluster.epoch_ns() / 1000.0
        epochs = cluster.num_epochs(cfg.sim_ms)

        timelines: List[List[float]] = [[] for _ in range(cluster.num_servers)]
        history: List[List[ServerLoadReport]] = []
        migrations: List[Tuple[int, int, int, int]] = []
        for epoch in range(epochs):
            stale_epoch = epoch - cluster.staleness_epochs
            if stale_epoch >= 0:
                stale = history[stale_epoch]
                # Queue-depth feedback: a backlogged server reads as
                # its offered rate plus the rate needed to drain the
                # (stale) queue within one epoch.
                loads = [r.rate_mops + r.queue / epoch_us for r in stale]
                moves = lb.rebalance(assignment, loads, batch_rates)
                migrations.extend((epoch, batch, src, dst)
                                  for batch, src, dst in moves)
                if coordinator is not None:
                    coordinator.on_reports(epoch * cluster.epoch_ns(),
                                           stale)
            caps = list(coordinator.caps) if coordinator is not None \
                else [cfg.num_workers] * cluster.num_servers
            rates = assignment_rates(batches, assignment,
                                     cluster.num_servers,
                                     self.total_rate_mops)
            for server in range(cluster.num_servers):
                timelines[server].append(rates[server])
            history.append(model.step(rates, caps))

        return ClusterPlan(
            batches=batches,
            assignment=list(assignment),
            rate_timelines=timelines,
            migrations=migrations,
            cap_schedules=[coordinator.schedule(s)
                           for s in range(cluster.num_servers)]
            if coordinator is not None else None,
            total_rate_mops=self.total_rate_mops,
            hottest_initial=hottest_initial,
            hottest_final=hottest_share(batches, assignment,
                                        cluster.num_servers),
            fluid_history=history,
            coordinator_stats=coordinator.snapshot()
            if coordinator is not None else {},
        )

    # -- stage 2: the parallel data plane -------------------------------
    def server_tasks(self, plan: ClusterPlan,
                     fault_plan=None) -> List[Tuple[str, object, Dict]]:
        """One ``run_colocation_batch`` task per server."""
        cfg, cluster = self.cfg, self.cluster
        base_rate = self.total_rate_mops / cluster.num_servers
        tasks = []
        for server in range(cluster.num_servers):
            server_cfg = cfg.scaled(
                net=NetConfig(server_id=server,
                              clients=cluster.clients_per_server))
            if plan.cap_schedules is not None and self.system == "vessel":
                server_cfg = server_cfg.scaled(
                    policy="cluster-cap",
                    policy_params={
                        "schedule": plan.cap_schedules[server]})
            kwargs = dict(
                l_specs=[("memcached", L_APP_NAME, base_rate)],
                b_specs=("membench",),
                bus_sensitivity=cluster.bus_sensitivity,
                trace=LoadTrace.from_rates(base_rate, cluster.epoch_ms,
                                           plan.rate_timelines[server]),
                rng_namespace=f"cluster/server{server}",
            )
            if fault_plan is not None:
                kwargs["fault_plan"] = fault_plan
            tasks.append((self.system, server_cfg, kwargs))
        return tasks

    # -- stage 3: the merge ---------------------------------------------
    def run(self, jobs: int = 1, fault_plan=None) -> ClusterReport:
        from repro.experiments.common import run_colocation_batch
        plan = self.plan()
        reports = run_colocation_batch(
            self.server_tasks(plan, fault_plan=fault_plan), jobs=jobs)
        return self.merge(plan, reports)

    def merge(self, plan: ClusterPlan,
              reports: Sequence[SystemReport]) -> ClusterReport:
        out = ClusterReport(system=self.system, cluster=self.cluster,
                            plan=plan, server_reports=list(reports))
        client_hists: Dict[str, List[LogHistogram]] = {}
        server_hists: Dict[str, List[LogHistogram]] = {}
        for report in reports:  # server order == task order: stable
            out.events_fired += report.events_fired
            for name, hist in report.client_hist.items():
                client_hists.setdefault(name, []).append(hist)
                out.per_server_p99_us.setdefault(name, []).append(
                    round(hist.percentile_us(99.0), 3))
            for name, hist in report.latency_hist.items():
                server_hists.setdefault(name, []).append(hist)
            for name, count in report.completed.items():
                out.completed[name] = out.completed.get(name, 0) + count
            for name, useful in report.useful_ns.items():
                out.useful_ns[name] = out.useful_ns.get(name, 0) + useful
            for name, counters in report.net_ops.items():
                merged = out.net_ops.setdefault(name, {})
                for key, value in counters.items():
                    merged[key] = merged.get(key, 0) + value
        for name, hists in client_hists.items():
            out.client_summary[name] = LogHistogram.merged(hists).summary()
        for name, hists in server_hists.items():
            out.latency_summary[name] = LogHistogram.merged(hists).summary()
        return out
