"""Multi-server fleet simulation with a load-balancer tier.

One box is no longer the system: ``repro.cluster`` models N
VESSEL/Caladan servers behind a front-end balancer serving millions of
simulated connections.  See DESIGN.md §14 for the architecture; the
short version:

* a **control plane** (this package, pure Python, serial and cheap)
  aggregates the client population into connection batches
  (:mod:`repro.cluster.source`), assigns and re-assigns batches to
  servers under a pluggable LB policy (:mod:`repro.cluster.lb`) fed by
  a lagged fluid load model (:mod:`repro.cluster.fluid`), and runs the
  cluster-wide core-harvesting coordinator
  (:mod:`repro.cluster.coordinator`);
* a **data plane**: each server replays its balancer-assigned load
  curve through a full single-server simulation (the existing
  ``run_colocation`` stack — NIC, clients, scheduler, ledger), fanned
  out over worker processes via ``run_colocation_batch``;
* a **merge**: per-server latency recorders fold into one cluster
  histogram via the exact log-histogram merge
  (:class:`repro.obs.hist.LogHistogram`), counters sum.

Determinism: the control plane draws only from named RNG streams, the
per-server simulations are hermetic (each gets its own spawned stream
root and a ``server_id``-namespaced fabric), and all merging happens in
server order — so ``--jobs N`` is byte-identical to serial.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import Cluster, ClusterReport
from repro.cluster.lb import LB_POLICIES, make_lb
from repro.cluster.source import ConnectionBatch, make_batches

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterReport",
    "ConnectionBatch",
    "LB_POLICIES",
    "make_batches",
    "make_lb",
]
