"""Declarative, seeded fault plans.

A plan is data, not behaviour: a seed plus an ordered list of
:class:`FaultSpec` rows.  Two plans with equal fingerprints injected
into identical simulations produce byte-identical results — the
determinism tests and the CI chaos job both rely on this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class FaultKind(enum.Enum):
    DROP_UINTR = "drop_uintr"        #: lose Uintr notifications in flight
    DELAY_UINTR = "delay_uintr"      #: add latency to Uintr deliveries
    CRASH_UTHREAD = "crash_uthread"  #: MPK fault -> SIGSEGV in a uThread
    ROGUE_THREAD = "rogue_thread"    #: BE thread ignores preemption
    STALL_SCHEDULER = "stall_scheduler"  #: scheduler core stops polling
    DROP_PACKET = "drop_packet"      #: lose packets on a simulated link
    DELAY_PACKET = "delay_packet"    #: add latency to packets on a link


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``at_ns`` is when the fault arms (point faults fire then; rate
    faults like DROP_UINTR apply from then on).  ``app`` names the
    victim application for the targeted kinds.  ``probability`` is the
    per-send drop chance for DROP_UINTR; ``delay_ns`` the added latency
    for DELAY_UINTR.
    """

    kind: FaultKind
    at_ns: int = 0
    app: Optional[str] = None
    probability: float = 0.0
    delay_ns: int = 0

    def describe(self) -> str:
        parts = [self.kind.value, f"at={self.at_ns}"]
        if self.app is not None:
            parts.append(f"app={self.app}")
        if self.probability:
            parts.append(f"p={self.probability}")
        if self.delay_ns:
            parts.append(f"delay={self.delay_ns}")
        return " ".join(parts)


class FaultPlan:
    """A seeded collection of fault specs with fluent builders."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.specs: List[FaultSpec] = []

    # -- fluent builders -------------------------------------------------
    def drop_uintr(self, probability: float, at_ns: int = 0) -> "FaultPlan":
        """Drop each Uintr notification with ``probability`` from
        ``at_ns`` on (the posted vector survives; only the doorbell is
        lost)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        self.specs.append(FaultSpec(FaultKind.DROP_UINTR, at_ns=at_ns,
                                    probability=probability))
        return self

    def delay_uintr(self, delay_ns: int, probability: float = 1.0,
                    at_ns: int = 0) -> "FaultPlan":
        """Add ``delay_ns`` to each Uintr delivery with ``probability``
        from ``at_ns`` on."""
        if delay_ns <= 0:
            raise ValueError(f"delay must be positive: {delay_ns}")
        self.specs.append(FaultSpec(FaultKind.DELAY_UINTR, at_ns=at_ns,
                                    probability=probability,
                                    delay_ns=delay_ns))
        return self

    def crash(self, app: str, at_ns: int) -> "FaultPlan":
        """An MPK fault fires inside a running thread of ``app`` at
        ``at_ns`` (re-armed until the app is actually on a core)."""
        self.specs.append(FaultSpec(FaultKind.CRASH_UTHREAD, at_ns=at_ns,
                                    app=app))
        return self

    def rogue_thread(self, app: str, at_ns: int) -> "FaultPlan":
        """Mark a running thread of ``app`` non-cooperative at
        ``at_ns``."""
        self.specs.append(FaultSpec(FaultKind.ROGUE_THREAD, at_ns=at_ns,
                                    app=app))
        return self

    def stall_scheduler(self, at_ns: int) -> "FaultPlan":
        """The dedicated scheduler core stops polling at ``at_ns``."""
        self.specs.append(FaultSpec(FaultKind.STALL_SCHEDULER, at_ns=at_ns))
        return self

    def drop_packets(self, probability: float, at_ns: int = 0) -> "FaultPlan":
        """Drop each packet on the network links with ``probability``
        from ``at_ns`` on (requires a ``repro.net`` fabric; clients see
        the loss and retry)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        self.specs.append(FaultSpec(FaultKind.DROP_PACKET, at_ns=at_ns,
                                    probability=probability))
        return self

    def delay_packets(self, delay_ns: int, probability: float = 1.0,
                      at_ns: int = 0) -> "FaultPlan":
        """Add ``delay_ns`` to each link traversal with ``probability``
        from ``at_ns`` on (a congested or flapping switch port)."""
        if delay_ns <= 0:
            raise ValueError(f"delay must be positive: {delay_ns}")
        self.specs.append(FaultSpec(FaultKind.DELAY_PACKET, at_ns=at_ns,
                                    probability=probability,
                                    delay_ns=delay_ns))
        return self

    # -------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable textual identity of the plan (seed + every spec)."""
        rows = "; ".join(spec.describe() for spec in self.specs)
        return f"seed={self.seed}: {rows}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {self.fingerprint()}>"
