"""Executes a :class:`FaultPlan` against a running VESSEL system.

The injector owns its own deterministic RNG (derived from the plan
seed), so injection decisions never perturb the workload's random
streams — a faulted run and a fault-free run see identical arrivals and
service times, which is what makes before/after latency comparisons
meaningful.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.hardware.uintr import UINTR_DROP
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

#: how long a crash/rogue spec waits before re-probing when its victim
#: app is momentarily off-core
_REARM_NS = 5_000


class FaultInjector:
    """Attaches a plan to a VesselSystem and tracks containment."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.injected: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self.system = None
        self._drop_specs: List[FaultSpec] = []
        self._delay_specs: List[FaultSpec] = []
        self._pkt_drop_specs: List[FaultSpec] = []
        self._pkt_delay_specs: List[FaultSpec] = []

    # -------------------------------------------------------------------
    def attach(self, system) -> None:
        """Wire the plan into ``system`` (call after ``system.start()``)."""
        if self.system is not None:
            raise RuntimeError("injector already attached")
        self.system = system
        self._drop_specs = [s for s in self.plan.specs
                            if s.kind is FaultKind.DROP_UINTR]
        self._delay_specs = [s for s in self.plan.specs
                             if s.kind is FaultKind.DELAY_UINTR]
        if self._drop_specs or self._delay_specs:
            system.machine.uintr.inject = self._uintr_disposition
        self._pkt_drop_specs = [s for s in self.plan.specs
                                if s.kind is FaultKind.DROP_PACKET]
        self._pkt_delay_specs = [s for s in self.plan.specs
                                 if s.kind is FaultKind.DELAY_PACKET]
        if self._pkt_drop_specs or self._pkt_delay_specs:
            fabric = getattr(system, "net_fabric", None)
            if fabric is None:
                raise RuntimeError(
                    "packet fault specs need a network fabric "
                    "(run with a NetConfig / --net)")
            for link in fabric.links:
                link.inject = self._link_disposition
        for spec in self.plan.specs:
            if spec.kind is FaultKind.CRASH_UTHREAD:
                system.sim.at(spec.at_ns, self._crash, spec)
            elif spec.kind is FaultKind.ROGUE_THREAD:
                system.sim.at(spec.at_ns, self._rogue, spec)
            elif spec.kind is FaultKind.STALL_SCHEDULER:
                system.sim.at(spec.at_ns, self._stall)

    # -------------------------------------------------------------------
    # Uintr dispositions (fault classes "a": dropped / delayed delivery)
    # -------------------------------------------------------------------
    def _uintr_disposition(self, sender_id: int, receiver_id: int,
                           vector: int) -> Optional[int]:
        now = self.system.sim.now
        for spec in self._drop_specs:
            if now >= spec.at_ns and self.rng.random() < spec.probability:
                self.injected[FaultKind.DROP_UINTR] += 1
                return UINTR_DROP
        for spec in self._delay_specs:
            if now >= spec.at_ns and self.rng.random() < spec.probability:
                self.injected[FaultKind.DELAY_UINTR] += 1
                return spec.delay_ns
        return None

    # -------------------------------------------------------------------
    # Link dispositions (packet loss / delay on the simulated wire)
    # -------------------------------------------------------------------
    def _link_disposition(self, request, nbytes: int) -> Optional[int]:
        from repro.net.link import LINK_DROP
        now = self.system.sim.now
        for spec in self._pkt_drop_specs:
            if now >= spec.at_ns and self.rng.random() < spec.probability:
                self.injected[FaultKind.DROP_PACKET] += 1
                if self.system.ledger.enabled:
                    self.system.ledger.count_op("fault:packet_drop",
                                                domain="fault")
                return LINK_DROP
        for spec in self._pkt_delay_specs:
            if now >= spec.at_ns and self.rng.random() < spec.probability:
                self.injected[FaultKind.DELAY_PACKET] += 1
                if self.system.ledger.enabled:
                    self.system.ledger.count_op("fault:packet_delay",
                                                domain="fault")
                return spec.delay_ns
        return None

    # -------------------------------------------------------------------
    # Point faults
    # -------------------------------------------------------------------
    def _crash(self, spec: FaultSpec) -> None:
        system = self.system
        if spec.app not in system._apps:
            return  # the victim is already gone
        if system.crash_uproc(spec.app):
            self.injected[FaultKind.CRASH_UTHREAD] += 1
        else:
            # Victim not on a core right now; re-arm.
            system.sim.after(_REARM_NS, self._crash, spec)

    def _rogue(self, spec: FaultSpec) -> None:
        system = self.system
        if spec.app not in system._apps:
            return
        if system.make_rogue(spec.app):
            self.injected[FaultKind.ROGUE_THREAD] += 1
        else:
            system.sim.after(_REARM_NS, self._rogue, spec)

    def _stall(self) -> None:
        self.system.stall_scheduler()
        self.injected[FaultKind.STALL_SCHEDULER] += 1

    # -------------------------------------------------------------------
    # Containment audit
    # -------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def uncontained(self) -> List[str]:
        """Post-run audit: every way a fault can have escaped containment.

        Empty list == every injected fault was absorbed.  Run this after
        the simulation has drained (or at its horizon).
        """
        system = self.system
        issues: List[str] = []
        if system is None:
            return issues
        for cs in system._cores.values():
            if cs.core.wedged:
                issues.append(f"core {cs.core.id} wedged")
        if system._sched_stalled:
            issues.append("scheduler core still stalled")
        grace = (2 * system.preempt_ack_ns
                 + system.costs.ipi_deliver_ns
                 + system.costs.kernel_ctx_switch_ns + 1_000)
        for core_id, pending in system._pending_preempts.items():
            if system.sim.now - pending.sent_at > grace:
                issues.append(
                    f"preemption of core {core_id} unacknowledged for "
                    f"{system.sim.now - pending.sent_at} ns")
        for uproc in system.domain.uprocs:
            if uproc.alive or not uproc.slot.in_use:
                continue
            if any(u.alive and u.slot is uproc.slot
                   for u in system.domain.uprocs):
                continue  # the slot was legitimately reallocated
            issues.append(f"{uproc.name}: SMAS slot {uproc.slot.index} "
                          "leaked after death")
        for uproc, fds in system.runtime._kernel_fds.items():
            if not uproc.alive and fds:
                issues.append(f"{uproc.name}: {len(fds)} kernel "
                              "descriptors leaked after death")
        # Churn-aware checks: under continuous create/destroy, teardown
        # must leave no per-tenant residue in kernel-side tables.
        signals = getattr(system, "signals", None)
        if signals is not None:
            for pid, signo in signals.stale_handlers():
                issues.append(f"signal handler ({pid}, {signo}) leaked "
                              "after owner death")
        manager = getattr(system, "manager", None)
        if manager is not None:
            dead_children = sum(1 for child in manager.kprocess.children
                                if not child.alive)
            if dead_children:
                issues.append(f"{dead_children} dead boot kProcess(es) "
                              "still on the manager's child list")
        return issues
