"""Deterministic fault injection for the uProcess/VESSEL stack.

A :class:`~repro.faults.plan.FaultPlan` is a seeded, declarative list of
faults to inject — dropped/delayed Uintr deliveries, a uThread crash
(MPK fault -> SIGSEGV), a non-cooperative best-effort thread, a stalled
scheduler core.  A :class:`~repro.faults.injector.FaultInjector`
executes the plan against a running :class:`VesselSystem` and records
what it injected and whether the system contained it.

Same seed + same plan => identical injection decisions, so chaos runs
are exactly reproducible (and CI can assert zero uncontained faults).
"""

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.injector import FaultInjector

__all__ = ["FaultKind", "FaultPlan", "FaultSpec", "FaultInjector"]
