"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro                      # run every experiment (smoke)
    python -m repro tab1 fig09           # selected experiments
    python -m repro --jobs 4             # fan experiments out over processes
    python -m repro fig09 --jobs 4       # fan one experiment's sweep out
    python -m repro bench                # wall-clock benchmark harness
    python -m repro --list
    python -m repro --scale paper fig09

Parallelism policy (``--jobs N``): with several experiments selected the
experiments themselves run in worker processes (their stdout is captured
and re-printed in selection order); with a single experiment its
internal sweep points fan out instead (``ExperimentConfig.jobs``).
Either way the bytes on stdout are identical to a ``--jobs 1`` run under
the same seed — every simulation owns its Simulator and seeded RNG
streams, so only the merge order matters, and that is always task order.
Per-experiment wall-clock lines go to stderr so they never perturb the
comparable output.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

EXPERIMENTS = {
    "tab1": "repro.experiments.tab1_context_switch",
    "fig01": "repro.experiments.fig01_colocation_cost",
    "fig02": "repro.experiments.fig02_dense_cost",
    "fig03": "repro.experiments.fig03_realloc_timeline",
    "fig07": "repro.experiments.fig07_timeline",
    "fig09": "repro.experiments.fig09_colocation",
    "fig10": "repro.experiments.fig10_dense",
    "fig11": "repro.experiments.fig11_cache",
    "fig12": "repro.experiments.fig12_scalability",
    "fig13": "repro.experiments.fig13_membw",
    "micro": "repro.experiments.micro_uintr",
    "chaos": "repro.experiments.fault_chaos",
    "net": "repro.experiments.net_smoke",
    "ablations": "repro.experiments.ablations",
    "sensitivity": "repro.experiments.sensitivity",
    "policies": "repro.experiments.policy_zoo",
    "churn": "repro.experiments.churn",
    "flashcrowd": "repro.experiments.flashcrowd",
    "oversub": "repro.experiments.oversub",
    "overload": "repro.experiments.overload_suite",
    "tracecheck": "repro.experiments.tracecheck",
    "cluster": "repro.experiments.cluster",
    "fluidcheck": "repro.experiments.fluid_check",
}

#: scenario entries with their own flag sets (--smoke etc.); a leading
#: argv[0] match routes straight to the module's cli_main, like bench
_CLI_EXPERIMENTS = {
    "policies": "repro.experiments.policy_zoo",
    "churn": "repro.experiments.churn",
    "flashcrowd": "repro.experiments.flashcrowd",
    "oversub": "repro.experiments.oversub",
    "overload": "repro.experiments.overload_suite",
    "tracecheck": "repro.experiments.tracecheck",
    "cluster": "repro.experiments.cluster",
    "fluidcheck": "repro.experiments.fluid_check",
}


def _banner(name: str) -> str:
    return f"\n{'=' * 72}\n{name}  ({EXPERIMENTS[name]})\n{'=' * 72}\n"


def _run_one_captured(task: Tuple[str, str, object]) -> Tuple[str, str, float]:
    """Pool worker: run one experiment with stdout captured."""
    name, module_name, cfg = task
    module = importlib.import_module(module_name)
    buffer = io.StringIO()
    started = time.perf_counter()
    with contextlib.redirect_stdout(buffer):
        module.main(cfg)
    return name, buffer.getvalue(), time.perf_counter() - started


def run_experiments(selected: Sequence[str], cfg, jobs: int = 1,
                    stream: Optional[TextIO] = None) -> Dict[str, float]:
    """Run experiment modules; returns per-experiment wall seconds.

    Output goes to ``stream`` (default: the real stdout).  With
    ``jobs > 1`` and several experiments, each runs in a worker process
    and its captured stdout is re-printed in selection order; with a
    single experiment, ``cfg.jobs`` is raised instead so the
    experiment's internal sweep fans out.  Both paths produce the same
    bytes as a serial run.
    """
    from repro.perf.parallel import parallel_map

    out = stream if stream is not None else sys.stdout
    timings: Dict[str, float] = {}
    if jobs > 1 and len(selected) > 1:
        worker_cfg = replace(cfg, jobs=1)
        tasks = [(name, EXPERIMENTS[name], worker_cfg) for name in selected]
        for name, text, took in parallel_map(_run_one_captured, tasks, jobs):
            out.write(_banner(name))
            out.write(text)
            timings[name] = took
    else:
        if jobs > 1:
            cfg = replace(cfg, jobs=jobs)
        for name in selected:
            module = importlib.import_module(EXPERIMENTS[name])
            out.write(_banner(name))
            out.flush()
            started = time.perf_counter()
            with contextlib.redirect_stdout(out):
                module.main(cfg)
            timings[name] = time.perf_counter() - started
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the uProcess/VESSEL evaluation "
                    "(SOSP 2024).")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset of: {', '.join(EXPERIMENTS)}; or "
                             f"'bench' for the wall-clock benchmark "
                             f"harness (see 'bench --help')")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--scale", choices=["smoke", "paper"],
                        default="smoke")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="fan independent experiments (or one "
                             "experiment's sweep points) out over N "
                             "worker processes; output stays "
                             "byte-identical to --jobs 1")
    parser.add_argument("--op-breakdown", action="store_true",
                        help="print a per-operation cost breakdown "
                             "(count / total ns / percentiles) after "
                             "each run")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file "
                             "(chrome://tracing, Perfetto) after each "
                             "run")
    parser.add_argument("--net", action="store_true",
                        help="deliver load through the simulated "
                             "client/link/NIC fabric and report "
                             "client-observed latency (repro.net)")
    parser.add_argument("--policy", metavar="NAME", default=None,
                        help="run VESSEL under a registered scheduling "
                             "policy (default, mlfq, sjf, trust-group, "
                             "priority); baselines are unaffected")
    parser.add_argument("--latency-breakdown", action="store_true",
                        help="record per-request lifecycle flights and "
                             "print a per-app per-stage latency "
                             "decomposition after each run")
    parser.add_argument("--trace-requests", metavar="K", type=int,
                        default=0,
                        help="capture and print the K slowest requests' "
                             "full stage-span lists after each run")
    parser.add_argument("--fluid", choices=["off", "on"], default="off",
                        help="analytically fast-forward eligible runs "
                             "instead of firing every discrete event; "
                             "approximate latency tails within a stated "
                             "tolerance (docs/SIMULATION.md); ineligible "
                             "runs fall back to the exact engine")
    parser.add_argument("--engine", choices=["heap", "calendar"],
                        default="heap",
                        help="event-queue implementation for the exact "
                             "engine; 'calendar' buckets near-future "
                             "timers, firing the identical event "
                             "sequence")

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] in _CLI_EXPERIMENTS:
        # A leading scenario name gets its own flag set (--smoke etc.),
        # like bench; it still runs as a normal experiment when selected
        # among others or via the run-everything default.
        module = importlib.import_module(_CLI_EXPERIMENTS[argv[0]])
        return module.cli_main(argv[1:])
    args = parser.parse_args(argv)

    if args.list:
        for key, module in EXPERIMENTS.items():
            print(f"{key:12s} {module}")
        return 0
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; "
                     f"choose from {', '.join(EXPERIMENTS)}")

    from repro.experiments.common import ExperimentConfig, PAPER_PROFILE
    from repro.net import NetConfig
    cfg = ExperimentConfig(seed=args.seed, op_breakdown=args.op_breakdown,
                           trace_out=args.trace_out,
                           net=NetConfig() if args.net else None,
                           policy=args.policy,
                           latency_breakdown=args.latency_breakdown,
                           trace_requests=max(0, args.trace_requests),
                           fluid=args.fluid, engine=args.engine)
    if args.scale == "paper":
        cfg = cfg.scaled(**PAPER_PROFILE)

    started = time.perf_counter()
    timings = run_experiments(selected, cfg, jobs=args.jobs)
    for name, took in timings.items():
        print(f"[{name} took {took:.1f}s]", file=sys.stderr)
    print(f"[total {time.perf_counter() - started:.1f}s, "
          f"jobs={args.jobs}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
