"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro                      # run every experiment (smoke)
    python -m repro tab1 fig09           # selected experiments
    python -m repro --list
    python -m repro --scale paper fig09
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

EXPERIMENTS = {
    "tab1": "repro.experiments.tab1_context_switch",
    "fig01": "repro.experiments.fig01_colocation_cost",
    "fig02": "repro.experiments.fig02_dense_cost",
    "fig03": "repro.experiments.fig03_realloc_timeline",
    "fig07": "repro.experiments.fig07_timeline",
    "fig09": "repro.experiments.fig09_colocation",
    "fig10": "repro.experiments.fig10_dense",
    "fig11": "repro.experiments.fig11_cache",
    "fig12": "repro.experiments.fig12_scalability",
    "fig13": "repro.experiments.fig13_membw",
    "micro": "repro.experiments.micro_uintr",
    "chaos": "repro.experiments.fault_chaos",
    "net": "repro.experiments.net_smoke",
    "ablations": "repro.experiments.ablations",
    "sensitivity": "repro.experiments.sensitivity",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the uProcess/VESSEL evaluation "
                    "(SOSP 2024).")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--scale", choices=["smoke", "paper"],
                        default="smoke")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--op-breakdown", action="store_true",
                        help="print a per-operation cost breakdown "
                             "(count / total ns / percentiles) after "
                             "each run")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file "
                             "(chrome://tracing, Perfetto) after each "
                             "run")
    parser.add_argument("--net", action="store_true",
                        help="deliver load through the simulated "
                             "client/link/NIC fabric and report "
                             "client-observed latency (repro.net)")
    args = parser.parse_args(argv)

    if args.list:
        for key, module in EXPERIMENTS.items():
            print(f"{key:12s} {module}")
        return 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; "
                     f"choose from {', '.join(EXPERIMENTS)}")

    from repro.experiments.common import ExperimentConfig, PAPER_PROFILE
    from repro.net import NetConfig
    cfg = ExperimentConfig(seed=args.seed, op_breakdown=args.op_breakdown,
                           trace_out=args.trace_out,
                           net=NetConfig() if args.net else None)
    if args.scale == "paper":
        cfg = cfg.scaled(**PAPER_PROFILE)

    for name in selected:
        module = importlib.import_module(EXPERIMENTS[name])
        print(f"\n{'=' * 72}\n{name}  ({EXPERIMENTS[name]})\n{'=' * 72}")
        started = time.time()
        module.main(cfg)
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
