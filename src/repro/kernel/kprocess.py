"""Kernel processes and threads (the paper's "kProcess").

A :class:`KProcess` owns an isolated :class:`AddressSpaceMap` and an fd
table; :class:`KThread` carries the scheduling state CFS needs.  The
uProcess manager creates one kProcess per uProcess (§5.1) but then
schedules application threads across them in userspace — which is exactly
why descriptor access control has to move into the VESSEL runtime.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from repro.hardware.mpk import AddressSpaceMap
from repro.kernel.fdtable import FdTable

_pid_counter = itertools.count(1)
_tid_counter = itertools.count(1)


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    DEAD = "dead"


class KThread:
    """A kernel-visible thread."""

    def __init__(self, process: "KProcess", name: str = "") -> None:
        self.tid = next(_tid_counter)
        self.process = process
        self.name = name or f"thread-{self.tid}"
        self.state = ThreadState.RUNNABLE
        # CFS state
        self.nice = process.nice
        self.vruntime = 0.0
        self.last_core: Optional[int] = None
        #: opaque payload the scheduling systems attach (current request...)
        self.payload = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KThread {self.name} tid={self.tid} {self.state.value}>"


class KProcess:
    """A kernel process: address space + fd table + threads."""

    def __init__(self, name: str, nice: int = 0,
                 parent: Optional["KProcess"] = None) -> None:
        if not -20 <= nice <= 19:
            raise ValueError(f"nice {nice} out of range [-20, 19]")
        self.pid = next(_pid_counter)
        self.name = name
        self.nice = nice
        self.parent = parent
        self.aspace = AddressSpaceMap(name=f"{name}/aspace")
        self.fdtable = FdTable()
        self.threads: List[KThread] = []
        self.children: List["KProcess"] = []
        self.alive = True
        #: pinned core, if any (sched_setaffinity with one CPU)
        self.bound_core: Optional[int] = None
        #: signal handlers registered by the process {signo: handler}
        self.signal_handlers: Dict[int, object] = {}

    def spawn_thread(self, name: str = "") -> KThread:
        if not self.alive:
            raise RuntimeError(f"process {self.name} is dead")
        thread = KThread(self, name)
        self.threads.append(thread)
        return thread

    def kill(self) -> None:
        self.alive = False
        for thread in self.threads:
            thread.state = ThreadState.DEAD

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KProcess {self.name} pid={self.pid} nice={self.nice}>"
