"""The kernel-mediated core-reallocation pipeline (Figure 3).

This is *the* overhead the paper attacks.  To move a core from App-A to
App-B, Caladan's scheduler issues an ioctl; the kernel sends an IPI to the
victim core; the victim traps, a SIGUSR lets App-A's userspace runtime
save its state, the kernel updates its structures and switches page
tables, and finally the core restores into App-B.  The phases below sum
to 5.3 µs (§2.1) and are attributed to ``kernel``/``runtime`` accounting
categories so Figures 1b and 2 can show where cycles go.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hardware.machine import Core
from repro.hardware.timing import CostModel
from repro.obs.ledger import NULL_LEDGER, OpLedger


@dataclass(frozen=True)
class ReallocPhase:
    """One phase of the Figure 3 timeline."""

    name: str
    duration_ns: int
    #: accounting category ('kernel' or 'runtime')
    category: str


class KernelReallocPipeline:
    """Executes the Figure 3 pipeline on a victim core."""

    def __init__(self, costs: CostModel,
                 ledger: Optional[OpLedger] = None) -> None:
        self.costs = costs
        self.ledger = ledger or NULL_LEDGER
        self.executions: int = 0

    def phases(self) -> List[ReallocPhase]:
        """The timeline, in execution order."""
        c = self.costs
        return [
            ReallocPhase("scheduler ioctl", c.caladan_ioctl_ns, "kernel"),
            ReallocPhase("IPI delivery", c.caladan_ipi_ns, "kernel"),
            ReallocPhase("kernel trap + SIGUSR", c.caladan_trap_sigusr_ns,
                         "kernel"),
            ReallocPhase("userspace state save", c.caladan_user_save_ns,
                         "runtime"),
            ReallocPhase("kernel context switch", c.caladan_kernel_switch_ns,
                         "kernel"),
            ReallocPhase("restore to new app", c.caladan_restore_ns,
                         "kernel"),
        ]

    def total_ns(self) -> int:
        return sum(phase.duration_ns for phase in self.phases())

    def run(self, core: Core, on_done: Callable[[], None],
            rng: Optional[random.Random] = None) -> None:
        """Occupy ``core`` for the whole pipeline, then call ``on_done``.

        The core must be free (the caller preempts the victim first and
        re-queues its remaining work).  Kernel jitter is applied to the
        last phase when an RNG is provided.
        """
        phases = self.phases()
        if rng is not None:
            jitter = self.costs.kernel_jitter_ns(rng)
            if jitter:
                last = phases[-1]
                phases[-1] = ReallocPhase(last.name,
                                          last.duration_ns + jitter,
                                          last.category)
        self.executions += 1
        self._run_phase(core, phases, 0, on_done)

    def _run_phase(self, core: Core, phases: List[ReallocPhase], index: int,
                   on_done: Callable[[], None]) -> None:
        if index >= len(phases):
            on_done()
            return
        phase = phases[index]
        if self.ledger.enabled:
            self.ledger.charge(f"realloc:{phase.name}", phase.duration_ns,
                               core=core.id, domain="kernel")
        core.run(phase.category, phase.duration_ns,
                 lambda: self._run_phase(core, phases, index + 1, on_done))
