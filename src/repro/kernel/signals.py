"""POSIX-signal posting and delivery.

Used in two places: Caladan's reallocation pipeline delivers a SIGUSR to
the victim application so its runtime saves state (Figure 3), and
uProcess's fault-shielding design (§4.3) registers fault-signal handlers
in the runtime and proxies them to the faulting uProcess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.hardware.timing import CostModel
from repro.kernel.kprocess import KProcess
from repro.obs.ledger import NULL_LEDGER, OpLedger

SIGSEGV = 11
SIGUSR1 = 10
SIGTERM = 15
SIGKILL = 9

#: signals whose default disposition kills the process
FATAL_BY_DEFAULT = frozenset({SIGSEGV, SIGTERM, SIGKILL})


@dataclass
class Signal:
    signo: int
    value: int = 0
    tid: Optional[int] = None


SignalHandler = Callable[[KProcess, Signal], None]


class KernelSignals:
    """Registers handlers and delivers signals with the kernel-path delay."""

    def __init__(self, sim: Simulator, costs: CostModel,
                 ledger: Optional[OpLedger] = None) -> None:
        self.sim = sim
        self.costs = costs
        self.ledger = ledger or NULL_LEDGER
        self._handlers: Dict[Tuple[int, int], SignalHandler] = {}
        #: pid -> process, for the churn audit: a handler whose owner is
        #: dead and was never unregistered is a teardown leak
        self._owners: Dict[int, KProcess] = {}
        self.delivered: int = 0
        self.killed: int = 0

    def register(self, proc: KProcess, signo: int,
                 handler: SignalHandler) -> None:
        """sigaction() analogue.  SIGKILL cannot be caught."""
        if signo == SIGKILL:
            raise ValueError("SIGKILL cannot be caught")
        self._handlers[(proc.pid, signo)] = handler
        self._owners[proc.pid] = proc

    def unregister(self, proc: KProcess, signo: int) -> None:
        """Drop a handler at teardown.  Without this, churned processes
        leave one table entry each — pids are never reused, so the table
        grows without bound.  Safe to call for a never-registered pair."""
        self._handlers.pop((proc.pid, signo), None)
        if not any(pid == proc.pid for pid, _ in self._handlers):
            self._owners.pop(proc.pid, None)

    def stale_handlers(self) -> list:
        """(pid, signo) pairs whose owning process is dead — entries a
        clean teardown should have unregistered."""
        return sorted((pid, signo) for (pid, signo) in self._handlers
                      if not self._owners[pid].alive)

    def post(self, proc: KProcess, signal: Signal) -> None:
        """Queue ``signal`` for delivery after the kernel signal path."""
        self.sim.post(self.costs.signal_deliver_ns, self._deliver,
                      proc, signal)

    def _deliver(self, proc: KProcess, signal: Signal) -> None:
        if not proc.alive:
            return
        self.delivered += 1
        if self.ledger.enabled:
            self.ledger.charge(f"signal_deliver:{signal.signo}",
                               self.costs.signal_deliver_ns, domain="kernel")
        handler = self._handlers.get((proc.pid, signal.signo))
        if handler is not None and signal.signo != SIGKILL:
            handler(proc, signal)
            return
        if signal.signo in FATAL_BY_DEFAULT:
            # No handler installed: the kernel's default action takes the
            # whole kProcess down — the uncontained outcome fault
            # shielding (§4.3) exists to prevent.
            proc.kill()
            self.killed += 1
            if self.ledger.enabled:
                self.ledger.count_op(f"fault:default_kill:{signal.signo}",
                                     domain="fault")
