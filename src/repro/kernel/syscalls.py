"""The syscall layer.

Every kernel-mediated operation the reproduction needs goes through one
:class:`SyscallLayer` instance, which mutates the functional state
(address-space maps, fd tables, processes) and accounts the trap cost of
each call.  The performance-layer schedulers charge these costs to cores
explicitly; the functional tests only check semantics and the recorded
counts.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.hardware.mpk import (
    AddressSpaceMap,
    Permission,
    Region,
    PKEY_COUNT,
)
from repro.hardware.timing import CostModel
from repro.kernel.fdtable import FileDescription
from repro.kernel.kprocess import KProcess


class SyscallError(OSError):
    """A syscall returned an error (message carries the errno name)."""


class SyscallLayer:
    """Executes syscalls against the functional state and accounts costs."""

    def __init__(self, costs: Optional[CostModel] = None) -> None:
        self.costs = costs or CostModel()
        self.counts: Dict[str, int] = {}
        self.total_ns: int = 0
        self._pkeys: Dict[int, Set[int]] = {}  # id(aspace) -> allocated keys

    # ------------------------------------------------------------------
    def _account(self, name: str, cost_ns: int) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self.total_ns += cost_ns

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def mmap(self, aspace: AddressSpaceMap, start: int, size: int,
             perms: Permission, name: str = "") -> Region:
        self._account("mmap", self.costs.syscall_ns)
        if size <= 0:
            raise SyscallError(f"EINVAL: mmap size {size}")
        return aspace.map(Region(start=start, size=size, perms=perms,
                                 pkey=0, name=name))

    def munmap(self, aspace: AddressSpaceMap, region: Region) -> None:
        self._account("munmap", self.costs.syscall_ns)
        aspace.unmap(region)

    def mprotect(self, aspace: AddressSpaceMap, region: Region,
                 perms: Permission) -> None:
        self._account("mprotect", self.costs.syscall_ns)
        aspace.set_perms(region, perms)

    def pkey_alloc(self, aspace: AddressSpaceMap) -> int:
        """Allocate a protection key in ``aspace``; key 0 stays reserved."""
        self._account("pkey_alloc", self.costs.pkey_syscall_ns)
        allocated = self._pkeys.setdefault(id(aspace), set())
        for pkey in range(1, PKEY_COUNT):
            if pkey not in allocated:
                allocated.add(pkey)
                return pkey
        raise SyscallError("ENOSPC: no free protection keys")

    def pkey_free(self, aspace: AddressSpaceMap, pkey: int) -> None:
        self._account("pkey_free", self.costs.pkey_syscall_ns)
        allocated = self._pkeys.setdefault(id(aspace), set())
        if pkey not in allocated:
            raise SyscallError(f"EINVAL: pkey {pkey} not allocated")
        allocated.remove(pkey)

    def pkey_mprotect(self, aspace: AddressSpaceMap, region: Region,
                      pkey: int) -> None:
        """Bind ``region`` to ``pkey`` (must be allocated in ``aspace``)."""
        self._account("pkey_mprotect", self.costs.pkey_syscall_ns)
        allocated = self._pkeys.get(id(aspace), set())
        if pkey != 0 and pkey not in allocated:
            raise SyscallError(f"EINVAL: pkey {pkey} not allocated")
        aspace.set_pkey(region, pkey)

    def allocated_pkeys(self, aspace: AddressSpaceMap) -> Set[int]:
        return set(self._pkeys.get(id(aspace), set()))

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def fork(self, parent: KProcess, name: str = "") -> KProcess:
        """Clone ``parent``: copied address-space layout, shared-by-copy fds."""
        self._account("fork", 20 * self.costs.syscall_ns)
        child = KProcess(name or f"{parent.name}-child", nice=parent.nice,
                         parent=parent)
        for region in parent.aspace.regions():
            child.aspace.map(Region(start=region.start, size=region.size,
                                    perms=region.perms, pkey=region.pkey,
                                    name=region.name))
        for fd, description in parent.fdtable.open_fds().items():
            description.refcount += 1
            child.fdtable._table[fd] = description
        parent.children.append(child)
        return child

    def sched_setaffinity(self, proc: KProcess, core_id: int) -> None:
        self._account("sched_setaffinity", self.costs.syscall_ns)
        proc.bound_core = core_id

    def ioctl(self, proc: KProcess, request: str) -> None:
        """Generic ioctl (Caladan's scheduler uses one to fire the IPI)."""
        self._account(f"ioctl:{request}", self.costs.syscall_ns)

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def open(self, proc: KProcess, path: str, owner_label: str = "") -> int:
        self._account("open", self.costs.syscall_ns)
        return proc.fdtable.install(
            FileDescription(path=path, owner_label=owner_label)
        )

    def close(self, proc: KProcess, fd: int) -> None:
        self._account("close", self.costs.syscall_ns)
        try:
            proc.fdtable.close(fd)
        except KeyError as exc:
            raise SyscallError(str(exc)) from exc

    def read_fd(self, proc: KProcess, fd: int) -> FileDescription:
        """Dereference a descriptor (stands in for read/write/fstat...)."""
        self._account("read", self.costs.syscall_ns)
        description = proc.fdtable.lookup(fd)
        if description is None:
            raise SyscallError(f"EBADF: fd {fd}")
        return description

    # ------------------------------------------------------------------
    # Signals / Uintr setup
    # ------------------------------------------------------------------
    def sigqueue(self, target: KProcess, signo: int, value: int = 0,
                 tid: Optional[int] = None) -> Tuple[int, int, Optional[int]]:
        """Queue a signal; delivery is the KernelSignals module's job.

        ``tid`` models the §5.3 extension of addressing a specific thread.
        """
        self._account("sigqueue", self.costs.syscall_ns)
        if not target.alive:
            raise SyscallError(f"ESRCH: process {target.pid} is dead")
        return (target.pid, signo, tid)

    def uintr_register_handler(self, proc: KProcess, handler) -> None:
        """Register a userspace-interrupt handler (one-time setup trap)."""
        self._account("uintr_register_handler", self.costs.syscall_ns)
        proc.signal_handlers["uintr"] = handler
