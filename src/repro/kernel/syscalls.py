"""The syscall layer.

Every kernel-mediated operation the reproduction needs goes through one
:class:`SyscallLayer` instance, which mutates the functional state
(address-space maps, fd tables, processes) and accounts the trap cost of
each call.  The performance-layer schedulers charge these costs to cores
explicitly; the functional tests only check semantics and the recorded
counts.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.hardware.mpk import (
    AddressSpaceMap,
    Permission,
    Region,
    PKEY_COUNT,
)
from repro.hardware.timing import CostModel
from repro.kernel.fdtable import FileDescription
from repro.kernel.kprocess import KProcess
from repro.obs.ledger import OpLedger


class SyscallError(OSError):
    """A syscall returned an error (message carries the errno name)."""


class SyscallLayer:
    """Executes syscalls against the functional state and accounts costs."""

    def __init__(self, costs: Optional[CostModel] = None,
                 ledger: Optional[OpLedger] = None) -> None:
        self.costs = costs or CostModel()
        #: standalone layers get a private ledger so ``counts`` keeps
        #: working; systems pass the machine-wide one in
        self.ledger = ledger if ledger is not None else OpLedger()
        self._pkeys: Dict[int, Set[int]] = {}  # id(aspace) -> allocated keys

    # ------------------------------------------------------------------
    @property
    def counts(self) -> Dict[str, int]:
        """Per-syscall invocation counts (a view over the ledger)."""
        return self.ledger.op_counts(domain="syscall")

    @property
    def total_ns(self) -> int:
        """Total trap nanoseconds charged by this layer."""
        return self.ledger.total_ns(domain="syscall")

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def mmap(self, aspace: AddressSpaceMap, start: int, size: int,
             perms: Permission, name: str = "") -> Region:
        self.ledger.charge("mmap", self.costs.syscall_ns, domain="syscall")
        if size <= 0:
            raise SyscallError(f"EINVAL: mmap size {size}")
        return aspace.map(Region(start=start, size=size, perms=perms,
                                 pkey=0, name=name))

    def munmap(self, aspace: AddressSpaceMap, region: Region) -> None:
        self.ledger.charge("munmap", self.costs.syscall_ns, domain="syscall")
        aspace.unmap(region)

    def mprotect(self, aspace: AddressSpaceMap, region: Region,
                 perms: Permission) -> None:
        self.ledger.charge("mprotect", self.costs.syscall_ns, domain="syscall")
        aspace.set_perms(region, perms)

    def pkey_alloc(self, aspace: AddressSpaceMap) -> int:
        """Allocate a protection key in ``aspace``; key 0 stays reserved."""
        self.ledger.charge("pkey_alloc", self.costs.pkey_syscall_ns, domain="syscall")
        allocated = self._pkeys.setdefault(id(aspace), set())
        for pkey in range(1, PKEY_COUNT):
            if pkey not in allocated:
                allocated.add(pkey)
                return pkey
        raise SyscallError("ENOSPC: no free protection keys")

    def pkey_free(self, aspace: AddressSpaceMap, pkey: int) -> None:
        self.ledger.charge("pkey_free", self.costs.pkey_syscall_ns, domain="syscall")
        allocated = self._pkeys.setdefault(id(aspace), set())
        if pkey not in allocated:
            raise SyscallError(f"EINVAL: pkey {pkey} not allocated")
        allocated.remove(pkey)

    def pkey_mprotect(self, aspace: AddressSpaceMap, region: Region,
                      pkey: int) -> None:
        """Bind ``region`` to ``pkey`` (must be allocated in ``aspace``)."""
        self.ledger.charge("pkey_mprotect", self.costs.pkey_syscall_ns,
                           domain="syscall")
        allocated = self._pkeys.get(id(aspace), set())
        if pkey != 0 and pkey not in allocated:
            raise SyscallError(f"EINVAL: pkey {pkey} not allocated")
        aspace.set_pkey(region, pkey)

    def allocated_pkeys(self, aspace: AddressSpaceMap) -> Set[int]:
        return set(self._pkeys.get(id(aspace), set()))

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def fork(self, parent: KProcess, name: str = "") -> KProcess:
        """Clone ``parent``: copied address-space layout, shared-by-copy fds."""
        self.ledger.charge("fork", 20 * self.costs.syscall_ns, domain="syscall")
        child = KProcess(name or f"{parent.name}-child", nice=parent.nice,
                         parent=parent)
        for region in parent.aspace.regions():
            child.aspace.map(Region(start=region.start, size=region.size,
                                    perms=region.perms, pkey=region.pkey,
                                    name=region.name))
        for fd, description in parent.fdtable.open_fds().items():
            description.refcount += 1
            child.fdtable._table[fd] = description
        parent.children.append(child)
        return child

    def sched_setaffinity(self, proc: KProcess, core_id: int) -> None:
        self.ledger.charge("sched_setaffinity", self.costs.syscall_ns,
                           domain="syscall")
        proc.bound_core = core_id

    def ioctl(self, proc: KProcess, request: str) -> None:
        """Generic ioctl (Caladan's scheduler uses one to fire the IPI)."""
        self.ledger.charge(f"ioctl:{request}", self.costs.syscall_ns,
                           domain="syscall")

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def open(self, proc: KProcess, path: str, owner_label: str = "") -> int:
        self.ledger.charge("open", self.costs.syscall_ns, domain="syscall")
        return proc.fdtable.install(
            FileDescription(path=path, owner_label=owner_label)
        )

    def close(self, proc: KProcess, fd: int) -> None:
        self.ledger.charge("close", self.costs.syscall_ns, domain="syscall")
        try:
            proc.fdtable.close(fd)
        except KeyError as exc:
            raise SyscallError(str(exc)) from exc

    def read_fd(self, proc: KProcess, fd: int) -> FileDescription:
        """Dereference a descriptor (stands in for read/write/fstat...)."""
        self.ledger.charge("read", self.costs.syscall_ns, domain="syscall")
        description = proc.fdtable.lookup(fd)
        if description is None:
            raise SyscallError(f"EBADF: fd {fd}")
        return description

    # ------------------------------------------------------------------
    # Signals / Uintr setup
    # ------------------------------------------------------------------
    def sigqueue(self, target: KProcess, signo: int, value: int = 0,
                 tid: Optional[int] = None) -> Tuple[int, int, Optional[int]]:
        """Queue a signal; delivery is the KernelSignals module's job.

        ``tid`` models the §5.3 extension of addressing a specific thread.
        """
        self.ledger.charge("sigqueue", self.costs.syscall_ns, domain="syscall")
        if not target.alive:
            raise SyscallError(f"ESRCH: process {target.pid} is dead")
        return (target.pid, signo, tid)

    def uintr_register_handler(self, proc: KProcess, handler) -> None:
        """Register a userspace-interrupt handler (one-time setup trap)."""
        self.ledger.charge("uintr_register_handler", self.costs.syscall_ns,
                           domain="syscall")
        proc.signal_handlers["uintr"] = handler
