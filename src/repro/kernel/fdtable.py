"""Per-process file-descriptor tables.

These exist to model the §5.2.4 problem concretely: uProcesses scheduled
inside arbitrary kProcesses would otherwise share one kernel fd table, so
uProcess B could brute-force descriptors created by uProcess A (security)
and uProcess A, rescheduled into another kProcess, would find its own
descriptors missing (correctness).  The VESSEL runtime's syscall proxy
(``repro.vessel.runtime``) layers its own per-uProcess descriptor map on
top of these tables and the tests demonstrate both failure modes without
the proxy and their absence with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class FileDescription:
    """An open-file object (what a descriptor points at)."""

    path: str
    owner_label: str = ""
    offset: int = 0
    refcount: int = 1


class FdTable:
    """POSIX-style descriptor table: lowest free integer allocation."""

    def __init__(self) -> None:
        self._table: Dict[int, FileDescription] = {}

    def install(self, description: FileDescription) -> int:
        """Assign the lowest unused descriptor number."""
        fd = 0
        while fd in self._table:
            fd += 1
        self._table[fd] = description
        return fd

    def lookup(self, fd: int) -> Optional[FileDescription]:
        return self._table.get(fd)

    def close(self, fd: int) -> FileDescription:
        if fd not in self._table:
            raise KeyError(f"EBADF: fd {fd} is not open")
        description = self._table.pop(fd)
        description.refcount -= 1
        return description

    def dup(self, fd: int) -> int:
        description = self.lookup(fd)
        if description is None:
            raise KeyError(f"EBADF: fd {fd} is not open")
        description.refcount += 1
        return self.install(description)

    def open_fds(self) -> Dict[int, FileDescription]:
        return dict(self._table)

    def __len__(self) -> int:
        return len(self._table)
