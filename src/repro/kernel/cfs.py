"""The Completely Fair Scheduler.

A working CFS implementation over the simulated machine, used by the
Linux-CFS baseline of Figure 9: per-core runqueues ordered by virtual
runtime, the kernel's nice-to-weight table, timeslices derived from
``sched_latency`` with a ``min_granularity`` floor, sleeper credit on
wakeup, and wakeup preemption gated by ``wakeup_granularity``.

Modeling note (documented deviation): in the real kernel the decision of
whether a wakeup preempts the current task involves several features
(WAKEUP_PREEMPTION, GENTLE_FAIR_SLEEPERS, buddy systems) whose combined
observable effect for a high-priority latency app colocated with
nice-19 batch work is a *millisecond-scale reaction time* (measured in
Shenango §2 / Caladan §2 and reproduced in this paper's Figure 9).  We
model that observable directly: the current task is protected from wakeup
preemption until it has consumed ``min_granularity`` of wall time since
being picked, after which the standard vruntime-difference check applies.

Tasks plug in through :class:`CfsTask`: the scheduler pulls work chunks
from the task and runs them on cores; a task with no chunk sleeps until
:meth:`CfsScheduler.wake`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.hardware.machine import Core
from repro.hardware.timing import CostModel
from repro.kernel.kprocess import KThread, ThreadState
from repro.obs.ledger import NULL_LEDGER, OpLedger

#: the kernel's sched_prio_to_weight table (kernel/sched/core.c)
_WEIGHTS = [
    88761, 71755, 56483, 46273, 36291,   # -20 .. -16
    29154, 23254, 18705, 14949, 11916,   # -15 .. -11
    9548, 7620, 6100, 4904, 3906,        # -10 .. -6
    3121, 2501, 1991, 1586, 1277,        # -5 .. -1
    1024,                                # 0
    820, 655, 526, 423, 335,             # 1 .. 5
    272, 215, 172, 137, 110,             # 6 .. 10
    87, 70, 56, 45, 36,                  # 11 .. 15
    29, 23, 18, 15,                      # 16 .. 19
]

NICE_0_WEIGHT = 1024


def nice_to_weight(nice: int) -> int:
    """Kernel weight for a nice level in [-20, 19]."""
    if not -20 <= nice <= 19:
        raise ValueError(f"nice {nice} out of range")
    return _WEIGHTS[nice + 20]


@dataclass
class Chunk:
    """One runnable piece of work a task hands to the scheduler."""

    duration_ns: int
    category: str = "app"
    on_complete: Optional[Callable[[], None]] = None


class CfsTask:
    """Work source for one thread; subclass or duck-type ``next_chunk``."""

    def next_chunk(self) -> Optional[Chunk]:
        """The next piece of work, or None to sleep."""
        raise NotImplementedError


@dataclass
class CfsParams:
    """Tunables (kernel defaults for a large machine)."""

    sched_latency_ns: int = 24_000_000
    min_granularity_ns: int = 3_000_000
    wakeup_granularity_ns: int = 4_000_000
    tick_ns: int = 1_000_000


class _Runqueue:
    """Per-core CFS runqueue."""

    __slots__ = ("core", "heap", "min_vruntime", "curr", "curr_picked_at",
                 "curr_last_update", "tick_event", "nr_running")

    def __init__(self, core: Core) -> None:
        self.core = core
        self.heap: List = []  # (vruntime, tid, thread)
        self.min_vruntime = 0.0
        self.curr: Optional[KThread] = None
        self.curr_picked_at = 0
        self.curr_last_update = 0
        self.tick_event = None
        self.nr_running = 0  # queued + running

    def push(self, thread: KThread) -> None:
        heapq.heappush(self.heap, (thread.vruntime, thread.tid, thread))

    def pop(self) -> Optional[KThread]:
        while self.heap:
            _, _, thread = heapq.heappop(self.heap)
            if thread.state is ThreadState.RUNNABLE:
                return thread
        return None

    def total_weight(self) -> int:
        weight = 0
        if self.curr is not None:
            weight += nice_to_weight(self.curr.nice)
        for _, _, thread in self.heap:
            if thread.state is ThreadState.RUNNABLE:
                weight += nice_to_weight(thread.nice)
        return weight


class CfsScheduler:
    """CFS over a set of cores.

    The owning system registers (thread, task) pairs, wakes threads when
    work arrives, and the scheduler does the rest: placement, timeslicing,
    preemption, sleeping, and context-switch cost accounting.
    """

    def __init__(self, sim: Simulator, cores: List[Core],
                 costs: Optional[CostModel] = None,
                 params: Optional[CfsParams] = None,
                 ledger: Optional[OpLedger] = None) -> None:
        self.sim = sim
        self.cores = cores
        self.costs = costs or CostModel()
        self.params = params or CfsParams()
        self.ledger = ledger or NULL_LEDGER
        self._rqs: Dict[int, _Runqueue] = {c.id: _Runqueue(c) for c in cores}
        self._tasks: Dict[int, CfsTask] = {}
        self.context_switches = 0
        self.wakeup_preemptions = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register(self, thread: KThread, task: CfsTask) -> None:
        """Attach a work source to ``thread``; it starts sleeping."""
        self._tasks[thread.tid] = task
        thread.state = ThreadState.SLEEPING
        thread.payload = None  # partial chunk (Chunk, remaining) when preempted

    def wake(self, thread: KThread) -> None:
        """Make ``thread`` runnable (no-op if it already is)."""
        if thread.state in (ThreadState.RUNNABLE, ThreadState.RUNNING):
            return
        if thread.state is ThreadState.DEAD:
            raise RuntimeError(f"waking dead thread {thread.name}")
        rq = self._place(thread)
        # Sleeper credit: don't let long sleepers hoard unbounded lag.
        credit = self.params.sched_latency_ns / 2
        thread.vruntime = max(thread.vruntime, rq.min_vruntime - credit)
        thread.state = ThreadState.RUNNABLE
        thread.last_core = rq.core.id
        rq.nr_running += 1
        rq.push(thread)
        if rq.curr is None:
            if self.ledger.enabled:
                self.ledger.charge("cfs_wakeup", self.costs.cfs_wakeup_ns,
                                   core=rq.core.id, domain="kernel")
            self.sim.post(self.costs.cfs_wakeup_ns, self._maybe_start, rq)
        else:
            self._check_wakeup_preempt(rq, thread)

    def runnable_count(self) -> int:
        return sum(rq.nr_running for rq in self._rqs.values())

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, thread: KThread) -> _Runqueue:
        """select_task_rq: idle core first, then cache-affine, then least
        loaded."""
        for rq in self._rqs.values():
            if rq.curr is None and rq.nr_running == 0:
                return rq
        if thread.last_core is not None and thread.last_core in self._rqs:
            return self._rqs[thread.last_core]
        return min(self._rqs.values(), key=lambda rq: rq.nr_running)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _maybe_start(self, rq: _Runqueue) -> None:
        if rq.curr is None and not rq.core.busy:
            self._pick_next(rq)

    def _pick_next(self, rq: _Runqueue) -> None:
        thread = rq.pop()
        if thread is None:
            rq.curr = None
            if rq.tick_event is not None:
                rq.tick_event.cancel()
                rq.tick_event = None
            rq.core.set_idle()
            return
        rq.curr = thread
        thread.state = ThreadState.RUNNING
        rq.curr_picked_at = self.sim.now
        rq.curr_last_update = self.sim.now
        if rq.tick_event is None:
            rq.tick_event = self.sim.after(self.params.tick_ns, self._tick, rq)
        self._run_chunk(rq)

    def _run_chunk(self, rq: _Runqueue) -> None:
        thread = rq.curr
        assert thread is not None
        partial = thread.payload
        if partial is not None:
            chunk, remaining = partial
            thread.payload = None
        else:
            chunk = self._tasks[thread.tid].next_chunk()
            if chunk is None:
                self._sleep_current(rq)
                return
            remaining = chunk.duration_ns
        thread._cfs_chunk = chunk
        rq.core.run(chunk.category, remaining,
                    lambda: self._chunk_done(rq, thread, chunk))

    def _chunk_done(self, rq: _Runqueue, thread: KThread, chunk: Chunk) -> None:
        if rq.curr is not thread:
            return  # stale completion after a preemption race
        thread._cfs_chunk = None
        self._update_vruntime(rq)
        if chunk.on_complete is not None:
            chunk.on_complete()
        if thread.state is not ThreadState.RUNNING:
            # on_complete killed or slept the thread
            rq.curr = None
            rq.nr_running = max(0, rq.nr_running - 1)
            self._pick_next(rq)
            return
        self._run_chunk(rq)

    def _sleep_current(self, rq: _Runqueue) -> None:
        thread = rq.curr
        assert thread is not None
        thread.state = ThreadState.SLEEPING
        rq.curr = None
        rq.nr_running = max(0, rq.nr_running - 1)
        self._switch_cost_then(rq, self._pick_next)

    # ------------------------------------------------------------------
    # Ticks, preemption, vruntime
    # ------------------------------------------------------------------
    def _update_vruntime(self, rq: _Runqueue) -> None:
        thread = rq.curr
        if thread is None:
            return
        now = self.sim.now
        delta = now - rq.curr_last_update
        rq.curr_last_update = now
        if delta <= 0:
            return
        thread.vruntime += delta * NICE_0_WEIGHT / nice_to_weight(thread.nice)
        rq.min_vruntime = max(rq.min_vruntime, thread.vruntime)

    def _slice_ns(self, rq: _Runqueue, thread: KThread) -> int:
        total = rq.total_weight()
        if total <= 0:
            return self.params.min_granularity_ns
        share = (self.params.sched_latency_ns
                 * nice_to_weight(thread.nice) / total)
        return max(self.params.min_granularity_ns, int(share))

    def _tick(self, rq: _Runqueue) -> None:
        rq.tick_event = None
        if rq.curr is None:
            return
        self._update_vruntime(rq)
        ran = self.sim.now - rq.curr_picked_at
        should_resched = False
        if ran >= self._slice_ns(rq, rq.curr) and rq.heap:
            should_resched = True
        if should_resched:
            self._preempt_current(rq)
        else:
            rq.tick_event = self.sim.after(self.params.tick_ns, self._tick, rq)

    def _check_wakeup_preempt(self, rq: _Runqueue, woken: KThread) -> None:
        curr = rq.curr
        if curr is None:
            return
        # Documented approximation: curr keeps the core until it has run
        # min_granularity since being picked (see module docstring).
        ran = self.sim.now - rq.curr_picked_at
        if ran < self.params.min_granularity_ns:
            return
        self._update_vruntime(rq)
        gran = (self.params.wakeup_granularity_ns
                * NICE_0_WEIGHT / nice_to_weight(woken.nice))
        if curr.vruntime - woken.vruntime > gran:
            self.wakeup_preemptions += 1
            self._preempt_current(rq)

    def _preempt_current(self, rq: _Runqueue) -> None:
        thread = rq.curr
        assert thread is not None
        if rq.core.busy:
            remaining = rq.core.preempt()
            # Reconstruct the partial chunk so the thread resumes later.
            # We stored the chunk in the completion closure; recover it by
            # keeping it on the thread instead.
            chunk = self._current_chunk_of(thread)
            if chunk is not None and remaining > 0:
                thread.payload = (chunk, remaining)
        self._update_vruntime(rq)
        thread.state = ThreadState.RUNNABLE
        rq.push(thread)
        rq.curr = None
        self._switch_cost_then(rq, self._pick_next)

    # ------------------------------------------------------------------
    def _switch_cost_then(self, rq: _Runqueue,
                          cont: Callable[[_Runqueue], None]) -> None:
        """Charge the kernel context-switch cost, then continue."""
        self.context_switches += 1
        if rq.tick_event is not None:
            rq.tick_event.cancel()
            rq.tick_event = None
        if self.ledger.enabled:
            self.ledger.charge("kernel_ctx_switch",
                               self.costs.kernel_ctx_switch_ns,
                               core=rq.core.id, domain="kernel")
        rq.core.run("kernel", self.costs.kernel_ctx_switch_ns,
                    lambda: cont(rq))

    # The chunk currently running on a thread: stored at dispatch time.
    def _current_chunk_of(self, thread: KThread) -> Optional[Chunk]:
        return getattr(thread, "_cfs_chunk", None)
