"""Simulated Linux-kernel substrate.

The uProcess design deliberately *avoids* the kernel, but both its setup
path (mmap/pkey_mprotect/fork, Uintr handler registration) and every
baseline system (Caladan's IPI+SIGUSR reallocation pipeline, Arachne's
core grants, plain CFS) go through it, so the substrate is modeled in
full:

``kprocess``
    Kernel processes and threads: isolated address-space maps, descriptor
    tables, nice values.
``syscalls``
    The syscall layer with per-call trap costs: mmap / munmap / mprotect /
    pkey_alloc / pkey_free / pkey_mprotect / fork / ioctl / open / close /
    sigqueue / uintr_register_handler.
``signals``
    POSIX-signal posting and delivery to registered userspace handlers.
``cfs``
    The Completely Fair Scheduler: weights from the kernel's nice-to-weight
    table, per-core runqueues ordered by vruntime, tick-driven timeslices,
    sleeper credit, and wakeup preemption.
``kschedule``
    The kernel-mediated core-reallocation pipeline of Figure 3
    (ioctl -> IPI -> trap -> SIGUSR save -> kernel switch -> restore).
"""

from repro.kernel.kprocess import KProcess, KThread, ThreadState
from repro.kernel.fdtable import FdTable, FileDescription
from repro.kernel.syscalls import SyscallLayer, SyscallError
from repro.kernel.signals import KernelSignals, Signal
from repro.kernel.cfs import CfsScheduler, CfsParams, nice_to_weight
from repro.kernel.kschedule import KernelReallocPipeline, ReallocPhase

__all__ = [
    "KProcess",
    "KThread",
    "ThreadState",
    "FdTable",
    "FileDescription",
    "SyscallLayer",
    "SyscallError",
    "KernelSignals",
    "Signal",
    "CfsScheduler",
    "CfsParams",
    "nice_to_weight",
    "KernelReallocPipeline",
    "ReallocPhase",
]
