"""A minimal coroutine-style process abstraction on top of the engine.

Workload drivers that are naturally sequential (e.g. membench's alternating
memory/compute phases, the manager's boot protocol) are clearer as generator
coroutines than as hand-written state machines.  A :class:`Proc` wraps a
generator that yields:

* :class:`Timeout` — resume after a delay;
* :class:`WaitFor` — resume when another :class:`Proc` finishes.

Processes can be interrupted: :meth:`Proc.interrupt` raises
:class:`Interrupt` inside the generator at the current simulated time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Proc.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Yield value: resume the process after ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = int(delay)


class WaitFor:
    """Yield value: resume when ``proc`` has finished."""

    __slots__ = ("proc",)

    def __init__(self, proc: "Proc") -> None:
        self.proc = proc


class Proc:
    """A running generator coroutine scheduled on a :class:`Simulator`."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.finished = False
        self.result: Any = None
        self._pending: Optional[Event] = None
        self._waiters: list = []
        sim.call_soon(self._resume, None, None)

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process at the current time.

        The pending timeout (if any) is cancelled and :class:`Interrupt`
        is raised inside the generator.  Interrupting a finished process
        is an error, since the caller's model of the world is stale.
        """
        if self.finished:
            raise SimulationError(f"interrupting finished process {self.name}")
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.sim.call_soon(self._resume, None, Interrupt(cause))

    # ------------------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.finished:
            return
        self._pending = None
        try:
            if exc is not None:
                command = self.gen.throw(exc)
            else:
                command = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # The generator chose not to handle its interruption; treat as
            # completion with no result.
            self._finish(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._pending = self.sim.after(command.delay, self._resume, None, None)
        elif isinstance(command, WaitFor):
            target = command.proc
            if target.finished:
                self.sim.call_soon(self._resume, target.result, None)
            else:
                target._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {command!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.call_soon(waiter._resume, result, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "running"
        return f"<Proc {self.name} {state}>"
