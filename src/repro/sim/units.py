"""Time units for the simulation.

The simulated clock is an integer count of nanoseconds.  These constants
exist so that configuration code reads as ``5 * US`` instead of ``5000``.
"""

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to (possibly fractional) microseconds."""
    return value_ns / US


def us_to_ns(value_us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return int(round(value_us * US))
