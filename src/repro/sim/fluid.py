"""Analytic fast-forward adapters: the fluid half of the hybrid engine.

The exact engine walks every request through ~30 Python events (arrival
tick, dispatch reaction, Uintr delivery, switch legs, completion, park,
batch refill).  In a steady-state window almost none of those events
carry a *decision* — the scheduler's behaviour is fully determined by a
handful of calibrated constants — so the fluid mode collapses each
system to a small analytic state machine that advances per *request*
instead of per *event*:

* **FluidVessel** — a shared pool of server channels.  An arrival either
  (a) lands on a channel still draining its queue (back-to-back serve,
  zero switch cost — exactly ``_serve_next``'s drain loop), or (b) pays
  the dispatch reaction ``max(sched_react, scan/2) * control-plane
  factor`` plus one preemptive uProcess switch to activate a parked
  thread on a best-effort core.  Both formulas are the scheduler's own
  (same CostModel fields), so the Figure 12 knee at ~42 cores emerges
  from the same arithmetic.

* **FluidCaladan** — per-app core ownership with the IOKernel's grant
  cadence: spin pickup within the 2 µs steal window is free, queue
  drain is run-to-completion, and growing the core set waits for the
  allocation tick (one grant per tick, idle-rebind at 1.95 µs when a
  parked core is available, the 5.3 µs Figure 3 pipeline when a batch
  core must be preempted).  Parked cores hand back through the
  IOKernel's congestion-scaled notice delay and are re-granted to batch
  on the next tick they sit idle through.

Approximation contract (docs/SIMULATION.md states it for users): per-
request latency, queue wait, and completion counts are first-class and
gated against the exact engine (``python -m repro fluidcheck``); the
runtime/kernel/idle bucket split and batch ``useful_ns`` are aggregate
reconstructions (core-time conservation), good to a few percent but not
event-exact.  Switch noise and jitter are drawn from a dedicated
``fluid`` RNG stream — statistically the exact engine's model, not
draw-for-draw identical.

Both adapters require arrivals in nondecreasing time order.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Tuple

from repro.hardware.timing import CostModel


class _WindowAccounts:
    """Aggregate ns charges clipped to the measurement window."""

    def __init__(self, warmup_ns: int, end_ns: int) -> None:
        self.warmup_ns = warmup_ns
        self.end_ns = end_ns
        self.runtime_ns = 0
        self.kernel_ns = 0
        self.idle_ns = 0

    def clip(self, begin: int, finish: int) -> int:
        lo = begin if begin > self.warmup_ns else self.warmup_ns
        hi = finish if finish < self.end_ns else self.end_ns
        return hi - lo if hi > lo else 0


class FluidVessel:
    """Analytic VESSEL: shared channel pool + dispatch-reaction entry."""

    def __init__(self, num_cores: int, costs: CostModel,
                 rng: random.Random, warmup_ns: int, end_ns: int,
                 has_batch: bool = True) -> None:
        if num_cores < 1:
            raise ValueError("need at least one worker core")
        self.k = num_cores
        self.costs = costs
        self.rng = rng
        self.acct = _WindowAccounts(warmup_ns, end_ns)
        self.has_batch = has_batch
        # The scheduler's own reaction arithmetic (VesselSystem
        # properties effective_scan_ns / control_plane_factor).
        per_pass = num_cores * costs.vessel_sched_per_core_ns
        effective_scan = max(costs.vessel_scan_interval_ns, per_pass)
        rho = per_pass / costs.vessel_scan_interval_ns
        factor = 1.0 / (1.0 - min(rho, 0.97))
        self.react = int(max(costs.sched_react_ns, effective_scan // 2)
                         * factor)
        #: the periodic scan re-dispatches backlogged apps every pass,
        #: activating at most ``activation_burst`` threads per tick —
        #: at scale this path beats the per-arrival dispatch (whose
        #: reaction inflates with scheduler-core congestion, ``react``)
        self.scan = effective_scan
        self.burst = 4  # DEFAULT_ACTIVATION_BURST
        self._tick_t = 0
        self._tick_used = 0
        self._send_deliver = costs.uintr_send_ns + costs.uintr_deliver_ns
        # Activating a parked thread preempts a best-effort core (the
        # common colocated case) or wakes an idle one (UMWAIT).
        if has_batch:
            self._entry_base = costs.vessel_preempt_switch_ns()
        else:
            self._entry_base = (costs.umwait_wake_ns
                                + costs.vessel_park_switch_ns())
        self._park_base = costs.vessel_park_switch_ns()
        self._busy: List[int] = []      # per-channel drain-free times
        self._waiting: List[int] = []   # assigned starts not yet begun
        self._idle = num_cores
        self.activations = 0
        self.parks = 0

    def _switch_extra(self) -> int:
        costs = self.costs
        return (costs.vessel_switch_noise_ns(self.rng)
                + costs.jitter_ns(self.rng))

    def _park(self, at: int) -> None:
        # Thread parks, then the core switches a best-effort thread back
        # in (charged "runtime", like _start_thread's switch leg).
        self.parks += 1
        if self.has_batch:
            cost = self._park_base + self._switch_extra()
            self.acct.runtime_ns += self.acct.clip(at, at + cost)

    def serve(self, t: int, service_ns: int) -> Tuple[int, int]:
        """Assign one arrival; returns (start_ns, done_ns)."""
        busy = self._busy
        while busy and busy[0] <= t:
            self._park(heapq.heappop(busy))
            self._idle += 1
        # The default policy's activation gate: a parked thread is only
        # placed when the queue outnumbers active + already-activating
        # servers (deficit > 0).  Two paths evaluate it: the per-arrival
        # dispatch (one scheduler reaction after the arrival) and the
        # periodic scan (next tick, at most ``burst`` placements each).
        waiting = self._waiting
        while waiting and waiting[0] <= t:
            heapq.heappop(waiting)
        if self._idle and len(waiting) + 1 > len(busy):
            tick = (t // self.scan + 1) * self.scan
            if tick < self._tick_t:
                tick = self._tick_t
            if tick == self._tick_t and self._tick_used >= self.burst:
                tick += self.scan
            placed_at = tick if tick < t + self.react else t + self.react
            entry = self._entry_base + self._switch_extra()
            activate_start = placed_at + entry
            if busy and busy[0] < activate_start:
                # A draining channel frees first; the placement finds
                # the queue already claimed and activates nothing.
                start = heapq.heappop(busy)
            else:
                if placed_at == tick:  # consumed a tick's burst budget
                    if tick == self._tick_t:
                        self._tick_used += 1
                    else:
                        self._tick_t, self._tick_used = tick, 1
                self._idle -= 1
                self.activations += 1
                # The switch leg minus the already-elapsed send+deliver
                # is what _start_thread charges the worker core.
                charged = max(1, entry - self._send_deliver)
                self.acct.runtime_ns += self.acct.clip(
                    activate_start - charged, activate_start)
                start = activate_start
        else:
            # Deficit <= 0 (or no parked thread): the request queues and
            # an active channel drains to it back-to-back (_serve_next).
            start = heapq.heappop(busy)
        done = start + service_ns
        heapq.heappush(busy, done)
        if start > t:
            heapq.heappush(waiting, start)
        return start, done

    def finish(self, end_ns: int) -> None:
        """Close the run: channels free before the end park their thread."""
        busy = self._busy
        while busy and busy[0] <= end_ns:
            self._park(heapq.heappop(busy))
            self._idle += 1


class FluidCaladan:
    """Analytic Caladan: ownership, spin pickup, tick-paced grants."""

    def __init__(self, num_cores: int, costs: CostModel,
                 rng: random.Random, warmup_ns: int, end_ns: int,
                 has_batch: bool = True) -> None:
        if num_cores < 1:
            raise ValueError("need at least one worker core")
        self.k = num_cores
        self.costs = costs
        self.rng = rng
        self.acct = _WindowAccounts(warmup_ns, end_ns)
        self.has_batch = has_batch
        per_pass = num_cores * costs.caladan_iokernel_per_core_ns
        self.alloc_interval = max(costs.caladan_core_alloc_interval_ns,
                                  per_pass)
        rho = per_pass / costs.caladan_core_alloc_interval_ns
        factor = 1.0 / (1.0 - min(rho, 0.97))
        self.handoff = max(0, int(costs.caladan_iokernel_react_ns
                                  * (factor - 1.0)))
        self.spin = costs.caladan_steal_before_park_ns
        self._rebind_base = costs.caladan_park_switch_ns
        self._pipeline_base = costs.caladan_realloc_ns()
        self._busy: List[int] = []       # owned cores' drain-free times
        #: cores inside their steal-spin window, ascending free time;
        #: pickup is LIFO (the most recently freed spinner grabs work),
        #: so long-idle spinners expire once and park instead of the
        #: whole owned set staying lukewarm forever
        self._spinning: List[int] = []
        self._idle_at: List[int] = []    # parked cores' handoff times
        self._waiting: List[int] = []    # assigned starts not yet begun
        self._batch_cores = num_cores if has_batch else 0
        self._spare = 0 if has_batch else num_cores
        self._last_grant_tick = -1
        self.grants = 0
        self.rebinds = 0
        self.parks = 0

    def _next_tick(self, t: int) -> int:
        iv = self.alloc_interval
        return (t // iv + 1) * iv

    def _park(self, free_at: int) -> None:
        # Spin for the steal window, yield, then wait out the IOKernel's
        # notice delay before the core is grantable again.
        self.parks += 1
        self.acct.runtime_ns += self.acct.clip(free_at, free_at + self.spin)
        yield_at = free_at + self.spin
        self.acct.kernel_ns += self.acct.clip(
            yield_at, yield_at + self.costs.caladan_park_yield_ns)
        heapq.heappush(self._idle_at,
                       yield_at + self.costs.caladan_park_yield_ns
                       + self.handoff)

    def _flush_idle(self, t: int) -> None:
        """Idle cores nobody claimed rejoin batch at the tick they idle
        through (the alloc tick's include_batch grant)."""
        idle_at = self._idle_at
        while idle_at and self._next_tick(idle_at[0]) <= t:
            avail = heapq.heappop(idle_at)
            tick = self._next_tick(avail)
            self.acct.idle_ns += self.acct.clip(avail, tick)
            if self.has_batch:
                cost = self._rebind_base \
                    + self.costs.kernel_jitter_ns(self.rng)
                self.acct.kernel_ns += self.acct.clip(tick, tick + cost)
                self._batch_cores += 1
            else:
                self._spare += 1

    def _grant(self, t: int):
        """Earliest (start_ns, kind) a fresh core grant could serve at,
        or None when no grant is possible/allowed."""
        owned = len(self._busy) + len(self._spinning)
        if owned >= self.k:
            return None
        # Caladan only adds a core while the queue outnumbers the owned
        # set (congested_wants_more); count requests still waiting.
        waiting = self._waiting
        while waiting and waiting[0] <= t:
            heapq.heappop(waiting)
        if len(waiting) + 1 <= owned:
            return None
        best = None
        if self._idle_at:
            # A parked core's handoff grants as soon as the IOKernel
            # notices it with congestion standing (cheap rebind).
            at = self._idle_at[0] if self._idle_at[0] > t else t
            best = (at + self._rebind_base, "idle")
        pool = self._batch_cores if self.has_batch else self._spare
        if pool > 0:
            tick = self._next_tick(t)
            if tick <= self._last_grant_tick:
                tick = self._last_grant_tick + self.alloc_interval
            if self.has_batch:
                cand = (tick + self._pipeline_base, "preempt")
            else:
                cand = (tick + self._rebind_base, "spare")
            if best is None or cand[0] < best[0]:
                best = cand
        return best

    def _take_grant(self, t: int, grant) -> int:
        est_start, kind = grant
        self.grants += 1
        jitter = self.costs.kernel_jitter_ns(self.rng)
        if kind == "idle":
            avail = heapq.heappop(self._idle_at)
            at = avail if avail > t else t
            self.acct.idle_ns += self.acct.clip(avail, at)
            cost = self._rebind_base + jitter
            self.rebinds += 1
        else:
            at = est_start - (self._pipeline_base if kind == "preempt"
                              else self._rebind_base)
            self._last_grant_tick = at
            if kind == "preempt":
                cost = self._pipeline_base + jitter
                self._batch_cores -= 1
            else:
                cost = self._rebind_base + jitter
                self._spare -= 1
                self.rebinds += 1
        self.acct.kernel_ns += self.acct.clip(at, at + cost)
        return at + cost

    def _expire(self, t: int) -> None:
        """Move freed cores out of the busy heap: into the spinning list
        while their steal window is open, parked once it lapses."""
        busy = self._busy
        spinning = self._spinning
        spin = self.spin
        while spinning and spinning[0] + spin <= t:
            self._park(spinning.pop(0))
        while busy and busy[0] <= t:
            free = heapq.heappop(busy)
            if free + spin <= t:
                self._park(free)
            else:
                spinning.append(free)  # busy pops ascending: stays sorted

    def serve(self, t: int, service_ns: int) -> Tuple[int, int]:
        """Assign one arrival; returns (start_ns, done_ns)."""
        self._expire(t)
        self._flush_idle(t)
        busy = self._busy
        if self._spinning:
            # A core spinning inside the app picks the request up
            # directly (on_arrival's fast path) — zero switch cost.
            free = self._spinning.pop()
            self.acct.runtime_ns += self.acct.clip(free, t)
            start = t
        else:
            drain = busy[0] if busy else None
            grant = self._grant(t)
            if grant is not None and (drain is None or grant[0] < drain):
                start = self._take_grant(t, grant)
            else:
                start = heapq.heappop(busy)
        done = start + service_ns
        heapq.heappush(busy, done)
        if start > t:
            heapq.heappush(self._waiting, start)
        return start, done

    def finish(self, end_ns: int) -> None:
        self._expire(end_ns)
        for free in self._spinning:  # still spinning at the window edge
            self.acct.runtime_ns += self.acct.clip(free, end_ns)
        del self._spinning[:]
        while self._busy:
            heapq.heappop(self._busy)
        self._flush_idle(end_ns)
        while self._idle_at:
            self.acct.idle_ns += self.acct.clip(
                heapq.heappop(self._idle_at), end_ns)


#: adapter registry the fluid runner dispatches on
FLUID_ADAPTERS = {
    "vessel": FluidVessel,
    "caladan": FluidCaladan,
}
