"""Deterministic discrete-event simulation kernel.

All simulated time is integer nanoseconds.  The engine provides cancellable
events, a coroutine-style process abstraction, deterministic named RNG
streams, and the measurement primitives (latency recorders, time-weighted
values, busy-time accounting) used by every experiment in the reproduction.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import Proc, Timeout, WaitFor, Interrupt
from repro.sim.rng import RngStreams
from repro.sim.stats import (
    BusyAccounter,
    Counter,
    LatencyRecorder,
    TimeWeightedValue,
    summarize_ns,
)
from repro.sim.trace import Tracer, render_timeline
from repro.sim.units import NS, US, MS, SEC

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Proc",
    "Timeout",
    "WaitFor",
    "Interrupt",
    "RngStreams",
    "LatencyRecorder",
    "Counter",
    "TimeWeightedValue",
    "BusyAccounter",
    "summarize_ns",
    "Tracer",
    "render_timeline",
    "NS",
    "US",
    "MS",
    "SEC",
]
