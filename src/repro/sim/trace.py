"""Execution tracing and ASCII core timelines (Figure 7 style).

A :class:`Tracer` records what every core was doing as a sequence of
(start, end, category) spans; :func:`render_timeline` draws the familiar
per-core occupancy strip the paper uses in Figure 7 to contrast
Caladan's conservative two-level schedule with VESSEL's packed one.

Attach a tracer to a machine before running::

    tracer = Tracer(sim)
    machine.attach_tracer(tracer)
    ...
    print(render_timeline(tracer, t0, t1, cores=[1, 2, 3]))

Categories map to single glyphs: the first letter of the app name for
``app:<name>`` spans, ``r`` for runtime, ``K`` for kernel, ``.`` for
idle.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator

Span = Tuple[int, int, str]  # (start_ns, end_ns, category)


class Tracer:
    """Collects per-core activity spans.

    Spans on one core are produced sequentially (each starts where the
    previous one ended), so both the start and end columns are
    non-decreasing — :meth:`spans_between` exploits that to locate the
    overlap window with bisection instead of a full scan.
    """

    def __init__(self, sim: Simulator, max_spans_per_core: int = 500_000):
        self.sim = sim
        self.max_spans_per_core = max_spans_per_core
        self.spans: Dict[int, List[Span]] = defaultdict(list)
        self._starts: Dict[int, List[int]] = defaultdict(list)
        self._ends: Dict[int, List[int]] = defaultdict(list)
        self.dropped = 0

    def record(self, core_id: int, start_ns: int, end_ns: int,
               category: str) -> None:
        """Record one span; zero-length spans are skipped."""
        if end_ns <= start_ns:
            return
        spans = self.spans[core_id]
        if len(spans) >= self.max_spans_per_core:
            self.dropped += 1
            return
        spans.append((start_ns, end_ns, category))
        self._starts[core_id].append(start_ns)
        self._ends[core_id].append(end_ns)

    def spans_between(self, core_id: int, t0: int, t1: int) -> List[Span]:
        """Spans overlapping [t0, t1), clipped to it."""
        spans = self.spans.get(core_id)
        if not spans:
            return []
        # First span whose end exceeds t0, last span whose start precedes
        # t1: an O(log n) window instead of scanning every span.
        lo = bisect.bisect_right(self._ends[core_id], t0)
        hi = bisect.bisect_left(self._starts[core_id], t1)
        out = []
        for start, end, category in spans[lo:hi]:
            if end <= t0 or start >= t1:
                continue
            out.append((max(start, t0), min(end, t1), category))
        return out

    def busy_fraction(self, core_id: int, t0: int, t1: int,
                      prefix: str = "app:") -> float:
        """Fraction of [t0, t1) spent in categories matching ``prefix``."""
        if t1 <= t0:
            return 0.0
        busy = sum(end - start
                   for start, end, cat in self.spans_between(core_id, t0, t1)
                   if cat.startswith(prefix))
        return busy / (t1 - t0)


def category_glyph(category: str) -> str:
    """The single character a category renders as."""
    if category.startswith("app:"):
        name = category[4:]
        return name[0].upper() if name else "A"
    return {"runtime": "r", "kernel": "K", "idle": ".",
            "switch": "r"}.get(category, "?")


def render_timeline(tracer: Tracer, t0: int, t1: int,
                    cores: Optional[Sequence[int]] = None,
                    width: int = 100,
                    legend: bool = True) -> str:
    """ASCII occupancy strip: one row per core, one glyph per bucket.

    Each bucket shows the category that occupied the majority of it.
    """
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    if cores is None:
        cores = sorted(tracer.spans.keys())
    bucket_ns = max(1, (t1 - t0) // width)
    lines = []
    seen_categories = {}
    for core_id in cores:
        occupancy = [defaultdict(int) for _ in range(width)]
        for start, end, category in tracer.spans_between(core_id, t0, t1):
            first = min(width - 1, (start - t0) // bucket_ns)
            last = min(width - 1, (end - 1 - t0) // bucket_ns)
            for bucket in range(first, last + 1):
                b_start = t0 + bucket * bucket_ns
                b_end = b_start + bucket_ns
                overlap = min(end, b_end) - max(start, b_start)
                if overlap > 0:
                    occupancy[bucket][category] += overlap
        row = []
        for bucket in occupancy:
            if not bucket:
                row.append(" ")
                continue
            category = max(bucket, key=bucket.get)
            glyph = category_glyph(category)
            seen_categories[glyph] = category
            row.append(glyph)
        lines.append(f"core {core_id:>3} |{''.join(row)}|")
    if legend and seen_categories:
        entries = ", ".join(f"{glyph}={cat}" for glyph, cat
                            in sorted(seen_categories.items()))
        lines.append(f"[{entries}; 1 col = {bucket_ns} ns]")
    return "\n".join(lines)
