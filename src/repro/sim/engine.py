"""The discrete-event engine.

A :class:`Simulator` owns an integer nanosecond clock and a binary heap of
:class:`Event` handles.  Events are cancellable: schedulers in this codebase
constantly schedule "completion" events for running work and cancel them when
the work is preempted, so cancellation must be O(1) (we mark the handle dead
and skip it when popped, the standard lazy-deletion approach).

Determinism: two events scheduled for the same timestamp fire in the order
they were scheduled (a monotone sequence number breaks ties), so a simulation
with a fixed RNG seed replays identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled with :meth:`cancel`.  The callback fires at
    ``time`` with the positional arguments given at scheduling time.
    """

    __slots__ = ("time", "seq", "fn", "args", "_alive", "_owner")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 owner: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True
        self._owner = owner

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return self._alive

    def cancel(self) -> None:
        """Cancel the event; cancelling a dead event is a no-op."""
        if self._alive and self._owner is not None:
            self._owner._live -= 1
        self._alive = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._alive else "dead"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name} {state}>"


class Simulator:
    """Event loop with an integer nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.after(1_000, handler, arg)
        sim.run(until=1_000_000)
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        self.events_fired: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        self._seq += 1
        event = Event(int(time), self._seq, fn, args, owner=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the heap is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the next live event.  Returns False if none remain."""
        self._drop_dead()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event._alive = False
        self._live -= 1
        self.events_fired += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or :meth:`stop`.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so time-weighted statistics
        close their final interval consistently.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events still scheduled.

        Tracked incrementally (push / fire / cancel), so this is O(1)
        instead of a walk over the heap's lazily-deleted dead entries.
        """
        return self._live

    # ------------------------------------------------------------------
    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
