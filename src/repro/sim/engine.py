"""The discrete-event engine.

A :class:`Simulator` owns an integer nanosecond clock and a binary heap
of scheduled callbacks.  Events are cancellable: schedulers in this
codebase constantly schedule "completion" events for running work and
cancel them when the work is preempted, so cancellation must be O(1)
(we mark the handle dead and skip it when popped, the standard
lazy-deletion approach).  When cancelled-but-unpopped entries outnumber
live ones the heap is compacted in place, so a simulator reused across
many ``run(until=...)`` windows cannot accumulate dead entries without
bound (they previously could, parked past ``until`` forever).

Determinism: two events scheduled for the same timestamp fire in the
order they were scheduled (a monotone sequence number breaks ties), so
a simulation with a fixed RNG seed replays identically.

Performance: this module is the hottest code in the repository — every
modeled request, switch, and timer passes through here, and experiment
sweeps retire hundreds of millions of events.  Three choices keep the
inner loop fast, measured by ``python -m repro bench``:

* heap entries are ``(time, seq, event)`` tuples, not :class:`Event`
  objects — the heap's comparisons stay in C tuple code (``seq`` is
  unique, so the event object itself is never compared);
* :meth:`Simulator.run` inlines peek/pop/fire with locals bound outside
  the loop instead of calling :meth:`step` per event;
* :meth:`Simulator.post` is a fire-and-forget fast path that skips
  :class:`Event` allocation entirely for the majority of schedules that
  are never cancelled (its heap entry is ``(time, seq, None, fn,
  args)``; mixed-width entries still compare correctly because ``(time,
  seq)`` always decides).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: compact the heap when dead entries exceed this count *and* the live
#: count (amortized O(1) per cancel; bounds heap size at 2x live + 64)
_COMPACT_THRESHOLD = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled with :meth:`cancel`.  The callback fires at
    ``time`` with the positional arguments given at scheduling time.
    """

    __slots__ = ("time", "seq", "fn", "args", "_alive", "_owner")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 owner: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True
        self._owner = owner

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return self._alive

    def cancel(self) -> None:
        """Cancel the event; cancelling a dead event is a no-op."""
        if not self._alive:
            return
        self._alive = False
        owner = self._owner
        if owner is not None:
            owner._live -= 1
            owner._dead += 1
            if owner._dead > _COMPACT_THRESHOLD and owner._dead > owner._live:
                owner._compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._alive else "dead"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name} {state}>"


class Simulator:
    """Event loop with an integer nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.after(1_000, handler, arg)
        sim.run(until=1_000_000)
    """

    def __init__(self) -> None:
        self.now: int = 0
        #: heap of (time, seq, Event) / (time, seq, None, fn, args) entries
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._live: int = 0
        self._dead: int = 0
        self._running = False
        self._stopped = False
        self.events_fired: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        self._seq = seq = self._seq + 1
        time = int(time)
        event = Event(time, seq, fn, args, owner=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        time = self.now + int(delay)
        event = Event(time, seq, fn, args, owner=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.after(0, fn, *args)

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`after`: no :class:`Event` handle.

        The fast path for the most common scheduling pattern — arrival
        ticks, interrupt deliveries, dispatch reactions — where the
        caller never cancels.  Ordering is identical to :meth:`after`
        (same clock, same tie-breaking sequence), only the cancellable
        handle (and its allocation) is gone.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap,
                       (self.now + int(delay), seq, None, fn, args))
        self._live += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the heap is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Fire the next live event.  Returns False if none remain."""
        self._drop_dead()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry[0]
        event = entry[2]
        if event is None:
            fn, args = entry[3], entry[4]
        else:
            event._alive = False
            fn, args = event.fn, event.args
        self._live -= 1
        self.events_fired += 1
        fn(*args)
        return True

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or :meth:`stop`.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so time-weighted statistics
        close their final interval consistently.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        # The loop binds everything it can outside and dispatches on the
        # entry directly; self._heap is only ever mutated in place (see
        # _compact), so the local binding stays valid across callbacks.
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[2]
                if event is None:                  # post() fast path
                    if until is not None and entry[0] > until:
                        break
                    pop(heap)
                    self.now = entry[0]
                    self._live -= 1
                    self.events_fired += 1
                    entry[3](*entry[4])
                elif event._alive:
                    if until is not None and entry[0] > until:
                        break
                    pop(heap)
                    self.now = entry[0]
                    event._alive = False
                    self._live -= 1
                    self.events_fired += 1
                    event.fn(*event.args)
                else:                              # lazily-deleted entry
                    pop(heap)
                    self._dead -= 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events still scheduled.

        Tracked incrementally (push / fire / cancel), so this is O(1)
        instead of a walk over the heap's lazily-deleted dead entries.
        """
        return self._live

    # ------------------------------------------------------------------
    def _drop_dead(self) -> None:
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event is None or event._alive:
                return
            heapq.heappop(heap)
            self._dead -= 1

    def _compact(self) -> None:
        """Rebuild the heap without dead entries, in place.

        In-place (slice assignment, not rebinding) because :meth:`run`
        holds a local reference to the list across callbacks — a cancel
        storm inside an event handler must not strand the running loop
        on a stale heap.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if entry[2] is None or entry[2]._alive]
        heapq.heapify(heap)
        self._dead = 0
